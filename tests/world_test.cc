// Tests for CloudWorld: construction, instances, egress-policy geometry.

#include <gtest/gtest.h>

#include "src/cloud/presets.h"
#include "src/cloud/world.h"

namespace tenantnet {
namespace {

TEST(WorldTest, RegionWiring) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  const RegionSite& east = w.region(tw.east);
  EXPECT_EQ(east.zones.size(), 2u);
  EXPECT_TRUE(east.edge_node.valid());
  // Each zone: duplex to edge; edge: duplex uplink; plus backbone to west.
  EXPECT_GT(w.topology().link_count(), 8u);
  EXPECT_EQ(w.provider(tw.provider).regions.size(), 2u);
}

TEST(WorldTest, InstanceLifecycle) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  auto inst = w.LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  ASSERT_TRUE(inst.ok());
  const Instance* record = w.FindInstance(*inst);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->running);
  EXPECT_EQ(record->region, tw.east);
  EXPECT_EQ(w.instance_count(), 1u);
  ASSERT_TRUE(w.TerminateInstance(*inst).ok());
  EXPECT_EQ(w.instance_count(), 0u);
  EXPECT_EQ(w.TerminateInstance(*inst).code(), StatusCode::kNotFound);
}

TEST(WorldTest, LaunchValidatesInputs) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  EXPECT_FALSE(w.LaunchInstance(TenantId(99), tw.provider, tw.east).ok());
  EXPECT_FALSE(w.LaunchInstance(tw.tenant, tw.provider, RegionId(99)).ok());
  EXPECT_FALSE(w.LaunchInstance(tw.tenant, tw.provider, tw.east, 7).ok());
}

TEST(WorldTest, OnPremInstances) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  auto inst = w.LaunchOnPremInstance(tw.tenant, tw.on_prem);
  ASSERT_TRUE(inst.ok());
  const Instance* record = w.FindInstance(*inst);
  EXPECT_TRUE(record->on_prem.valid());
  EXPECT_FALSE(record->provider.valid());
  EXPECT_EQ(record->host_node, w.on_prem(tw.on_prem).host_node);
}

TEST(WorldTest, TenantInstancesEnumerated) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  auto a = *w.LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  auto b = *w.LaunchInstance(tw.tenant, tw.provider, tw.west, 1);
  TenantId other = w.AddTenant("other");
  auto c = *w.LaunchInstance(other, tw.provider, tw.east, 0);
  auto mine = w.TenantInstances(tw.tenant);
  EXPECT_EQ(mine.size(), 2u);
  EXPECT_NE(std::find(mine.begin(), mine.end(), a), mine.end());
  EXPECT_NE(std::find(mine.begin(), mine.end(), b), mine.end());
  EXPECT_EQ(std::find(mine.begin(), mine.end(), c), mine.end());
}

TEST(WorldTest, IntraRegionPathStaysInDatacenter) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  auto a = *w.LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  auto b = *w.LaunchInstance(tw.tenant, tw.provider, tw.east, 1);
  auto path = w.ResolveInstancePath(a, b, EgressPolicy::kColdPotato);
  ASSERT_TRUE(path.ok());
  for (LinkId link : *path) {
    EXPECT_EQ(w.topology().link(link).cls, LinkClass::kDatacenter);
  }
}

TEST(WorldTest, ColdPotatoUsesBackboneHotUsesInternet) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  auto east_inst = *w.LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  auto west_inst = *w.LaunchInstance(tw.tenant, tw.provider, tw.west, 0);

  auto cold = w.ResolveInstancePath(east_inst, west_inst,
                                    EgressPolicy::kColdPotato);
  ASSERT_TRUE(cold.ok());
  bool cold_uses_backbone = false;
  bool cold_uses_internet = false;
  for (LinkId link : *cold) {
    LinkClass cls = w.topology().link(link).cls;
    cold_uses_backbone |= (cls == LinkClass::kBackbone);
    cold_uses_internet |= (cls == LinkClass::kPublicInternet);
  }
  EXPECT_TRUE(cold_uses_backbone);
  EXPECT_FALSE(cold_uses_internet);

  auto hot = w.ResolveInstancePath(east_inst, west_inst,
                                   EgressPolicy::kHotPotato);
  ASSERT_TRUE(hot.ok());
  bool hot_uses_internet = false;
  for (LinkId link : *hot) {
    hot_uses_internet |=
        (w.topology().link(link).cls == LinkClass::kPublicInternet);
  }
  EXPECT_TRUE(hot_uses_internet);
}

TEST(WorldTest, DedicatedCircuitAttractsDedicatedPolicy) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  auto cloud_inst = *w.LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  auto onprem_inst = *w.LaunchOnPremInstance(tw.tenant, tw.on_prem);

  // Without a circuit, the dedicated policy falls back to tolerated
  // internet links.
  auto before = w.ResolveInstancePath(cloud_inst, onprem_inst,
                                      EgressPolicy::kDedicated);
  ASSERT_TRUE(before.ok());
  bool before_dedicated = false;
  for (LinkId link : *before) {
    before_dedicated |=
        (w.topology().link(link).cls == LinkClass::kDedicated);
  }
  EXPECT_FALSE(before_dedicated);

  ASSERT_TRUE(w.AddDedicatedCircuit(tw.east, tw.exchange, 10e9).ok());
  ASSERT_TRUE(
      w.AddDedicatedCircuitFromOnPrem(tw.on_prem, tw.exchange, 5e9).ok());
  auto after = w.ResolveInstancePath(cloud_inst, onprem_inst,
                                     EgressPolicy::kDedicated);
  ASSERT_TRUE(after.ok());
  bool after_dedicated = false;
  for (LinkId link : *after) {
    after_dedicated |=
        (w.topology().link(link).cls == LinkClass::kDedicated);
  }
  EXPECT_TRUE(after_dedicated);
}

TEST(WorldTest, Fig1PresetShape) {
  Fig1World fig = BuildFig1World();
  CloudWorld& w = *fig.world;
  EXPECT_EQ(w.provider_count(), 2u);
  EXPECT_EQ(w.region_count(), 5u);
  EXPECT_EQ(fig.AllInstances().size(), 23u);
  EXPECT_EQ(w.instance_count(), 23u);
  // All instances resolve paths pairwise under cold potato within clouds.
  auto path = w.ResolveInstancePath(fig.spark[0], fig.database[0],
                                    EgressPolicy::kHotPotato);
  EXPECT_TRUE(path.ok());
  auto onprem_path = w.ResolveInstancePath(fig.spark[0], fig.alerting[0],
                                           EgressPolicy::kHotPotato);
  EXPECT_TRUE(onprem_path.ok());
}

TEST(WorldTest, GeoDistanceAndDelayScale) {
  EXPECT_DOUBLE_EQ(GeoDistance({0, 0}, {3, 4}), 5.0);
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  auto east_inst = *w.LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  auto west_inst = *w.LaunchInstance(tw.tenant, tw.provider, tw.west, 0);
  auto path = *w.ResolveInstancePath(east_inst, west_inst,
                                     EgressPolicy::kColdPotato);
  // East-west distance is 20 units ~ 20ms one-way (plus DC hops).
  double delay_ms = w.topology().PathDelay(path).ToMillis();
  EXPECT_GT(delay_ms, 19.0);
  EXPECT_LT(delay_ms, 25.0);
}

}  // namespace
}  // namespace tenantnet
