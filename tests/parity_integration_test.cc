// The headline integration test: the same Figure 1 application deployed in
// both worlds. The declarative world must (a) deliver every flow the
// application needs, (b) deny everything else, and (c) do it with a
// fraction of the tenant-side configuration.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/vnet/builder.h"

namespace tenantnet {
namespace {

struct AppFlow {
  InstanceId src;
  InstanceId dst;
  uint16_t port;
  const char* what;
};

// The application's legitimate communication matrix, derived from Fig. 1:
// spark <-> db, web -> spark, analytics -> db, on-prem alerting <-> spark,
// spark -> on-prem alerting.
std::vector<AppFlow> LegitFlows(const Fig1World& fig) {
  return {
      {fig.spark[0], fig.database[0], Fig1Baseline::kDbPort, "spark->db"},
      {fig.spark[3], fig.database[2], Fig1Baseline::kDbPort, "spark->db2"},
      {fig.web_eu[0], fig.spark[1], Fig1Baseline::kSparkPort, "web-eu->spark"},
      {fig.web_us[0], fig.spark[2], Fig1Baseline::kSparkPort, "web-us->spark"},
      {fig.analytics[0], fig.database[1], Fig1Baseline::kDbPort,
       "analytics->db"},
      {fig.alerting[0], fig.spark[0], Fig1Baseline::kSparkPort,
       "alerting->spark"},
      {fig.spark[0], fig.alerting[0], Fig1Baseline::kAlertPort,
       "spark->alerting"},
  };
}

// Deploys the Fig. 1 app on the declarative API: one EIP per instance, one
// SIP for the web tier and one for the db tier, permit lists mirroring the
// communication matrix.
struct DeclarativeFig1 {
  std::map<uint64_t, IpAddress> eip;  // instance id -> EIP
  IpAddress web_sip;
  IpAddress db_sip;

  IpAddress Eip(InstanceId id) const { return eip.at(id.value()); }
};

DeclarativeFig1 DeployDeclarative(DeclarativeCloud& cloud,
                                  const Fig1World& fig) {
  DeclarativeFig1 out;
  for (InstanceId id : fig.AllInstances()) {
    out.eip[id.value()] = *cloud.RequestEip(id);
  }
  out.web_sip = *cloud.RequestSip(fig.tenant, fig.cloud_a);
  for (InstanceId id : fig.web_eu) {
    EXPECT_TRUE(cloud.Bind(out.Eip(id), out.web_sip).ok());
  }
  out.db_sip = *cloud.RequestSip(fig.tenant, fig.cloud_b);
  for (InstanceId id : fig.database) {
    EXPECT_TRUE(cloud.Bind(out.Eip(id), out.db_sip, 1.0).ok());
  }

  auto permit_host = [&](InstanceId who) {
    PermitEntry e;
    e.source = IpPrefix::Host(out.Eip(who));
    return e;
  };

  // db accepts spark, analytics, and on-prem alerting sources.
  for (InstanceId db : fig.database) {
    std::vector<PermitEntry> permits;
    for (InstanceId src : fig.spark) {
      permits.push_back(permit_host(src));
    }
    for (InstanceId src : fig.analytics) {
      permits.push_back(permit_host(src));
    }
    for (InstanceId src : fig.alerting) {
      permits.push_back(permit_host(src));
    }
    EXPECT_TRUE(cloud.SetPermitList(out.Eip(db), permits).ok());
  }
  // spark accepts spark peers, web tiers, and on-prem.
  for (InstanceId sp : fig.spark) {
    std::vector<PermitEntry> permits;
    for (const auto* group : {&fig.spark, &fig.web_eu, &fig.web_us,
                              &fig.alerting}) {
      for (InstanceId src : *group) {
        if (src != sp) {
          permits.push_back(permit_host(src));
        }
      }
    }
    EXPECT_TRUE(cloud.SetPermitList(out.Eip(sp), permits).ok());
  }
  // web accepts the world (public service).
  for (const auto* group : {&fig.web_eu, &fig.web_us}) {
    for (InstanceId web : *group) {
      PermitEntry anyone;
      anyone.source = IpPrefix::Any(IpFamily::kIpv4);
      anyone.dst_ports = PortRange::Single(Fig1Baseline::kWebPort);
      anyone.proto = Protocol::kTcp;
      EXPECT_TRUE(cloud.SetPermitList(out.Eip(web), {anyone}).ok());
    }
  }
  // analytics accepts db responses... (stateful return is implicit; what it
  // accepts inbound is db-initiated traffic only — nothing here).
  for (InstanceId a : fig.analytics) {
    std::vector<PermitEntry> permits;
    for (InstanceId src : fig.database) {
      permits.push_back(permit_host(src));
    }
    EXPECT_TRUE(cloud.SetPermitList(out.Eip(a), permits).ok());
  }
  // alerting accepts spark.
  for (InstanceId al : fig.alerting) {
    std::vector<PermitEntry> permits;
    for (InstanceId src : fig.spark) {
      permits.push_back(permit_host(src));
    }
    EXPECT_TRUE(cloud.SetPermitList(out.Eip(al), permits).ok());
  }
  return out;
}

class ParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fig_ = new Fig1World(BuildFig1World());
    baseline_ledger_ = new ConfigLedger();
    baseline_ = new BaselineNetwork(*fig_->world, *baseline_ledger_);
    auto built = BuildFig1Baseline(*baseline_, *fig_);
    ASSERT_TRUE(built.ok()) << built.status();
    handles_ = new Fig1Baseline(*built);

    declarative_ledger_ = new ConfigLedger();
    declarative_ = new DeclarativeCloud(*fig_->world, *declarative_ledger_);
    deployment_ = new DeclarativeFig1(DeployDeclarative(*declarative_, *fig_));
  }
  static void TearDownTestSuite() {
    delete deployment_;
    delete declarative_;
    delete declarative_ledger_;
    delete handles_;
    delete baseline_;
    delete baseline_ledger_;
    delete fig_;
  }

  static Fig1World* fig_;
  static ConfigLedger* baseline_ledger_;
  static BaselineNetwork* baseline_;
  static Fig1Baseline* handles_;
  static ConfigLedger* declarative_ledger_;
  static DeclarativeCloud* declarative_;
  static DeclarativeFig1* deployment_;
};

Fig1World* ParityTest::fig_ = nullptr;
ConfigLedger* ParityTest::baseline_ledger_ = nullptr;
BaselineNetwork* ParityTest::baseline_ = nullptr;
Fig1Baseline* ParityTest::handles_ = nullptr;
ConfigLedger* ParityTest::declarative_ledger_ = nullptr;
DeclarativeCloud* ParityTest::declarative_ = nullptr;
DeclarativeFig1* ParityTest::deployment_ = nullptr;

TEST_F(ParityTest, EveryLegitimateFlowDeliversInBothWorlds) {
  for (const AppFlow& flow : LegitFlows(*fig_)) {
    auto base = baseline_->Evaluate(flow.src, flow.dst, flow.port,
                                    Protocol::kTcp);
    ASSERT_TRUE(base.ok()) << flow.what;
    EXPECT_TRUE(base->delivered)
        << flow.what << " (baseline): " << base->drop_stage << ": "
        << base->drop_reason;

    auto decl = declarative_->Evaluate(flow.src, deployment_->Eip(flow.dst),
                                       flow.port, Protocol::kTcp);
    ASSERT_TRUE(decl.ok()) << flow.what;
    EXPECT_TRUE(decl->delivered)
        << flow.what << " (declarative): " << decl->drop_stage << ": "
        << decl->drop_reason;
  }
}

TEST_F(ParityTest, DeclarativeWorldHasNoTenantBoxes) {
  EXPECT_EQ(declarative_ledger_->components(), 0u);
  EXPECT_EQ(declarative_ledger_->cross_references(), 0u);
  EXPECT_GT(baseline_ledger_->components(), 40u);
}

TEST_F(ParityTest, DeclarativeTotalsAreFractionOfBaseline) {
  // The declarative total is dominated by permit-list entries (one per
  // permitted host — honest accounting, since flat EIPs cannot be
  // aggregated by the tenant). Even so it stays below the baseline's
  // surface, and the *structural* complexity axes the paper argues about —
  // components to assemble, decisions to make, references to keep
  // consistent — drop to zero. The exact ratios are E1's output.
  uint64_t decl_total = declarative_ledger_->total();
  uint64_t base_total = baseline_ledger_->total();
  EXPECT_LT(decl_total, base_total)
      << "declarative=" << decl_total << " baseline=" << base_total;
  EXPECT_EQ(declarative_ledger_->decisions(), 0u);
  EXPECT_EQ(declarative_ledger_->components(), 0u);
  EXPECT_EQ(declarative_ledger_->cross_references(), 0u);
  // Excluding the data-dependent permit entries, the control surface is an
  // order of magnitude smaller.
  uint64_t decl_structural = declarative_ledger_->api_calls();
  EXPECT_LT(decl_structural * 5, base_total);
}

TEST_F(ParityTest, SipsLoadBalanceLikeTheBaselineLb) {
  std::set<std::string> backends;
  for (int i = 0; i < 30; ++i) {
    auto result = declarative_->Evaluate(
        fig_->spark[0], deployment_->db_sip, Fig1Baseline::kDbPort,
        Protocol::kTcp);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->delivered)
        << result->drop_stage << ": " << result->drop_reason;
    backends.insert(result->effective_dst.ToString());
  }
  EXPECT_EQ(backends.size(), fig_->database.size());
}

TEST_F(ParityTest, CrossTenantFlowBlockedInBothWorlds) {
  // An unrelated flow the app never needs: analytics -> spark.
  auto base = baseline_->Evaluate(fig_->analytics[0], fig_->spark[0],
                                  Fig1Baseline::kSparkPort, Protocol::kTcp);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(base->delivered);

  auto decl = declarative_->Evaluate(fig_->analytics[0],
                                     deployment_->Eip(fig_->spark[0]),
                                     Fig1Baseline::kSparkPort, Protocol::kTcp);
  ASSERT_TRUE(decl.ok());
  EXPECT_FALSE(decl->delivered);
  EXPECT_EQ(decl->drop_stage, "edge-filter");
}

TEST_F(ParityTest, ExternalAttackOnDbBlockedInBothWorlds) {
  IpAddress attacker = IpAddress::V4(203, 0, 113, 50);
  const Eni* db_eni = baseline_->FindEniByInstance(fig_->database[0]);
  auto base = baseline_->EvaluateExternal(attacker, db_eni->private_ip,
                                          Fig1Baseline::kDbPort,
                                          Protocol::kTcp);
  EXPECT_FALSE(base.delivered);

  auto decl = declarative_->EvaluateExternal(
      attacker, deployment_->Eip(fig_->database[0]), Fig1Baseline::kDbPort,
      Protocol::kTcp);
  EXPECT_FALSE(decl.delivered);
  // Crucially: the declarative drop happens at the provider edge, before
  // the flow consumed any tenant resource.
  EXPECT_EQ(decl.drop_stage, "edge-filter");
}

TEST_F(ParityTest, PublicWebReachableInBothWorlds) {
  IpAddress client = IpAddress::V4(198, 18, 0, 20);
  const Eni* web_eni = baseline_->FindEniByInstance(fig_->web_eu[0]);
  auto base = baseline_->EvaluateExternal(client, *web_eni->public_ip,
                                          Fig1Baseline::kWebPort,
                                          Protocol::kTcp);
  EXPECT_TRUE(base.delivered) << base.drop_stage << ": " << base.drop_reason;

  auto decl = declarative_->EvaluateExternal(
      client, deployment_->Eip(fig_->web_eu[0]), Fig1Baseline::kWebPort,
      Protocol::kTcp);
  EXPECT_TRUE(decl.delivered) << decl.drop_stage << ": " << decl.drop_reason;
}

TEST_F(ParityTest, DeclarativeFlowsCrossZeroTenantHops) {
  auto decl = declarative_->Evaluate(fig_->spark[0],
                                     deployment_->Eip(fig_->database[0]),
                                     Fig1Baseline::kDbPort, Protocol::kTcp);
  ASSERT_TRUE(decl.ok());
  ASSERT_TRUE(decl->delivered);
  // Provider hops only (edge filter); no tenant boxes anywhere.
  for (const std::string& hop : decl->provider_hops) {
    EXPECT_TRUE(hop.rfind("edge-filter", 0) == 0 || hop == "sip-lb") << hop;
  }
  // The baseline's same flow crosses several tenant gateways.
  auto base = baseline_->Evaluate(fig_->spark[0], fig_->database[0],
                                  Fig1Baseline::kDbPort, Protocol::kTcp);
  EXPECT_GE(base->gateway_hops, 3);
}

}  // namespace
}  // namespace tenantnet
