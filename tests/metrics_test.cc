// Tests for telemetry: Counter, Gauge, Histogram, MetricRegistry.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_DOUBLE_EQ(g.value(), 7);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.P50(), 0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_NEAR(h.P50(), 5.0, 5.0 * 0.06);
}

TEST(HistogramTest, ExactStatsTracked) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_NEAR(h.StdDev(), 1.118, 0.001);  // population stddev
}

// Property: quantiles match an exact sorted computation within the bucket
// growth factor's relative error.
class HistogramQuantileTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramQuantileTest, QuantilesCloseToExact) {
  Rng rng(GetParam());
  Histogram h(1.05);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextPareto(1.0, 1.4);  // heavy tail stresses buckets
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    double exact = samples[static_cast<size_t>(q * (samples.size() - 1))];
    double approx = h.Quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 0.08)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramQuantileTest,
                         ::testing::Values(1, 7, 123, 9999));

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(1);
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0);
}

TEST(MetricRegistryTest, NamedMetricsArePersistent) {
  MetricRegistry reg;
  reg.GetCounter("a").Increment(3);
  reg.GetCounter("a").Increment(4);
  reg.GetHistogram("lat").Record(1.0);
  reg.GetGauge("g").Set(2.5);
  EXPECT_EQ(reg.GetCounter("a").value(), 7u);
  EXPECT_EQ(reg.GetHistogram("lat").count(), 1u);
  std::string report = reg.Report();
  EXPECT_NE(report.find("a = 7"), std::string::npos);
  EXPECT_NE(report.find("lat"), std::string::npos);
}

// --- Concurrency: recording from shard-executor worker threads ---------------

TEST(ConcurrentMetricsTest, CounterIncrementsAreNeverLost) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
      c.Increment(5);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), kThreads * (kPerThread + 5));
}

TEST(ConcurrentMetricsTest, GaugeAddsSumExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      // +1.0 then -1.0 in bulk: any lost update leaves a nonzero residue.
      for (int i = 0; i < kPerThread; ++i) {
        g.Add(1.0);
      }
      for (int i = 0; i < kPerThread; ++i) {
        g.Add(-1.0);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ConcurrentMetricsTest, HistogramKeepsEverySampleAndExactExtrema) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(rng.NextDouble(1.0, 1000.0));
      }
    });
  }
  // Readers race the writers; they must see internally consistent (if
  // momentarily stale) snapshots without crashing or tearing.
  for (int probe = 0; probe < 100; ++probe) {
    double p50 = h.P50();
    double p99 = h.P99();
    EXPECT_LE(p50, p99 + 1e-9);
    EXPECT_GE(h.max(), h.min());
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_GE(h.min(), 1.0);
  EXPECT_LE(h.max(), 1000.0);
  EXPECT_GT(h.mean(), 1.0);
  EXPECT_LT(h.mean(), 1000.0);
}

TEST(ConcurrentMetricsTest, QuantilesAreMonotoneAfterConcurrentRecording) {
  constexpr int kThreads = 4;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<uint64_t>(t) + 99);
      for (int i = 0; i < 30000; ++i) {
        h.Record(rng.NextPareto(0.5, 1.2));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // q -> Quantile(q) must be nondecreasing and bounded by the extrema.
  double prev = h.min();
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = h.Quantile(q);
    EXPECT_GE(v, prev - 1e-12) << "quantile regressed at q=" << q;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());
}

TEST(ConcurrentMetricsTest, RegistryMetricsAreSafeToShareAcrossThreads) {
  MetricRegistry reg;
  // Metric objects are created on the main thread (the registry contract),
  // then recorded into concurrently.
  Counter& hits = reg.GetCounter("hits");
  Histogram& lat = reg.GetHistogram("lat");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hits, &lat] {
      for (int i = 0; i < 10000; ++i) {
        hits.Increment();
        lat.Record(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.GetCounter("hits").value(), 40000u);
  EXPECT_EQ(reg.GetHistogram("lat").count(), 40000u);
  EXPECT_NE(reg.Report().find("hits = 40000"), std::string::npos);
}

}  // namespace
}  // namespace tenantnet
