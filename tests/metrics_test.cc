// Tests for telemetry: Counter, Gauge, Histogram, MetricRegistry.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_DOUBLE_EQ(g.value(), 7);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.P50(), 0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_NEAR(h.P50(), 5.0, 5.0 * 0.06);
}

TEST(HistogramTest, ExactStatsTracked) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_NEAR(h.StdDev(), 1.118, 0.001);  // population stddev
}

// Property: quantiles match an exact sorted computation within the bucket
// growth factor's relative error.
class HistogramQuantileTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramQuantileTest, QuantilesCloseToExact) {
  Rng rng(GetParam());
  Histogram h(1.05);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextPareto(1.0, 1.4);  // heavy tail stresses buckets
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    double exact = samples[static_cast<size_t>(q * (samples.size() - 1))];
    double approx = h.Quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 0.08)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramQuantileTest,
                         ::testing::Values(1, 7, 123, 9999));

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(1);
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0);
}

TEST(MetricRegistryTest, NamedMetricsArePersistent) {
  MetricRegistry reg;
  reg.GetCounter("a").Increment(3);
  reg.GetCounter("a").Increment(4);
  reg.GetHistogram("lat").Record(1.0);
  reg.GetGauge("g").Set(2.5);
  EXPECT_EQ(reg.GetCounter("a").value(), 7u);
  EXPECT_EQ(reg.GetHistogram("lat").count(), 1u);
  std::string report = reg.Report();
  EXPECT_NE(report.find("a = 7"), std::string::npos);
  EXPECT_NE(report.find("lat"), std::string::npos);
}

}  // namespace
}  // namespace tenantnet
