// End-to-end tests over the full Figure 1 baseline deployment.

#include <gtest/gtest.h>

#include <set>

#include "src/cloud/presets.h"
#include "src/vnet/builder.h"

namespace tenantnet {
namespace {

class Fig1BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fig_ = new Fig1World(BuildFig1World());
    ledger_ = new ConfigLedger();
    net_ = new BaselineNetwork(*fig_->world, *ledger_);
    auto built = BuildFig1Baseline(*net_, *fig_);
    ASSERT_TRUE(built.ok()) << built.status();
    handles_ = new Fig1Baseline(*built);
  }
  static void TearDownTestSuite() {
    delete handles_;
    delete net_;
    delete ledger_;
    delete fig_;
    handles_ = nullptr;
    net_ = nullptr;
    ledger_ = nullptr;
    fig_ = nullptr;
  }

  static Fig1World* fig_;
  static ConfigLedger* ledger_;
  static BaselineNetwork* net_;
  static Fig1Baseline* handles_;
};

Fig1World* Fig1BaselineTest::fig_ = nullptr;
ConfigLedger* Fig1BaselineTest::ledger_ = nullptr;
BaselineNetwork* Fig1BaselineTest::net_ = nullptr;
Fig1Baseline* Fig1BaselineTest::handles_ = nullptr;

TEST_F(Fig1BaselineTest, DeploymentShapeMatchesFigure1) {
  // The paper's figure shows 6 VPCs and 9 gateways; our rendition has 6
  // VPCs and at least that many gateway boxes.
  EXPECT_EQ(net_->vpc_count(), 6u);
  EXPECT_GE(net_->gateway_count(), 9u);
  EXPECT_GE(net_->appliance_count(), 3u);  // 2 LBs + firewall
}

TEST_F(Fig1BaselineTest, ComplexityLedgerIsSubstantial) {
  // The absolute values are measured by E1; here we pin the shape: dozens
  // of components, a parameter surface several times larger, and a web of
  // cross-references the tenant must keep consistent.
  EXPECT_GT(ledger_->components(), 40u);
  EXPECT_GT(ledger_->parameters(), ledger_->components());
  EXPECT_GT(ledger_->cross_references(), 30u);
  EXPECT_GT(ledger_->decisions(), 10u);
  EXPECT_EQ(ledger_->api_calls(), 0u);  // no declarative calls in this world
}

// Helper: evaluate and expect delivery.
void ExpectDelivered(BaselineNetwork& net, InstanceId src, InstanceId dst,
                     uint16_t port) {
  auto result = net.Evaluate(src, dst, port, Protocol::kTcp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->delivered)
      << "dropped at " << result->drop_stage << ": " << result->drop_reason;
}

TEST_F(Fig1BaselineTest, SparkReachesDatabaseOverCircuits) {
  auto result = net_->Evaluate(fig_->spark[0], fig_->database[0],
                               Fig1Baseline::kDbPort, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->delivered)
      << result->drop_stage << ": " << result->drop_reason;
  // The flow crosses TGW-A, the circuits at the exchange, and TGW-B.
  EXPECT_GE(result->gateway_hops, 3);
  EXPECT_EQ(result->egress_policy, EgressPolicy::kDedicated);
  bool crossed_exchange = false;
  for (const std::string& hop : result->logical_hops) {
    if (hop.rfind("exchange:", 0) == 0) {
      crossed_exchange = true;
    }
  }
  EXPECT_TRUE(crossed_exchange);
}

TEST_F(Fig1BaselineTest, SparkReachesOnPremAlerting) {
  auto result = net_->Evaluate(fig_->spark[0], fig_->alerting[0],
                               Fig1Baseline::kAlertPort, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->delivered)
      << result->drop_stage << ": " << result->drop_reason;
  EXPECT_EQ(result->egress_policy, EgressPolicy::kDedicated);  // via MPLS leg
}

TEST_F(Fig1BaselineTest, OnPremSubmitsToSparkThroughCircuits) {
  ExpectDelivered(*net_, fig_->alerting[0], fig_->spark[0],
                  Fig1Baseline::kSparkPort);
}

TEST_F(Fig1BaselineTest, WebEuReachesSparkViaTgwPeering) {
  auto result = net_->Evaluate(fig_->web_eu[0], fig_->spark[0],
                               Fig1Baseline::kSparkPort, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->delivered)
      << result->drop_stage << ": " << result->drop_reason;
  // Two TGWs on the path (EU hub -> US hub).
  int tgw_hops = 0;
  for (const std::string& hop : result->logical_hops) {
    if (hop.rfind("tgw:", 0) == 0) {
      ++tgw_hops;
    }
  }
  EXPECT_GE(tgw_hops, 2);
}

TEST_F(Fig1BaselineTest, WebUsReachesSparkViaPeering) {
  auto result = net_->Evaluate(fig_->web_us[0], fig_->spark[0],
                               Fig1Baseline::kSparkPort, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->delivered)
      << result->drop_stage << ": " << result->drop_reason;
  bool used_peering = false;
  for (const std::string& hop : result->logical_hops) {
    if (hop.rfind("peering:", 0) == 0) {
      used_peering = true;
    }
  }
  EXPECT_TRUE(used_peering);
}

TEST_F(Fig1BaselineTest, AnalyticsReachesDatabaseViaPeering) {
  ExpectDelivered(*net_, fig_->analytics[0], fig_->database[0],
                  Fig1Baseline::kDbPort);
}

TEST_F(Fig1BaselineTest, AnalyticsCannotReachSparkPrivately) {
  // Peering is not transitive and analytics has no route to cloud A: the
  // classic misconfiguration/complexity failure the paper highlights.
  auto result = net_->Evaluate(fig_->analytics[0], fig_->spark[0],
                               Fig1Baseline::kSparkPort, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->delivered);
  EXPECT_EQ(result->drop_stage, "route");
}

TEST_F(Fig1BaselineTest, SparkEgressesToInternetThroughNat) {
  // Spark instances are private; reaching a public web instance rides the
  // NAT gateway and both IGWs.
  auto result = net_->Evaluate(fig_->spark[0], fig_->web_eu[0],
                               Fig1Baseline::kWebPort, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->delivered)
      << result->drop_stage << ": " << result->drop_reason;
  bool used_nat = false;
  for (const std::string& hop : result->logical_hops) {
    if (hop.rfind("nat:", 0) == 0) {
      used_nat = true;
    }
  }
  // web-eu has a private 10/8 route via TGW... which also reaches spark, so
  // the dialed address is private and NAT is not used; accept either, but
  // delivery must hold. (Spark -> web goes TGW if the web VPC advertises.)
  (void)used_nat;
}

TEST_F(Fig1BaselineTest, ExternalClientReachesPublicWeb) {
  const Eni* web_eni = net_->FindEniByInstance(fig_->web_eu[0]);
  ASSERT_NE(web_eni, nullptr);
  ASSERT_TRUE(web_eni->public_ip.has_value());
  auto result = net_->EvaluateExternal(IpAddress::V4(198, 18, 0, 7),
                                       *web_eni->public_ip,
                                       Fig1Baseline::kWebPort, Protocol::kTcp);
  EXPECT_TRUE(result.delivered)
      << result.drop_stage << ": " << result.drop_reason;
  bool inspected = false;
  for (const std::string& hop : result.logical_hops) {
    if (hop.rfind("firewall:", 0) == 0) {
      inspected = true;
    }
  }
  EXPECT_TRUE(inspected);  // ingress firewall saw the flow
}

TEST_F(Fig1BaselineTest, ExternalClientCannotReachDatabase) {
  // The DB has no public IP: an external flow toward its private address
  // dies on the internet.
  const Eni* db_eni = net_->FindEniByInstance(fig_->database[0]);
  ASSERT_NE(db_eni, nullptr);
  EXPECT_FALSE(db_eni->public_ip.has_value());
  auto result = net_->EvaluateExternal(IpAddress::V4(198, 18, 0, 7),
                                       db_eni->private_ip,
                                       Fig1Baseline::kDbPort, Protocol::kTcp);
  EXPECT_FALSE(result.delivered);
}

TEST_F(Fig1BaselineTest, SqlInjectionPayloadBlockedByDpiFirewall) {
  const Eni* web_eni = net_->FindEniByInstance(fig_->web_eu[0]);
  auto result = net_->EvaluateExternal(
      IpAddress::V4(198, 18, 0, 7), *web_eni->public_ip,
      Fig1Baseline::kWebPort, Protocol::kTcp, "q=1; DROP TABLE users");
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.drop_stage, "firewall");
}

TEST_F(Fig1BaselineTest, WrongPortDiesAtSecurityGroup) {
  auto result = net_->Evaluate(fig_->spark[0], fig_->database[0],
                               Fig1Baseline::kDbPort + 1, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->delivered);
  EXPECT_EQ(result->drop_stage, "sg-ingress");
}

TEST_F(Fig1BaselineTest, LoadBalancerSpreadsAcrossWebTier) {
  FiveTuple flow;
  flow.src = IpAddress::V4(198, 18, 0, 9);
  flow.dst = IpAddress::V4(3, 0, 0, 1);  // LB VIP placeholder
  flow.dst_port = Fig1Baseline::kWebPort;
  flow.proto = Protocol::kTcp;
  HttpRequestMeta meta;
  meta.path = "/api/query";
  std::set<uint64_t> backends;
  for (int i = 0; i < 40; ++i) {
    auto target = net_->ResolveThroughLoadBalancer(handles_->web_lb, flow,
                                                   &meta);
    ASSERT_TRUE(target.ok());
    backends.insert(target->value());
  }
  EXPECT_EQ(backends.size(), fig_->web_eu.size());  // all four targets used
}

TEST_F(Fig1BaselineTest, RouteTableSpansEveryDomain) {
  // The tenant's BGP mesh had to converge for the above to work; its size
  // is part of the complexity story.
  EXPECT_GT(net_->bgp().speaker_count(), 5u);
  EXPECT_GT(net_->bgp().session_count(), 4u);
  EXPECT_GT(net_->bgp().TotalRibEntries(), 10u);
}

}  // namespace
}  // namespace tenantnet
