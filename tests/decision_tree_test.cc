// Tests for the component-selection decision trees (§3(2)'s "five levels
// deep" planning burden).

#include <gtest/gtest.h>

#include "src/vnet/decision_tree.h"

namespace tenantnet {
namespace {

TEST(DecisionTreeTest, LbTreeIsFiveLevelsDeep) {
  auto tree = BuildLoadBalancerDecisionTree();
  // The paper's citation: "a decision tree that is five levels deep!"
  EXPECT_EQ(tree->MaxDepth(), 5);
  EXPECT_GE(tree->QuestionCount(), 8);
  EXPECT_GE(tree->LeafCount(), 8);
}

TEST(DecisionTreeTest, HttpPathRoutingYieldsAlb) {
  auto tree = BuildLoadBalancerDecisionTree();
  WorkloadProfile profile;
  profile.http_traffic = true;
  profile.needs_path_routing = true;
  auto result = tree->Decide(profile);
  EXPECT_EQ(result.recommendation, "Application Load Balancer");
  EXPECT_GE(result.depth, 3);
  EXPECT_EQ(result.questions_asked.size(),
            static_cast<size_t>(result.depth));
}

TEST(DecisionTreeTest, ApplianceChainingYieldsGwlb) {
  auto tree = BuildLoadBalancerDecisionTree();
  WorkloadProfile profile;
  profile.chaining_appliances = true;
  auto result = tree->Decide(profile);
  EXPECT_EQ(result.recommendation, "Gateway Load Balancer");
}

TEST(DecisionTreeTest, HighPpsYieldsNlb) {
  auto tree = BuildLoadBalancerDecisionTree();
  WorkloadProfile profile;
  profile.very_high_pps = true;
  auto result = tree->Decide(profile);
  EXPECT_EQ(result.recommendation, "Network Load Balancer");
}

TEST(DecisionTreeTest, EveryProfileReachesALeaf) {
  // Exhaustive sweep over the LB-relevant attribute space: the tree is
  // total (no profile gets stuck or crashes).
  auto lb_tree = BuildLoadBalancerDecisionTree();
  auto conn_tree = BuildConnectivityDecisionTree();
  for (int bits = 0; bits < (1 << 8); ++bits) {
    WorkloadProfile p;
    p.http_traffic = bits & 1;
    p.needs_path_routing = bits & 2;
    p.internet_facing = bits & 4;
    p.needs_static_ip = bits & 8;
    p.very_high_pps = bits & 16;
    p.chaining_appliances = bits & 32;
    p.multi_region = bits & 64;
    p.needs_tls_termination = bits & 128;
    auto lb = lb_tree->Decide(p);
    EXPECT_FALSE(lb.recommendation.empty());
    EXPECT_LE(lb.depth, lb_tree->MaxDepth());
  }
  for (int bits = 0; bits < (1 << 5); ++bits) {
    WorkloadProfile p;
    p.peer_is_internal = bits & 1;
    p.peer_same_provider = bits & 2;
    p.needs_guaranteed_bandwidth = bits & 4;
    p.inbound_needed = bits & 8;
    p.ipv6_only = bits & 16;
    auto conn = conn_tree->Decide(p);
    EXPECT_FALSE(conn.recommendation.empty());
  }
}

TEST(DecisionTreeTest, ConnectivityTreeCoversTheGatewayZoo) {
  auto tree = BuildConnectivityDecisionTree();
  WorkloadProfile p;
  p.peer_is_internal = true;
  p.peer_same_provider = true;
  EXPECT_EQ(tree->Decide(p).recommendation,
            "VPC peering (mind non-transitivity)");
  p.peer_same_provider = false;
  p.needs_guaranteed_bandwidth = true;
  EXPECT_EQ(tree->Decide(p).recommendation,
            "Direct Connect + Transit Gateway + exchange");
  WorkloadProfile egress;
  egress.ipv6_only = true;
  EXPECT_EQ(tree->Decide(egress).recommendation,
            "Egress-only Internet Gateway");
  WorkloadProfile nat;
  EXPECT_EQ(tree->Decide(nat).recommendation,
            "NAT Gateway in a public subnet (plus an IGW)");
}

}  // namespace
}  // namespace tenantnet
