// Environment knobs for randomized / long-running tests.
//
// CI runs short, nightly runs long, and a failure must be reproducible
// from the log line alone:
//   TN_SEED=<n>   override the RNG seed (for parameterized fuzz suites,
//                 replaces the whole seed list with this one seed)
//   TN_ITERS=<n>  override the iteration / duration budget
// Tests log the effective seed via SCOPED_TRACE, so any assertion failure
// prints the exact TN_SEED/TN_ITERS pair to rerun it.

#ifndef TENANTNET_TESTS_TEST_ENV_H_
#define TENANTNET_TESTS_TEST_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace tenantnet {
namespace test_env {

inline uint64_t SeedOverride(uint64_t fallback) {
  const char* value = std::getenv("TN_SEED");
  if (value != nullptr && *value != '\0') {
    return std::strtoull(value, nullptr, 10);
  }
  return fallback;
}

inline int64_t ItersOverride(int64_t fallback) {
  const char* value = std::getenv("TN_ITERS");
  if (value != nullptr && *value != '\0') {
    int64_t parsed = std::strtoll(value, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return fallback;
}

// Seed list for INSTANTIATE_TEST_SUITE_P: the defaults, unless TN_SEED
// narrows the run to exactly that seed.
inline std::vector<uint64_t> SeedList(std::vector<uint64_t> defaults) {
  const char* value = std::getenv("TN_SEED");
  if (value != nullptr && *value != '\0') {
    return {std::strtoull(value, nullptr, 10)};
  }
  return defaults;
}

// Seeded (src, dst) pair sampler shared by the randomized suites — the one
// place tests draw "a random endpoint pair" or "a random element" from, so
// every suite's sampling is reproducible from the same TN_SEED log line.
// Self-contained splitmix64: deliberately independent of src/common/rng, so
// a production RNG change can never silently reshuffle test trajectories.
class PairSampler {
 public:
  explicit PairSampler(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform index in [0, n). n must be > 0.
  size_t Index(size_t n) { return static_cast<size_t>(NextU64() % n); }

  bool Chance(double p) {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53 < p;
  }

  // One (src, dst) index pair over [0, n_src) x [0, n_dst). With `distinct`
  // (same index space both sides) the pair never aliases src == dst.
  std::pair<size_t, size_t> Pair(size_t n_src, size_t n_dst,
                                 bool distinct = true) {
    size_t src = Index(n_src);
    size_t dst = Index(n_dst);
    while (distinct && n_dst > 1 && src == dst) {
      dst = Index(n_dst);
    }
    return {src, dst};
  }

  // "pair#17 src=3 dst=9" — for SCOPED_TRACE, so a failing sampled probe
  // names the draw that produced it.
  static std::string ReproLine(size_t draw, size_t src, size_t dst) {
    return "pair#" + std::to_string(draw) + " src=" + std::to_string(src) +
           " dst=" + std::to_string(dst);
  }

 private:
  uint64_t state_;
};

}  // namespace test_env
}  // namespace tenantnet

#endif  // TENANTNET_TESTS_TEST_ENV_H_
