// Environment knobs for randomized / long-running tests.
//
// CI runs short, nightly runs long, and a failure must be reproducible
// from the log line alone:
//   TN_SEED=<n>   override the RNG seed (for parameterized fuzz suites,
//                 replaces the whole seed list with this one seed)
//   TN_ITERS=<n>  override the iteration / duration budget
// Tests log the effective seed via SCOPED_TRACE, so any assertion failure
// prints the exact TN_SEED/TN_ITERS pair to rerun it.

#ifndef TENANTNET_TESTS_TEST_ENV_H_
#define TENANTNET_TESTS_TEST_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace tenantnet {
namespace test_env {

inline uint64_t SeedOverride(uint64_t fallback) {
  const char* value = std::getenv("TN_SEED");
  if (value != nullptr && *value != '\0') {
    return std::strtoull(value, nullptr, 10);
  }
  return fallback;
}

inline int64_t ItersOverride(int64_t fallback) {
  const char* value = std::getenv("TN_ITERS");
  if (value != nullptr && *value != '\0') {
    int64_t parsed = std::strtoll(value, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return fallback;
}

// Seed list for INSTANTIATE_TEST_SUITE_P: the defaults, unless TN_SEED
// narrows the run to exactly that seed.
inline std::vector<uint64_t> SeedList(std::vector<uint64_t> defaults) {
  const char* value = std::getenv("TN_SEED");
  if (value != nullptr && *value != '\0') {
    return {std::strtoull(value, nullptr, 10)};
  }
  return defaults;
}

}  // namespace test_env
}  // namespace tenantnet

#endif  // TENANTNET_TESTS_TEST_ENV_H_
