// Tests for the §4-anticipated API extensions: endpoint groups, incremental
// permit-list updates, and traffic-scoped QoS reservations.

#include <gtest/gtest.h>

#include "src/cloud/presets.h"
#include "src/core/api.h"

namespace tenantnet {
namespace {

FiveTuple Flow(IpAddress src, IpAddress dst, uint16_t dport,
               Protocol proto = Protocol::kTcp) {
  FiveTuple t;
  t.src = src;
  t.dst = dst;
  t.src_port = 40000;
  t.dst_port = dport;
  t.proto = proto;
  return t;
}

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : tw_(BuildTestWorld()), cloud_(*tw_.world, ledger_) {}

  InstanceId Launch(RegionId region, int zone = 0) {
    return *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, region, zone);
  }

  TestWorld tw_;
  ConfigLedger ledger_;
  DeclarativeCloud cloud_;
};

// --- Endpoint groups --------------------------------------------------------

TEST_F(ExtensionsTest, GroupLifecycle) {
  auto group = cloud_.CreateEndpointGroup(tw_.tenant, "spark-workers");
  ASSERT_TRUE(group.ok());
  InstanceId vm = Launch(tw_.east);
  IpAddress eip = *cloud_.RequestEip(vm);
  ASSERT_TRUE(cloud_.AddToEndpointGroup(*group, eip).ok());
  auto members = cloud_.GroupMembers(*group);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 1u);
  ASSERT_TRUE(cloud_.RemoveFromEndpointGroup(*group, eip).ok());
  EXPECT_TRUE(cloud_.GroupMembers(*group)->empty());
  EXPECT_EQ(cloud_.RemoveFromEndpointGroup(*group, eip).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(cloud_.DeleteEndpointGroup(*group).ok());
  EXPECT_FALSE(cloud_.GroupMembers(*group).ok());
}

TEST_F(ExtensionsTest, GroupMembershipIsTenantScoped) {
  auto group = *cloud_.CreateEndpointGroup(tw_.tenant, "mine");
  TenantId other = tw_.world->AddTenant("other");
  InstanceId foreign_vm =
      *tw_.world->LaunchInstance(other, tw_.provider, tw_.east, 0);
  IpAddress foreign_eip = *cloud_.RequestEip(foreign_vm);
  EXPECT_EQ(cloud_.AddToEndpointGroup(group, foreign_eip).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ExtensionsTest, GroupPermitEntryAdmitsMembers) {
  auto group = *cloud_.CreateEndpointGroup(tw_.tenant, "clients");
  InstanceId server = Launch(tw_.east);
  InstanceId member = Launch(tw_.west);
  InstanceId outsider = Launch(tw_.west, 1);
  IpAddress server_eip = *cloud_.RequestEip(server);
  IpAddress member_eip = *cloud_.RequestEip(member);
  IpAddress outsider_eip = *cloud_.RequestEip(outsider);
  (void)outsider_eip;
  ASSERT_TRUE(cloud_.AddToEndpointGroup(group, member_eip).ok());

  PermitEntry by_group;
  by_group.source_group = group;
  by_group.dst_ports = PortRange::Single(443);
  ASSERT_TRUE(cloud_.SetPermitList(server_eip, {by_group}).ok());

  auto from_member = cloud_.Evaluate(member, server_eip, 443, Protocol::kTcp);
  EXPECT_TRUE(from_member->delivered)
      << from_member->drop_stage << ": " << from_member->drop_reason;
  auto from_outsider =
      cloud_.Evaluate(outsider, server_eip, 443, Protocol::kTcp);
  EXPECT_FALSE(from_outsider->delivered);
  // Wrong port fails even for members (entry scope).
  auto wrong_port = cloud_.Evaluate(member, server_eip, 80, Protocol::kTcp);
  EXPECT_FALSE(wrong_port->delivered);
}

TEST_F(ExtensionsTest, MembershipChangeUpdatesEveryReferencingList) {
  // One group referenced by N permit lists: adding a member takes one call
  // and immediately opens all N — the churn-cost win the ablation measures.
  auto group = *cloud_.CreateEndpointGroup(tw_.tenant, "web");
  std::vector<InstanceId> servers;
  std::vector<IpAddress> server_eips;
  for (int i = 0; i < 5; ++i) {
    servers.push_back(Launch(tw_.east, i % 2));
    server_eips.push_back(*cloud_.RequestEip(servers.back()));
    PermitEntry by_group;
    by_group.source_group = group;
    ASSERT_TRUE(cloud_.SetPermitList(server_eips.back(), {by_group}).ok());
  }
  InstanceId newcomer = Launch(tw_.west);
  IpAddress newcomer_eip = *cloud_.RequestEip(newcomer);
  for (const IpAddress& eip : server_eips) {
    EXPECT_FALSE(cloud_.Evaluate(newcomer, eip, 443, Protocol::kTcp)
                     ->delivered);
  }
  ASSERT_TRUE(cloud_.AddToEndpointGroup(group, newcomer_eip).ok());
  for (const IpAddress& eip : server_eips) {
    EXPECT_TRUE(cloud_.Evaluate(newcomer, eip, 443, Protocol::kTcp)
                    ->delivered);
  }
}

TEST_F(ExtensionsTest, ReleasedEipLeavesItsGroups) {
  auto group = *cloud_.CreateEndpointGroup(tw_.tenant, "g");
  InstanceId vm = Launch(tw_.east);
  IpAddress eip = *cloud_.RequestEip(vm);
  ASSERT_TRUE(cloud_.AddToEndpointGroup(group, eip).ok());
  ASSERT_TRUE(cloud_.ReleaseEip(eip).ok());
  EXPECT_TRUE(cloud_.GroupMembers(group)->empty());
  // A recycled address must not inherit the old grant.
  InstanceId vm2 = Launch(tw_.east, 1);
  IpAddress recycled = *cloud_.RequestEip(vm2);
  EXPECT_EQ(recycled, eip);
  EXPECT_TRUE(cloud_.GroupMembers(group)->empty());
}

TEST_F(ExtensionsTest, PermitListRejectsUnknownGroup) {
  InstanceId vm = Launch(tw_.east);
  IpAddress eip = *cloud_.RequestEip(vm);
  PermitEntry bad;
  bad.source_group = EndpointGroupId(999);
  EXPECT_EQ(cloud_.SetPermitList(eip, {bad}).status().code(),
            StatusCode::kNotFound);
}

// --- Incremental permit-list updates ----------------------------------------

TEST_F(ExtensionsTest, UpdatePermitListAddsAndRemoves) {
  InstanceId server = Launch(tw_.east);
  InstanceId a = Launch(tw_.west);
  InstanceId b = Launch(tw_.west, 1);
  IpAddress server_eip = *cloud_.RequestEip(server);
  IpAddress a_eip = *cloud_.RequestEip(a);
  IpAddress b_eip = *cloud_.RequestEip(b);

  PermitEntry permit_a;
  permit_a.source = IpPrefix::Host(a_eip);
  ASSERT_TRUE(cloud_.SetPermitList(server_eip, {permit_a}).ok());
  EXPECT_TRUE(cloud_.Evaluate(a, server_eip, 1, Protocol::kTcp)->delivered);
  EXPECT_FALSE(cloud_.Evaluate(b, server_eip, 1, Protocol::kTcp)->delivered);

  PermitEntry permit_b;
  permit_b.source = IpPrefix::Host(b_eip);
  ASSERT_TRUE(
      cloud_.UpdatePermitList(server_eip, {permit_b}, {permit_a}).ok());
  EXPECT_FALSE(cloud_.Evaluate(a, server_eip, 1, Protocol::kTcp)->delivered);
  EXPECT_TRUE(cloud_.Evaluate(b, server_eip, 1, Protocol::kTcp)->delivered);
}

TEST_F(ExtensionsTest, UpdatePermitListIsIdempotentOnDuplicates) {
  InstanceId server = Launch(tw_.east);
  InstanceId a = Launch(tw_.west);
  IpAddress server_eip = *cloud_.RequestEip(server);
  IpAddress a_eip = *cloud_.RequestEip(a);
  PermitEntry permit_a;
  permit_a.source = IpPrefix::Host(a_eip);
  ASSERT_TRUE(cloud_.SetPermitList(server_eip, {permit_a}).ok());
  // Re-adding the same entry does not duplicate it.
  ASSERT_TRUE(cloud_.UpdatePermitList(server_eip, {permit_a}, {}).ok());
  auto& bank = cloud_.provider_filters(tw_.provider);
  EXPECT_EQ(bank.total_installed_entries(),
            bank.edge_count() * 1u);
}

// --- Scoped QoS reservations -------------------------------------------------

TEST_F(ExtensionsTest, ScopedQuotaOnlyBindsSelectedTraffic) {
  QosSelector backups;
  backups.dst_prefix = *IpPrefix::Parse("20.0.0.0/8");  // the other cloud
  backups.dst_ports = PortRange::Single(873);
  ASSERT_TRUE(cloud_.SetQos(tw_.tenant, tw_.east, 1e6, backups).ok());

  EgressQuotaManager& qos = cloud_.qos();
  SimTime now = SimTime::Epoch() + SimDuration::Millis(1);
  FiveTuple reserved = Flow(IpAddress::V4(5, 0, 0, 1),
                            IpAddress::V4(20, 1, 2, 3), 873);
  FiveTuple other = Flow(IpAddress::V4(5, 0, 0, 1),
                         IpAddress::V4(20, 1, 2, 3), 443);
  EXPECT_TRUE(qos.IsReserved(tw_.tenant, tw_.east, reserved));
  EXPECT_FALSE(qos.IsReserved(tw_.tenant, tw_.east, other));

  // Reserved traffic consumes the bucket and eventually throttles...
  uint64_t admitted = 0;
  for (int i = 0; i < 1000; ++i) {
    if (qos.TryConsumeFlow(tw_.tenant, tw_.east, 0, reserved, 1e4, now)) {
      ++admitted;
    }
  }
  EXPECT_LT(admitted, 1000u);
  // ...while unselected traffic is never limited by the reservation.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(qos.TryConsumeFlow(tw_.tenant, tw_.east, 0, other, 1e4, now));
  }
}

TEST_F(ExtensionsTest, UnscopedQuotaBindsEverything) {
  ASSERT_TRUE(cloud_.SetQos(tw_.tenant, tw_.east, 1e6).ok());
  FiveTuple any = Flow(IpAddress::V4(5, 0, 0, 1),
                       IpAddress::V4(99, 1, 2, 3), 443);
  EXPECT_TRUE(cloud_.qos().IsReserved(tw_.tenant, tw_.east, any));
}

TEST_F(ExtensionsTest, ExtensionCallsAreLedgered) {
  auto group = *cloud_.CreateEndpointGroup(tw_.tenant, "g");
  InstanceId vm = Launch(tw_.east);
  IpAddress eip = *cloud_.RequestEip(vm);
  (void)cloud_.AddToEndpointGroup(group, eip);
  (void)cloud_.UpdatePermitList(eip, {}, {});
  QosSelector selector;
  (void)cloud_.SetQos(tw_.tenant, tw_.east, 1e9, selector);
  // create_group + request_eip + group_add + update_permit_list + set_qos.
  EXPECT_EQ(ledger_.api_calls(), 5u);
  EXPECT_EQ(ledger_.components(), 0u);  // still no boxes
}

}  // namespace
}  // namespace tenantnet
