// Tests for target groups and the four load-balancer families.

#include <gtest/gtest.h>

#include <map>

#include "src/vnet/load_balancer.h"

namespace tenantnet {
namespace {

FiveTuple FlowTo(uint16_t dport, Protocol proto = Protocol::kTcp) {
  FiveTuple t;
  t.src = IpAddress::V4(1, 1, 1, 1);
  t.dst = IpAddress::V4(2, 2, 2, 2);
  t.src_port = 33333;
  t.dst_port = dport;
  t.proto = proto;
  return t;
}

TEST(TargetGroupTest, PickFailsWithNoHealthyTargets) {
  TargetGroup tg(TargetGroupId(1), "tg", Protocol::kTcp, 80);
  EXPECT_FALSE(tg.Pick(0).ok());
  tg.AddTarget(InstanceId(1));
  tg.SetHealth(InstanceId(1), false);
  EXPECT_EQ(tg.Pick(0).status().code(), StatusCode::kResourceExhausted);
}

TEST(TargetGroupTest, WeightedPickApproximatesWeights) {
  TargetGroup tg(TargetGroupId(1), "tg", Protocol::kTcp, 80);
  tg.AddTarget(InstanceId(1), 3.0);
  tg.AddTarget(InstanceId(2), 1.0);
  std::map<uint64_t, int> counts;
  for (uint64_t seq = 0; seq < 4000; ++seq) {
    counts[tg.Pick(seq)->value()]++;
  }
  EXPECT_NEAR(counts[1], 3000, 100);
  EXPECT_NEAR(counts[2], 1000, 100);
}

TEST(TargetGroupTest, UnhealthyTargetsAreSkipped) {
  TargetGroup tg(TargetGroupId(1), "tg", Protocol::kTcp, 80);
  tg.AddTarget(InstanceId(1));
  tg.AddTarget(InstanceId(2));
  tg.SetHealth(InstanceId(1), false);
  for (uint64_t seq = 0; seq < 50; ++seq) {
    EXPECT_EQ(*tg.Pick(seq), InstanceId(2));
  }
  EXPECT_EQ(tg.HealthyCount(), 1u);
}

TEST(TargetGroupTest, HealthProbeThresholds) {
  TargetGroup tg(TargetGroupId(1), "tg", Protocol::kTcp, 80);
  tg.mutable_health_check().healthy_threshold = 3;
  tg.mutable_health_check().unhealthy_threshold = 2;
  tg.AddTarget(InstanceId(1));

  // One failure is not enough; two flips to unhealthy.
  tg.RecordProbe(InstanceId(1), false);
  EXPECT_EQ(tg.HealthyCount(), 1u);
  tg.RecordProbe(InstanceId(1), false);
  EXPECT_EQ(tg.HealthyCount(), 0u);

  // Two successes are not enough to recover; three are.
  tg.RecordProbe(InstanceId(1), true);
  tg.RecordProbe(InstanceId(1), true);
  EXPECT_EQ(tg.HealthyCount(), 0u);
  tg.RecordProbe(InstanceId(1), true);
  EXPECT_EQ(tg.HealthyCount(), 1u);
}

TEST(TargetGroupTest, RemoveTarget) {
  TargetGroup tg(TargetGroupId(1), "tg", Protocol::kTcp, 80);
  tg.AddTarget(InstanceId(1));
  ASSERT_TRUE(tg.RemoveTarget(InstanceId(1)).ok());
  EXPECT_EQ(tg.RemoveTarget(InstanceId(1)).code(), StatusCode::kNotFound);
}

TEST(LoadBalancerTest, ListenerMatchesPortAndProtocol) {
  LoadBalancer lb(LoadBalancerId(1), LbType::kNetwork, "nlb", VpcId(1));
  LbListener listener;
  listener.proto = Protocol::kTcp;
  listener.port = 443;
  listener.default_target = TargetGroupId(9);
  lb.AddListener(listener);

  auto hit = lb.Resolve(FlowTo(443), nullptr);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, TargetGroupId(9));
  EXPECT_FALSE(lb.Resolve(FlowTo(80), nullptr).ok());
  EXPECT_FALSE(lb.Resolve(FlowTo(443, Protocol::kUdp), nullptr).ok());
}

TEST(LoadBalancerTest, AlbRulesRouteByPathHostHeader) {
  LoadBalancer lb(LoadBalancerId(1), LbType::kApplication, "alb", VpcId(1));
  LbListener listener;
  listener.proto = Protocol::kTcp;
  listener.port = 443;
  listener.default_target = TargetGroupId(1);
  lb.AddListener(listener);

  L7Rule api;
  api.priority = 10;
  api.path_prefix = "/api";
  api.target = TargetGroupId(2);
  ASSERT_TRUE(lb.AddRule(443, api).ok());
  L7Rule admin;
  admin.priority = 5;  // higher priority (lower number)
  admin.path_prefix = "/api/admin";
  admin.host_equals = "admin.example.com";
  admin.target = TargetGroupId(3);
  ASSERT_TRUE(lb.AddRule(443, admin).ok());
  L7Rule canary;
  canary.priority = 1;
  canary.header_equals = {{"x-canary"}, {"true"}};
  canary.target = TargetGroupId(4);
  ASSERT_TRUE(lb.AddRule(443, canary).ok());

  HttpRequestMeta meta;
  meta.path = "/api/users";
  meta.host = "www.example.com";
  EXPECT_EQ(*lb.Resolve(FlowTo(443), &meta), TargetGroupId(2));

  meta.path = "/api/admin/keys";
  meta.host = "admin.example.com";
  EXPECT_EQ(*lb.Resolve(FlowTo(443), &meta), TargetGroupId(3));

  meta.headers["x-canary"] = "true";
  EXPECT_EQ(*lb.Resolve(FlowTo(443), &meta), TargetGroupId(4));

  meta = HttpRequestMeta{};
  meta.path = "/static/logo.png";
  EXPECT_EQ(*lb.Resolve(FlowTo(443), &meta), TargetGroupId(1));  // default
}

TEST(LoadBalancerTest, RulesRejectedOnNonAlb) {
  LoadBalancer lb(LoadBalancerId(1), LbType::kNetwork, "nlb", VpcId(1));
  LbListener listener;
  listener.port = 443;
  listener.default_target = TargetGroupId(1);
  lb.AddListener(listener);
  L7Rule rule;
  rule.target = TargetGroupId(2);
  EXPECT_EQ(lb.AddRule(443, rule).code(), StatusCode::kFailedPrecondition);
}

TEST(LoadBalancerTest, RuleOnMissingListenerFails) {
  LoadBalancer lb(LoadBalancerId(1), LbType::kApplication, "alb", VpcId(1));
  L7Rule rule;
  rule.target = TargetGroupId(2);
  EXPECT_EQ(lb.AddRule(443, rule).code(), StatusCode::kNotFound);
}

TEST(LoadBalancerTest, NonAlbIgnoresRequestMeta) {
  LoadBalancer lb(LoadBalancerId(1), LbType::kClassic, "clb", VpcId(1));
  LbListener listener;
  listener.port = 80;
  listener.default_target = TargetGroupId(5);
  lb.AddListener(listener);
  HttpRequestMeta meta;
  meta.path = "/whatever";
  EXPECT_EQ(*lb.Resolve(FlowTo(80), &meta), TargetGroupId(5));
}

TEST(LoadBalancerTest, TypeNames) {
  EXPECT_EQ(LbTypeName(LbType::kApplication), "application-lb");
  EXPECT_EQ(LbTypeName(LbType::kNetwork), "network-lb");
  EXPECT_EQ(LbTypeName(LbType::kClassic), "classic-lb");
  EXPECT_EQ(LbTypeName(LbType::kGateway), "gateway-lb");
}

}  // namespace
}  // namespace tenantnet
