// Trace-driven integration: replay a synthetic tenant churn trace against
// the declarative control plane and check global invariants throughout —
// the long-running-soak equivalent for the §6(i) machinery.

#include <gtest/gtest.h>

#include <map>

#include "src/app/trace.h"
#include "src/routing/route_table.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"

namespace tenantnet {
namespace {

TEST(TraceReplayTest, ControlPlaneSurvivesChurn) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& world = *tw.world;
  ConfigLedger ledger;
  DeclarativeCloud cloud(world, ledger);

  TraceParams params;
  params.tenants = 3;
  params.launches_per_second_per_tenant = 1.0;
  params.duration = SimDuration::Seconds(400);
  params.mean_lifetime_seconds = 80;
  params.seed = 31337;
  TenantTrace trace = GenerateTrace(params);

  // Trace tenants -> world tenants.
  std::vector<TenantId> tenants;
  for (uint64_t t = 0; t < params.tenants; ++t) {
    tenants.push_back(world.AddTenant("trace-tenant-" + std::to_string(t)));
  }

  struct LiveInstance {
    InstanceId id;
    IpAddress eip;
  };
  std::map<uint64_t, LiveInstance> live;  // trace instance -> world state
  uint64_t max_live = 0;
  uint64_t peak_rib = 0;

  for (const TraceEvent& event : trace.events) {
    if (event.kind == TraceEventKind::kLaunch) {
      auto inst = world.LaunchInstance(
          tenants[event.tenant], tw.provider,
          event.instance % 2 == 0 ? tw.east : tw.west,
          static_cast<int>(event.instance % 2));
      ASSERT_TRUE(inst.ok());
      auto eip = cloud.RequestEip(*inst);
      ASSERT_TRUE(eip.ok()) << "EIP pool exhausted at live=" << live.size();
      // Permit the communication partners that are still alive.
      std::vector<PermitEntry> permits;
      for (uint64_t partner : event.talks_to) {
        auto it = live.find(partner);
        if (it != live.end()) {
          PermitEntry e;
          e.source = IpPrefix::Host(it->second.eip);
          permits.push_back(e);
        }
      }
      ASSERT_TRUE(cloud.SetPermitList(*eip, permits).ok());
      live[event.instance] = LiveInstance{*inst, *eip};
    } else {
      auto it = live.find(event.instance);
      if (it == live.end()) {
        continue;
      }
      ASSERT_TRUE(cloud.ReleaseEip(it->second.eip).ok());
      ASSERT_TRUE(world.TerminateInstance(it->second.id).ok());
      live.erase(it);
    }
    max_live = std::max<uint64_t>(max_live, live.size());
    peak_rib = std::max<uint64_t>(peak_rib,
                                  cloud.ProviderRibEntries(tw.provider));

    // Invariants, checked continuously:
    // 1. The provider's RIB holds exactly one host route per live EIP.
    ASSERT_EQ(cloud.ProviderRibEntries(tw.provider), live.size());
    // 2. EIP count matches the live population.
    ASSERT_EQ(cloud.eip_count(), live.size());
  }

  EXPECT_GT(trace.total_instances, 500u);
  EXPECT_GT(max_live, 50u);
  EXPECT_EQ(peak_rib, max_live);

  // After the full trace every instance tore down: the control plane is
  // empty again and the provider table is clean.
  EXPECT_EQ(live.size(), 0u);
  EXPECT_EQ(cloud.eip_count(), 0u);
  EXPECT_EQ(cloud.ProviderRibEntries(tw.provider), 0u);
  // And the aggregated view of an empty table is empty.
  EXPECT_EQ(cloud.ProviderAggregatedRibEntries(tw.provider), 0u);
}

// Replays one trace's launch/teardown sequence against a HostAllocator
// with the given reuse policy; returns the aggregated table size at the
// trace's live-population peak.
size_t AggregatedAtPeak(HostAllocator::ReusePolicy policy) {
  TraceParams params;
  params.tenants = 2;
  params.launches_per_second_per_tenant = 2.0;
  params.duration = SimDuration::Seconds(300);
  params.mean_lifetime_seconds = 100;
  params.seed = 99;
  TenantTrace trace = GenerateTrace(params);

  HostAllocator pool(*IpPrefix::Parse("5.0.0.0/16"), policy);
  std::map<uint64_t, IpAddress> live;
  size_t best_live = 0;
  size_t aggregated_at_peak = 0;
  for (const TraceEvent& event : trace.events) {
    if (event.kind == TraceEventKind::kLaunch) {
      live[event.instance] = *pool.Allocate();
    } else if (auto it = live.find(event.instance); it != live.end()) {
      (void)pool.Release(it->second);
      live.erase(it);
    }
    if (live.size() > best_live) {
      best_live = live.size();
      std::vector<IpPrefix> prefixes;
      for (const auto& [id, addr] : live) {
        prefixes.push_back(IpPrefix::Host(addr));
      }
      aggregated_at_peak = AggregatePrefixes(std::move(prefixes)).size();
    }
  }
  return aggregated_at_peak;
}

TEST(TraceReplayTest, DenseReusePolicyAggregatesBetterThanLifo) {
  // The E4a aggregation-freedom property, on a realistic churn trace: the
  // provider's *choice* of reuse policy (possible only because tenants
  // cannot pin addresses) determines how compressible the table is.
  // At the live-population peak the dense (lowest-first) policy must beat
  // LIFO and must genuinely compress relative to flat host routes.
  size_t lifo = AggregatedAtPeak(HostAllocator::ReusePolicy::kLifo);
  size_t dense = AggregatedAtPeak(HostAllocator::ReusePolicy::kLowestFirst);
  EXPECT_LE(dense, lifo);
  // Honest bound, not magic: aggregation is limited by the holes churn has
  // punched (peak-live vs current-live interleaving). We require a real
  // win at the peak, where the dense policy has had room to work.
  EXPECT_LT(dense, 200u) << "dense=" << dense << " lifo=" << lifo;
}

}  // namespace
}  // namespace tenantnet
