// Tests for the synthetic tenant trace generator.

#include <gtest/gtest.h>

#include "src/app/trace.h"

namespace tenantnet {
namespace {

TEST(TraceTest, DeterministicForSameParams) {
  TraceParams params;
  params.tenants = 3;
  params.duration = SimDuration::Seconds(200);
  TenantTrace a = GenerateTrace(params);
  TenantTrace b = GenerateTrace(params);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].instance, b.events[i].instance);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
  }
  params.seed = 4321;
  TenantTrace c = GenerateTrace(params);
  EXPECT_NE(c.events.size(), 0u);
}

TEST(TraceTest, EventsAreTimeOrdered) {
  TraceParams params;
  params.duration = SimDuration::Seconds(600);
  TenantTrace trace = GenerateTrace(params);
  for (size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].at, trace.events[i].at);
  }
}

TEST(TraceTest, EveryLaunchHasExactlyOneTeardown) {
  TraceParams params;
  params.tenants = 4;
  params.duration = SimDuration::Seconds(300);
  TenantTrace trace = GenerateTrace(params);
  std::map<uint64_t, int> balance;
  for (const TraceEvent& e : trace.events) {
    balance[e.instance] += (e.kind == TraceEventKind::kLaunch) ? 1 : -1;
  }
  for (const auto& [instance, count] : balance) {
    EXPECT_EQ(count, 0) << "instance " << instance;
  }
  EXPECT_EQ(balance.size(), trace.total_instances);
}

TEST(TraceTest, LaunchRateMatchesConfiguration) {
  TraceParams params;
  params.tenants = 5;
  params.launches_per_second_per_tenant = 3.0;
  params.duration = SimDuration::Seconds(400);
  TenantTrace trace = GenerateTrace(params);
  // Expected launches: 5 * 3 * 400 = 6000; Poisson noise is ~77.
  EXPECT_NEAR(static_cast<double>(trace.total_instances), 6000, 400);
}

TEST(TraceTest, PeakLiveTracksChurn) {
  TraceParams params;
  params.tenants = 2;
  params.duration = SimDuration::Seconds(300);
  params.mean_lifetime_seconds = 50;
  TenantTrace trace = GenerateTrace(params);
  EXPECT_GT(trace.peak_live_instances, 0u);
  EXPECT_LT(trace.peak_live_instances, trace.total_instances);
  // Rough steady state: rate * mean lifetime per tenant = 2*2*50 = 200...
  // with heavy-tailed lifetimes the peak exceeds the naive product; just
  // sanity-bound it.
  EXPECT_GT(trace.peak_live_instances, 50u);
}

TEST(TraceTest, LaunchesCarryCommunicationPartners) {
  TraceParams params;
  params.tenants = 2;
  params.duration = SimDuration::Seconds(300);
  TenantTrace trace = GenerateTrace(params);
  uint64_t with_partners = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEventKind::kLaunch && !e.talks_to.empty()) {
      ++with_partners;
      for (uint64_t partner : e.talks_to) {
        EXPECT_NE(partner, e.instance);  // no self-communication
      }
    }
  }
  EXPECT_GT(with_partners, trace.total_instances / 2);
}

TEST(TraceTest, HeavyTailedLifetimes) {
  TraceParams params;
  params.tenants = 4;
  params.duration = SimDuration::Seconds(1000);
  params.mean_lifetime_seconds = 100;
  TenantTrace trace = GenerateTrace(params);
  // Collect lifetimes from matched launch/teardown pairs.
  std::map<uint64_t, SimTime> launched;
  std::vector<double> lifetimes;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEventKind::kLaunch) {
      launched[e.instance] = e.at;
    } else {
      auto it = launched.find(e.instance);
      if (it != launched.end()) {
        lifetimes.push_back((e.at - it->second).ToSeconds());
      }
    }
  }
  ASSERT_GT(lifetimes.size(), 100u);
  std::sort(lifetimes.begin(), lifetimes.end());
  double median = lifetimes[lifetimes.size() / 2];
  double p95 = lifetimes[static_cast<size_t>(0.95 * lifetimes.size())];
  // Pareto 1.3: the 95th percentile dwarfs the median.
  EXPECT_GT(p95 / median, 5.0);
}

}  // namespace
}  // namespace tenantnet
