// Fuzz-style robustness tests: random baseline configurations — including
// dangling references and half-built networks — must never crash the data
// plane; every evaluation terminates with a classified verdict.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/common/rng.h"
#include "src/reach/reach.h"
#include "src/vnet/fabric.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

class FabricFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FabricFuzzTest, RandomConfigsNeverCrashEvaluation) {
  const int iters = static_cast<int>(test_env::ItersOverride(400));
  SCOPED_TRACE("reproduce with TN_SEED=" + std::to_string(GetParam()) +
               " TN_ITERS=" + std::to_string(iters));
  Rng rng(GetParam());
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);

  std::vector<VpcId> vpcs;
  std::vector<SubnetId> subnets;
  std::vector<SecurityGroupId> sgs;
  std::vector<InstanceId> instances;
  std::vector<VpcRouteTableId> tables;
  std::vector<PeeringId> peerings;
  std::vector<TransitGatewayId> tgws;

  // Random construction: many calls will fail (overlaps, bad zones) — that
  // is part of the point; we keep whatever succeeded.
  for (int step = 0; step < iters; ++step) {
    switch (rng.NextU64(10)) {
      case 0: {
        uint8_t octet = static_cast<uint8_t>(rng.NextU64(250));
        auto vpc = net.CreateVpc(
            tw.tenant, tw.provider,
            rng.NextBool(0.5) ? tw.east : tw.west,
            "v" + std::to_string(step),
            *IpPrefix::Create(IpAddress::V4(10, octet, 0, 0), 16));
        if (vpc.ok()) {
          vpcs.push_back(*vpc);
        }
        break;
      }
      case 1: {
        if (vpcs.empty()) {
          break;
        }
        auto subnet = net.CreateSubnet(
            vpcs[rng.NextU64(vpcs.size())], "s" + std::to_string(step),
            static_cast<int>(18 + rng.NextU64(8)),
            static_cast<int>(rng.NextU64(3)), rng.NextBool(0.3));
        if (subnet.ok()) {
          subnets.push_back(*subnet);
        }
        break;
      }
      case 2: {
        if (vpcs.empty()) {
          break;
        }
        auto sg = net.CreateSecurityGroup(vpcs[rng.NextU64(vpcs.size())],
                                          "sg" + std::to_string(step));
        if (sg.ok()) {
          sgs.push_back(*sg);
          if (rng.NextBool(0.8)) {
            SgRule rule;
            rule.direction = rng.NextBool(0.5) ? TrafficDirection::kIngress
                                               : TrafficDirection::kEgress;
            rule.proto = rng.NextBool(0.5) ? Protocol::kAny : Protocol::kTcp;
            rule.peer = rng.NextBool(0.5)
                            ? SgPeer(IpPrefix::Any(IpFamily::kIpv4))
                            : SgPeer(SecurityGroupId(rng.NextU64(20)));
            (void)net.AddSgRule(*sg, rule);
          }
        }
        break;
      }
      case 3: {
        if (subnets.empty() || sgs.empty()) {
          break;
        }
        auto inst = tw.world->LaunchInstance(
            tw.tenant, tw.provider, rng.NextBool(0.5) ? tw.east : tw.west,
            static_cast<int>(rng.NextU64(2)));
        if (!inst.ok()) {
          break;
        }
        auto eni = net.AttachInstance(
            *inst, subnets[rng.NextU64(subnets.size())],
            {sgs[rng.NextU64(sgs.size())]}, rng.NextBool(0.3));
        if (eni.ok()) {
          instances.push_back(*inst);
        }
        break;
      }
      case 4: {
        if (vpcs.empty()) {
          break;
        }
        auto table = net.CreateRouteTable(vpcs[rng.NextU64(vpcs.size())],
                                          "rt" + std::to_string(step));
        if (table.ok()) {
          tables.push_back(*table);
        }
        break;
      }
      case 5: {
        if (tables.empty()) {
          break;
        }
        // Routes with possibly dangling targets — the data plane must
        // classify these as drops, never crash.
        VpcRouteTarget target;
        target.kind = static_cast<VpcRouteTargetKind>(rng.NextU64(8));
        target.target_id = rng.NextU64(25);
        uint8_t octet = static_cast<uint8_t>(rng.NextU64(255));
        (void)net.AddRoute(
            tables[rng.NextU64(tables.size())],
            *IpPrefix::Create(IpAddress::V4(10, octet, 0, 0),
                              static_cast<int>(8 + rng.NextU64(17))),
            target);
        break;
      }
      case 6: {
        if (subnets.empty() || tables.empty()) {
          break;
        }
        (void)net.AssociateRouteTable(subnets[rng.NextU64(subnets.size())],
                                      tables[rng.NextU64(tables.size())]);
        break;
      }
      case 7: {
        if (vpcs.size() < 2) {
          break;
        }
        auto peering = net.CreatePeering(vpcs[rng.NextU64(vpcs.size())],
                                         vpcs[rng.NextU64(vpcs.size())],
                                         "p" + std::to_string(step));
        if (peering.ok()) {
          peerings.push_back(*peering);
          if (rng.NextBool(0.7)) {
            (void)net.AcceptPeering(*peering);
          }
        }
        break;
      }
      case 8: {
        auto tgw = net.CreateTransitGateway(
            tw.provider, rng.NextBool(0.5) ? tw.east : tw.west,
            static_cast<uint32_t>(64600 + step), "tgw" + std::to_string(step));
        if (tgw.ok()) {
          tgws.push_back(*tgw);
          if (!vpcs.empty()) {
            (void)net.AttachVpcToTgw(*tgw, vpcs[rng.NextU64(vpcs.size())]);
          }
        }
        break;
      }
      case 9: {
        if (vpcs.empty()) {
          break;
        }
        (void)net.CreateInternetGateway(vpcs[rng.NextU64(vpcs.size())],
                                        "igw" + std::to_string(step));
        break;
      }
    }
  }

  // Evaluate a pile of random pairs and external probes; assert the
  // structural contract, and that the reach engine summarizes every random
  // config identically to the evaluator — same verdict, same deny stage.
  BaselineReachEngine reach(net);
  for (int probe = 0; probe < iters + 100 && instances.size() >= 2; ++probe) {
    InstanceId src = instances[rng.NextU64(instances.size())];
    InstanceId dst = instances[rng.NextU64(instances.size())];
    if (src == dst) {
      continue;
    }
    uint16_t port = static_cast<uint16_t>(1 + rng.NextU64(65000));
    Protocol proto = rng.NextBool(0.8) ? Protocol::kTcp : Protocol::kUdp;
    auto result = net.Evaluate(src, dst, port, proto);
    ReachVerdict verdict = reach.CanReach(src, dst, port, proto);
    if (!result.ok()) {
      // A classified input error must read as unreachable, never crash.
      EXPECT_FALSE(verdict.reachable) << verdict.ToString();
      continue;
    }
    EXPECT_EQ(verdict.reachable, result->delivered) << verdict.ToString();
    if (result->delivered) {
      EXPECT_TRUE(result->dst_node.valid());
      EXPECT_TRUE(result->drop_stage.empty());
    } else {
      EXPECT_FALSE(result->drop_stage.empty());
      EXPECT_EQ(DenyStages().Name(verdict.deny_stage), result->drop_stage)
          << verdict.ToString();
    }
  }
  for (int probe = 0; probe < iters / 2; ++probe) {
    IpAddress target =
        IpAddress::V4(static_cast<uint32_t>(rng.NextU64()));
    auto result = net.EvaluateExternal(IpAddress::V4(198, 18, 0, 1), target,
                                       443, Protocol::kTcp);
    if (!result.delivered) {
      EXPECT_FALSE(result.drop_stage.empty());
    }
  }
}

// TN_SEED narrows the sweep to one seed; nightly lanes can raise TN_ITERS.
INSTANTIATE_TEST_SUITE_P(Seeds, FabricFuzzTest,
                         ::testing::ValuesIn(test_env::SeedList(
                             {1, 2, 3, 5, 8, 13, 21, 34})));

}  // namespace
}  // namespace tenantnet
