// Randomized differential fuzz for the bottleneck-structured incremental
// water-filler.
//
// Property: a FlowSim running the default incremental re-level must stay
// *bit-identical* — not epsilon-close — to a twin FlowSim replaying the
// same seeded churn script with SetIncrementalRelevel(false), i.e. the
// from-scratch component-fill oracle. After every round the two sims'
// fingerprints are compared as raw IEEE-754 bit patterns: per-flow rates
// (sorted by FlowId), per-link allocated bits/sec, remaining bytes of
// finite transfers, and the completion/reschedule counters. Equality to
// the last bit is the contract that makes the incremental path an
// optimization rather than an approximation (same discipline as the reach
// revalidator's fingerprint_identical gate).
//
// The script mixes every mutation the allocator handles: persistent and
// finite starts across an overlapping pod/core world, disjoint chains and
// a staggered-lane trunk; cancels racing completions; rate-cap and weight
// churn; link down/up (both the stall path and abort handlers); and
// nested BatchScope bursts. Between rounds both event queues advance the
// same simulated interval, so completion-driven reallocation is part of
// the replayed script too.
//
// Reproduce any failure with the TN_SEED / TN_ITERS pair printed by
// SCOPED_TRACE.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/flow_sim.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

// One sim plus its private queue/topology. Both twins are built by the
// same deterministic routine, so LinkIds and candidate paths line up.
struct Twin {
  EventQueue queue;
  Topology topo;
  std::vector<std::vector<LinkId>> paths;
  std::vector<LinkId> links;  // every link, for toggles and fingerprints
  std::unique_ptr<FlowSim> sim;
};

// A little of every churn-bench shape at once: 6 pods sharing one core
// link (one giant component), 3 disjoint 2-link chains (tiny components),
// and 4 staggered lanes into a 2G trunk (deep bottleneck decomposition).
void BuildWorld(Twin& t) {
  NodeId core_a = t.topo.AddNode({"ca", NodeKind::kBackboneRouter, "x"});
  NodeId core_b = t.topo.AddNode({"cb", NodeKind::kBackboneRouter, "x"});
  LinkId core = t.topo.AddLink({core_a, core_b, 4e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0, LinkClass::kBackbone});
  t.links.push_back(core);
  for (size_t p = 0; p < 6; ++p) {
    NodeId pod = t.topo.AddNode({"p", NodeKind::kHostAggregate, "x"});
    LinkId up = t.topo.AddLink({pod, core_a, 1e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
    t.links.push_back(up);
    t.paths.push_back({up, core});
  }
  for (size_t g = 0; g < 3; ++g) {
    NodeId a = t.topo.AddNode({"a", NodeKind::kHostAggregate, "x"});
    NodeId b = t.topo.AddNode({"b", NodeKind::kBackboneRouter, "x"});
    NodeId c = t.topo.AddNode({"c", NodeKind::kHostAggregate, "x"});
    LinkId ab = t.topo.AddLink({a, b, 1e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
    LinkId bc = t.topo.AddLink({b, c, 0.5e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
    t.links.push_back(ab);
    t.links.push_back(bc);
    t.paths.push_back({ab, bc});
  }
  NodeId trunk_a = t.topo.AddNode({"ta", NodeKind::kBackboneRouter, "x"});
  NodeId trunk_b = t.topo.AddNode({"tb", NodeKind::kBackboneRouter, "x"});
  LinkId trunk = t.topo.AddLink({trunk_a, trunk_b, 2e9,
                                 SimDuration::Millis(1), SimDuration::Zero(),
                                 0, LinkClass::kBackbone});
  t.links.push_back(trunk);
  for (size_t l = 0; l < 4; ++l) {
    NodeId lane = t.topo.AddNode({"l", NodeKind::kHostAggregate, "x"});
    LinkId up = t.topo.AddLink({lane, trunk_a,
                                200e6 + 150e6 * static_cast<double>(l),
                                SimDuration::Millis(1), SimDuration::Zero(),
                                0, LinkClass::kDatacenter});
    t.links.push_back(up);
    t.paths.push_back({up, trunk});
  }
  t.sim = std::make_unique<FlowSim>(t.queue, t.topo);
}

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Everything the allocator is responsible for, as raw bit patterns. Two
// runs whose scripts matched must produce byte-equal fingerprints.
struct Fingerprint {
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> flows;
  std::vector<uint64_t> link_alloc;
  uint64_t flows_rescheduled = 0;
  uint64_t stalled = 0;

  bool operator==(const Fingerprint& o) const {
    return flows == o.flows && link_alloc == o.link_alloc &&
           flows_rescheduled == o.flows_rescheduled && stalled == o.stalled;
  }
};

Fingerprint Capture(const Twin& t) {
  Fingerprint fp;
  std::map<uint64_t, std::vector<uint64_t>> sorted;
  t.sim->ForEachFlow([&sorted](FlowId id, const FlowState& st) {
    sorted[id.value()] = {Bits(st.current_rate_bps), Bits(st.bytes_left),
                          Bits(st.weight), Bits(st.rate_cap_bps)};
  });
  fp.flows.assign(sorted.begin(), sorted.end());
  for (LinkId link : t.links) {
    fp.link_alloc.push_back(Bits(t.sim->LinkAllocatedBps(link)));
  }
  fp.flows_rescheduled = t.sim->flows_rescheduled();
  fp.stalled = t.sim->stalled_flow_count();
  return fp;
}

class WaterfillFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WaterfillFuzzTest, IncrementalBitIdenticalToScratchOracle) {
  const uint64_t seed = GetParam();
  const int64_t rounds = test_env::ItersOverride(60);
  SCOPED_TRACE("TN_SEED=" + std::to_string(seed) +
               " TN_ITERS=" + std::to_string(rounds));

  Twin incr;
  Twin scratch;
  BuildWorld(incr);
  BuildWorld(scratch);
  incr.sim->SetIncrementalRelevel(true);
  scratch.sim->SetIncrementalRelevel(false);

  test_env::PairSampler rng(seed);
  std::vector<FlowId> live;  // ids line up across twins (asserted below)
  std::vector<bool> link_up(incr.links.size(), true);
  uint64_t completions_incr = 0;
  uint64_t completions_scratch = 0;

  // One op applied to BOTH sims. Distinct weights/caps per draw so freeze
  // levels interleave between link levels (the hard case for canonical
  // ordering); every 6th finite start carries an abort handler so link
  // downs exercise both the stall and the abort path.
  size_t started = 0;
  auto apply_op = [&](size_t op) {
    switch (op) {
      case 0: {  // start
        size_t path_idx = rng.Index(incr.paths.size());
        double weight = 0.5 + static_cast<double>(rng.Index(6));
        double cap = rng.Chance(0.4)
                         ? 20e6 * static_cast<double>(rng.Index(40) + 1)
                         : std::numeric_limits<double>::infinity();
        bool finite = rng.Chance(0.4);
        FlowId a, b;
        if (finite) {
          FlowSim::AbortFn abort_fn;
          if (started % 6 == 0) {
            abort_fn = [](FlowId, SimTime) {};
          }
          a = incr.sim->StartFlow(
              incr.paths[path_idx], 200e3,
              [&completions_incr](FlowId, SimTime) { ++completions_incr; },
              weight, cap, abort_fn);
          b = scratch.sim->StartFlow(
              scratch.paths[path_idx], 200e3,
              [&completions_scratch](FlowId, SimTime) {
                ++completions_scratch;
              },
              weight, cap, abort_fn);
        } else {
          a = incr.sim->StartPersistentFlow(incr.paths[path_idx], weight, cap);
          b = scratch.sim->StartPersistentFlow(scratch.paths[path_idx],
                                               weight, cap);
        }
        ASSERT_EQ(a.value(), b.value()) << "twin FlowId streams diverged";
        live.push_back(a);
        ++started;
        break;
      }
      case 1: {  // cancel (stale ids from completed transfers are no-ops)
        if (live.empty()) break;
        size_t victim = rng.Index(live.size());
        (void)incr.sim->CancelFlow(live[victim]);
        (void)scratch.sim->CancelFlow(live[victim]);
        live[victim] = live.back();
        live.pop_back();
        break;
      }
      case 2: {  // re-cap
        if (live.empty()) break;
        FlowId id = live[rng.Index(live.size())];
        double cap = rng.Chance(0.3)
                         ? std::numeric_limits<double>::infinity()
                         : 20e6 * static_cast<double>(rng.Index(40) + 1);
        (void)incr.sim->SetRateCap(id, cap);
        (void)scratch.sim->SetRateCap(id, cap);
        break;
      }
      case 3: {  // re-weight
        if (live.empty()) break;
        FlowId id = live[rng.Index(live.size())];
        double weight = 0.5 + static_cast<double>(rng.Index(6));
        (void)incr.sim->SetWeight(id, weight);
        (void)scratch.sim->SetWeight(id, weight);
        break;
      }
      default: {  // link toggle
        size_t idx = rng.Index(link_up.size());
        link_up[idx] = !link_up[idx];
        (void)incr.sim->SetLinkUp(incr.links[idx], link_up[idx]);
        (void)scratch.sim->SetLinkUp(scratch.links[idx], link_up[idx]);
        break;
      }
    }
  };

  for (int64_t round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    size_t ops = 2 + rng.Index(8);
    if (rng.Chance(0.3)) {
      // Batched burst; nested scopes must coalesce into one reallocation.
      FlowSim::BatchScope outer_a = incr.sim->Batch();
      FlowSim::BatchScope outer_b = scratch.sim->Batch();
      for (size_t i = 0; i < ops; ++i) {
        if (i == ops / 2 && rng.Chance(0.5)) {
          FlowSim::BatchScope inner_a = incr.sim->Batch();
          FlowSim::BatchScope inner_b = scratch.sim->Batch();
          apply_op(rng.Index(5));
        }
        apply_op(rng.Index(5));
      }
    } else {
      for (size_t i = 0; i < ops; ++i) {
        apply_op(rng.Index(5));
      }
    }
    // Advance both worlds the same simulated interval so completion-driven
    // reallocations (and their reschedules) join the differential script.
    SimTime until = incr.queue.now() + SimDuration::Millis(2);
    incr.queue.RunUntil(until);
    scratch.queue.RunUntil(until);
    ASSERT_EQ(completions_incr, completions_scratch);
    ASSERT_EQ(incr.sim->active_flow_count(), scratch.sim->active_flow_count());

    Fingerprint a = Capture(incr);
    Fingerprint b = Capture(scratch);
    if (!(a == b)) {
      ASSERT_EQ(a.flows.size(), b.flows.size());
      for (size_t i = 0; i < a.flows.size(); ++i) {
        ASSERT_EQ(a.flows[i].first, b.flows[i].first) << "flow id mismatch";
        EXPECT_EQ(a.flows[i].second, b.flows[i].second)
            << "flow " << a.flows[i].first
            << " rate/bytes/weight/cap bits diverged";
      }
      for (size_t i = 0; i < a.link_alloc.size(); ++i) {
        EXPECT_EQ(a.link_alloc[i], b.link_alloc[i])
            << "link " << incr.links[i].value() << " allocation bits diverged";
      }
      EXPECT_EQ(a.flows_rescheduled, b.flows_rescheduled);
      EXPECT_EQ(a.stalled, b.stalled);
      FAIL() << "incremental fingerprint diverged from scratch oracle";
    }
  }

  // The incremental twin must actually have exercised the incremental
  // path — a silent fallback to full fills would make this suite vacuous.
  EXPECT_EQ(scratch.sim->full_fills(), scratch.sim->reallocation_count());
  EXPECT_LT(incr.sim->full_fills(), incr.sim->reallocation_count());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, WaterfillFuzzTest,
    ::testing::ValuesIn(test_env::SeedList({1, 7, 42, 1234, 987654321})));

}  // namespace
}  // namespace tenantnet
