// Tests for Topology: construction, Dijkstra, cost policies, delay models.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/topology.h"

namespace tenantnet {
namespace {

// A diamond: a -> b -> d (fast) and a -> c -> d (slow but one hop shorter
// in an alternate configuration).
struct Diamond {
  Topology topo;
  NodeId a, b, c, d;
  LinkId ab, bd, ac, cd;

  Diamond() {
    a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
    b = topo.AddNode({"b", NodeKind::kBackboneRouter, "x"});
    c = topo.AddNode({"c", NodeKind::kInternetRouter, "internet"});
    d = topo.AddNode({"d", NodeKind::kEdgeRouter, "y"});
    ab = topo.AddLink({a, b, 1e9, SimDuration::Millis(5),
                       SimDuration::Zero(), 0, LinkClass::kBackbone});
    bd = topo.AddLink({b, d, 1e9, SimDuration::Millis(5),
                       SimDuration::Zero(), 0, LinkClass::kBackbone});
    ac = topo.AddLink({a, c, 1e9, SimDuration::Millis(8),
                       SimDuration::Zero(), 0.01, LinkClass::kPublicInternet});
    cd = topo.AddLink({c, d, 1e9, SimDuration::Millis(8),
                       SimDuration::Zero(), 0.01, LinkClass::kPublicInternet});
  }
};

TEST(TopologyTest, NodesAndLinksAreRecorded) {
  Diamond w;
  EXPECT_EQ(w.topo.node_count(), 4u);
  EXPECT_EQ(w.topo.link_count(), 4u);
  EXPECT_EQ(w.topo.node(w.a).name, "a");
  EXPECT_EQ(w.topo.link(w.ab).dst, w.b);
  EXPECT_EQ(w.topo.OutLinks(w.a).size(), 2u);
}

TEST(TopologyTest, DuplexAddsBothDirections) {
  Topology topo;
  NodeId a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kEdgeRouter, "x"});
  auto [fwd, rev] = topo.AddDuplexLink({a, b, 1e9, SimDuration::Millis(1),
                                        SimDuration::Zero(), 0,
                                        LinkClass::kBackbone});
  EXPECT_EQ(topo.link(fwd).src, a);
  EXPECT_EQ(topo.link(rev).src, b);
  EXPECT_EQ(topo.link(rev).dst, a);
}

TEST(TopologyTest, ShortestPathByDelayPrefersBackbone) {
  Diamond w;
  auto path = w.topo.ShortestPath(w.a, w.d, Topology::DelayCost());
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0], w.ab);
  EXPECT_EQ((*path)[1], w.bd);
  EXPECT_DOUBLE_EQ(w.topo.PathDelay(*path).ToMillis(), 10.0);
}

TEST(TopologyTest, ClassWeightsFlipTheChoice) {
  Diamond w;
  // Make backbone 10x expensive: the internet path wins despite its delay.
  auto cost = Topology::ClassWeightedDelayCost(1, 10, 1, 1);
  auto path = w.topo.ShortestPath(w.a, w.d, cost);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0], w.ac);
}

TEST(TopologyTest, NegativeMultiplierForbidsClass) {
  Diamond w;
  auto cost = Topology::ClassWeightedDelayCost(1, -1, 1, 1);  // no backbone
  auto path = w.topo.ShortestPath(w.a, w.d, cost);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ((*path)[0], w.ac);
  // Forbidding everything leaves no path.
  auto none = Topology::ClassWeightedDelayCost(-1, -1, -1, -1);
  EXPECT_FALSE(w.topo.ShortestPath(w.a, w.d, none).ok());
}

TEST(TopologyTest, SamePathForSameNode) {
  Diamond w;
  auto path = w.topo.ShortestPath(w.a, w.a, Topology::DelayCost());
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
}

TEST(TopologyTest, DisconnectedNodesHaveNoPath) {
  Topology topo;
  NodeId a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kEdgeRouter, "y"});
  (void)b;
  NodeId c = topo.AddNode({"c", NodeKind::kEdgeRouter, "z"});
  auto path = topo.ShortestPath(a, c, Topology::DelayCost());
  EXPECT_EQ(path.status().code(), StatusCode::kNotFound);
}

TEST(TopologyTest, HopCostMinimizesHops) {
  Topology topo;
  // a->b->c (two 1ms hops) vs a->c (one 10ms hop).
  NodeId a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kEdgeRouter, "x"});
  NodeId c = topo.AddNode({"c", NodeKind::kEdgeRouter, "x"});
  topo.AddLink({a, b, 1e9, SimDuration::Millis(1), SimDuration::Zero(), 0,
                LinkClass::kBackbone});
  topo.AddLink({b, c, 1e9, SimDuration::Millis(1), SimDuration::Zero(), 0,
                LinkClass::kBackbone});
  LinkId direct = topo.AddLink({a, c, 1e9, SimDuration::Millis(10),
                                SimDuration::Zero(), 0,
                                LinkClass::kBackbone});
  auto by_hops = topo.ShortestPath(a, c, Topology::HopCost());
  ASSERT_TRUE(by_hops.ok());
  EXPECT_EQ(by_hops->size(), 1u);
  EXPECT_EQ((*by_hops)[0], direct);
  auto by_delay = topo.ShortestPath(a, c, Topology::DelayCost());
  ASSERT_TRUE(by_delay.ok());
  EXPECT_EQ(by_delay->size(), 2u);
}

TEST(TopologyTest, SampledDelayIncludesJitterAndExceedsBase) {
  Topology topo;
  NodeId a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kEdgeRouter, "x"});
  LinkId l = topo.AddLink({a, b, 1e9, SimDuration::Millis(10),
                           SimDuration::Millis(2), 0,
                           LinkClass::kPublicInternet});
  Rng rng(1);
  std::vector<LinkId> path{l};
  double base = topo.PathDelay(path).ToMillis();
  double total = 0;
  for (int i = 0; i < 1000; ++i) {
    double sample = topo.SamplePathDelay(path, rng).ToMillis();
    EXPECT_GE(sample, base);  // jitter is additive (|normal|)
    total += sample;
  }
  EXPECT_GT(total / 1000, base + 0.5);  // jitter visibly contributes
}

TEST(TopologyTest, DotExportContainsNodesAndEdges) {
  Diamond w;
  std::string dot = w.topo.ToDot();
  EXPECT_NE(dot.find("graph tenantnet"), std::string::npos);
  // Every node appears with its label; domains become clusters.
  for (const char* name : {"\"a\"", "\"b\"", "\"c\"", "\"d\""}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("\"internet\""), std::string::npos);
  // Forward-direction links render as undirected edges.
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
  // Link classes color the edges.
  EXPECT_NE(dot.find("color=blue"), std::string::npos);   // backbone
  EXPECT_NE(dot.find("color=black"), std::string::npos);  // internet
}

TEST(TopologyTest, DeliveryProbabilityIsProductOfSurvival) {
  Diamond w;
  std::vector<LinkId> internet{w.ac, w.cd};
  EXPECT_NEAR(w.topo.PathDeliveryProbability(internet), 0.99 * 0.99, 1e-12);
  std::vector<LinkId> backbone{w.ab, w.bd};
  EXPECT_DOUBLE_EQ(w.topo.PathDeliveryProbability(backbone), 1.0);
}

// --- Link-cut partitioner ----------------------------------------------------

// One giant component: R regions of `hosts` nodes hanging off a hub, hubs
// chained into a WAN ring — the paper's Fig. 1 shape at small scale.
Topology BuildWanRing(int regions, int hosts) {
  Topology topo;
  std::vector<NodeId> hubs;
  for (int r = 0; r < regions; ++r) {
    NodeId hub = topo.AddNode({"hub" + std::to_string(r),
                               NodeKind::kBackboneRouter,
                               "region" + std::to_string(r)});
    hubs.push_back(hub);
    for (int h = 0; h < hosts; ++h) {
      NodeId host = topo.AddNode(
          {"r" + std::to_string(r) + "h" + std::to_string(h), NodeKind::kHostAggregate,
           "region" + std::to_string(r)});
      topo.AddDuplexLink({hub, host, 10e9, SimDuration::Micros(50),
                          SimDuration::Zero(), 0, LinkClass::kDatacenter});
    }
  }
  for (int r = 0; r < regions; ++r) {
    topo.AddDuplexLink({hubs[r], hubs[(r + 1) % regions], 100e9,
                        SimDuration::Millis(20), SimDuration::Zero(), 0,
                        LinkClass::kBackbone});
  }
  return topo;
}

void CheckPartitionInvariants(const Topology& topo,
                              const LinkCutPartition& part) {
  ASSERT_EQ(part.node_part.size(), topo.node_count());
  ASSERT_EQ(part.link_part.size(), topo.link_count());
  ASSERT_EQ(part.link_is_border.size(), topo.link_count());
  // Every node lands in a valid part; every part is nonempty.
  std::vector<uint32_t> sizes(part.count, 0);
  for (uint32_t p : part.node_part) {
    ASSERT_LT(p, part.count);
    ++sizes[p];
  }
  for (uint32_t p = 0; p < part.count; ++p) {
    EXPECT_GT(sizes[p], 0u) << "part " << p << " is empty";
  }
  // Link ownership and border flags are consistent with the node parts.
  uint32_t borders = 0;
  for (size_t i = 0; i < topo.link_count(); ++i) {
    LinkId id(i + 1);
    const LinkInfo& info = topo.link(id);
    uint32_t src = part.node_part[info.src.value() - 1];
    uint32_t dst = part.node_part[info.dst.value() - 1];
    EXPECT_EQ(part.link_part[i], src);
    EXPECT_EQ(part.link_is_border[i] != 0, src != dst);
    borders += part.link_is_border[i];
  }
  EXPECT_EQ(part.border_link_count, borders);
}

TEST(LinkCutPartitionTest, SameSeedSamePartitionDifferentSeedsStillValid) {
  Topology topo = BuildWanRing(4, 8);
  LinkCutPartition a = ComputeLinkCutPartition(topo, 4, 42);
  LinkCutPartition b = ComputeLinkCutPartition(topo, 4, 42);
  EXPECT_EQ(a.node_part, b.node_part);
  EXPECT_EQ(a.link_part, b.link_part);
  EXPECT_EQ(a.border_link_count, b.border_link_count);
  for (uint64_t seed : {0ull, 1ull, 7ull, 1337ull}) {
    CheckPartitionInvariants(topo, ComputeLinkCutPartition(topo, 4, seed));
  }
}

TEST(LinkCutPartitionTest, GiantComponentIsCutIntoBalancedParts) {
  Topology topo = BuildWanRing(4, 8);  // 36 nodes, one component
  ASSERT_EQ(ComputeTopologyComponents(topo).count, 1u);
  LinkCutPartition part = ComputeLinkCutPartition(topo, 4, 0);
  EXPECT_EQ(part.count, 4u);
  CheckPartitionInvariants(topo, part);
  std::vector<uint32_t> sizes(part.count, 0);
  for (uint32_t p : part.node_part) {
    ++sizes[p];
  }
  // 36 nodes over 4 parts: balanced BFS growth keeps parts within a small
  // factor of the ideal 9.
  for (uint32_t p = 0; p < part.count; ++p) {
    EXPECT_GE(sizes[p], 4u);
    EXPECT_LE(sizes[p], 16u);
  }
  // A good cut severs the WAN/hub edges, not host fan-out: far fewer
  // border links than total links.
  EXPECT_GT(part.border_link_count, 0u);
  EXPECT_LT(part.CutFraction(), 0.5);
}

TEST(LinkCutPartitionTest, ComponentsAtLeastTargetMeansNoCuts) {
  // 5 disjoint two-node islands, target 4: parts follow components
  // (component c -> part c mod 4), and no link is a border link.
  Topology topo;
  for (int i = 0; i < 5; ++i) {
    NodeId a = topo.AddNode({"a" + std::to_string(i), NodeKind::kHostAggregate, "x"});
    NodeId b = topo.AddNode({"b" + std::to_string(i), NodeKind::kHostAggregate, "x"});
    topo.AddDuplexLink({a, b, 1e9, SimDuration::Millis(1),
                        SimDuration::Zero(), 0, LinkClass::kDatacenter});
  }
  LinkCutPartition part = ComputeLinkCutPartition(topo, 4, 9);
  EXPECT_EQ(part.count, 4u);
  CheckPartitionInvariants(topo, part);
  EXPECT_EQ(part.border_link_count, 0u);
  TopologyComponents comps = ComputeTopologyComponents(topo);
  for (size_t n = 0; n < topo.node_count(); ++n) {
    EXPECT_EQ(part.node_part[n], comps.node_component[n] % 4);
  }
}

TEST(LinkCutPartitionTest, TrivialTargetsAndEmptyTopology) {
  Topology topo = BuildWanRing(2, 3);
  for (uint32_t target : {0u, 1u}) {
    LinkCutPartition part = ComputeLinkCutPartition(topo, target, 0);
    EXPECT_EQ(part.count, 1u);
    CheckPartitionInvariants(topo, part);
    EXPECT_EQ(part.border_link_count, 0u);
  }
  Topology empty;
  LinkCutPartition part = ComputeLinkCutPartition(empty, 4, 0);
  EXPECT_EQ(part.node_part.size(), 0u);
  EXPECT_EQ(part.border_link_count, 0u);
}

TEST(LinkCutPartitionTest, TargetBeyondNodeCountStillCoversEveryNode) {
  // 3-node path, target 8: at most 3 nonempty parts can exist; whatever
  // count comes back, the invariants must hold.
  Topology topo;
  NodeId a = topo.AddNode({"a", NodeKind::kHostAggregate, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kHostAggregate, "x"});
  NodeId c = topo.AddNode({"c", NodeKind::kHostAggregate, "x"});
  topo.AddDuplexLink({a, b, 1e9, SimDuration::Millis(1), SimDuration::Zero(),
                      0, LinkClass::kDatacenter});
  topo.AddDuplexLink({b, c, 1e9, SimDuration::Millis(1), SimDuration::Zero(),
                      0, LinkClass::kDatacenter});
  LinkCutPartition part = ComputeLinkCutPartition(topo, 8, 3);
  EXPECT_GE(part.count, 1u);
  EXPECT_LE(part.count, 8u);
  CheckPartitionInvariants(topo, part);
}

}  // namespace
}  // namespace tenantnet
