// Tests for Topology: construction, Dijkstra, cost policies, delay models.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/topology.h"

namespace tenantnet {
namespace {

// A diamond: a -> b -> d (fast) and a -> c -> d (slow but one hop shorter
// in an alternate configuration).
struct Diamond {
  Topology topo;
  NodeId a, b, c, d;
  LinkId ab, bd, ac, cd;

  Diamond() {
    a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
    b = topo.AddNode({"b", NodeKind::kBackboneRouter, "x"});
    c = topo.AddNode({"c", NodeKind::kInternetRouter, "internet"});
    d = topo.AddNode({"d", NodeKind::kEdgeRouter, "y"});
    ab = topo.AddLink({a, b, 1e9, SimDuration::Millis(5),
                       SimDuration::Zero(), 0, LinkClass::kBackbone});
    bd = topo.AddLink({b, d, 1e9, SimDuration::Millis(5),
                       SimDuration::Zero(), 0, LinkClass::kBackbone});
    ac = topo.AddLink({a, c, 1e9, SimDuration::Millis(8),
                       SimDuration::Zero(), 0.01, LinkClass::kPublicInternet});
    cd = topo.AddLink({c, d, 1e9, SimDuration::Millis(8),
                       SimDuration::Zero(), 0.01, LinkClass::kPublicInternet});
  }
};

TEST(TopologyTest, NodesAndLinksAreRecorded) {
  Diamond w;
  EXPECT_EQ(w.topo.node_count(), 4u);
  EXPECT_EQ(w.topo.link_count(), 4u);
  EXPECT_EQ(w.topo.node(w.a).name, "a");
  EXPECT_EQ(w.topo.link(w.ab).dst, w.b);
  EXPECT_EQ(w.topo.OutLinks(w.a).size(), 2u);
}

TEST(TopologyTest, DuplexAddsBothDirections) {
  Topology topo;
  NodeId a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kEdgeRouter, "x"});
  auto [fwd, rev] = topo.AddDuplexLink({a, b, 1e9, SimDuration::Millis(1),
                                        SimDuration::Zero(), 0,
                                        LinkClass::kBackbone});
  EXPECT_EQ(topo.link(fwd).src, a);
  EXPECT_EQ(topo.link(rev).src, b);
  EXPECT_EQ(topo.link(rev).dst, a);
}

TEST(TopologyTest, ShortestPathByDelayPrefersBackbone) {
  Diamond w;
  auto path = w.topo.ShortestPath(w.a, w.d, Topology::DelayCost());
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0], w.ab);
  EXPECT_EQ((*path)[1], w.bd);
  EXPECT_DOUBLE_EQ(w.topo.PathDelay(*path).ToMillis(), 10.0);
}

TEST(TopologyTest, ClassWeightsFlipTheChoice) {
  Diamond w;
  // Make backbone 10x expensive: the internet path wins despite its delay.
  auto cost = Topology::ClassWeightedDelayCost(1, 10, 1, 1);
  auto path = w.topo.ShortestPath(w.a, w.d, cost);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0], w.ac);
}

TEST(TopologyTest, NegativeMultiplierForbidsClass) {
  Diamond w;
  auto cost = Topology::ClassWeightedDelayCost(1, -1, 1, 1);  // no backbone
  auto path = w.topo.ShortestPath(w.a, w.d, cost);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ((*path)[0], w.ac);
  // Forbidding everything leaves no path.
  auto none = Topology::ClassWeightedDelayCost(-1, -1, -1, -1);
  EXPECT_FALSE(w.topo.ShortestPath(w.a, w.d, none).ok());
}

TEST(TopologyTest, SamePathForSameNode) {
  Diamond w;
  auto path = w.topo.ShortestPath(w.a, w.a, Topology::DelayCost());
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
}

TEST(TopologyTest, DisconnectedNodesHaveNoPath) {
  Topology topo;
  NodeId a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kEdgeRouter, "y"});
  (void)b;
  NodeId c = topo.AddNode({"c", NodeKind::kEdgeRouter, "z"});
  auto path = topo.ShortestPath(a, c, Topology::DelayCost());
  EXPECT_EQ(path.status().code(), StatusCode::kNotFound);
}

TEST(TopologyTest, HopCostMinimizesHops) {
  Topology topo;
  // a->b->c (two 1ms hops) vs a->c (one 10ms hop).
  NodeId a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kEdgeRouter, "x"});
  NodeId c = topo.AddNode({"c", NodeKind::kEdgeRouter, "x"});
  topo.AddLink({a, b, 1e9, SimDuration::Millis(1), SimDuration::Zero(), 0,
                LinkClass::kBackbone});
  topo.AddLink({b, c, 1e9, SimDuration::Millis(1), SimDuration::Zero(), 0,
                LinkClass::kBackbone});
  LinkId direct = topo.AddLink({a, c, 1e9, SimDuration::Millis(10),
                                SimDuration::Zero(), 0,
                                LinkClass::kBackbone});
  auto by_hops = topo.ShortestPath(a, c, Topology::HopCost());
  ASSERT_TRUE(by_hops.ok());
  EXPECT_EQ(by_hops->size(), 1u);
  EXPECT_EQ((*by_hops)[0], direct);
  auto by_delay = topo.ShortestPath(a, c, Topology::DelayCost());
  ASSERT_TRUE(by_delay.ok());
  EXPECT_EQ(by_delay->size(), 2u);
}

TEST(TopologyTest, SampledDelayIncludesJitterAndExceedsBase) {
  Topology topo;
  NodeId a = topo.AddNode({"a", NodeKind::kEdgeRouter, "x"});
  NodeId b = topo.AddNode({"b", NodeKind::kEdgeRouter, "x"});
  LinkId l = topo.AddLink({a, b, 1e9, SimDuration::Millis(10),
                           SimDuration::Millis(2), 0,
                           LinkClass::kPublicInternet});
  Rng rng(1);
  std::vector<LinkId> path{l};
  double base = topo.PathDelay(path).ToMillis();
  double total = 0;
  for (int i = 0; i < 1000; ++i) {
    double sample = topo.SamplePathDelay(path, rng).ToMillis();
    EXPECT_GE(sample, base);  // jitter is additive (|normal|)
    total += sample;
  }
  EXPECT_GT(total / 1000, base + 0.5);  // jitter visibly contributes
}

TEST(TopologyTest, DotExportContainsNodesAndEdges) {
  Diamond w;
  std::string dot = w.topo.ToDot();
  EXPECT_NE(dot.find("graph tenantnet"), std::string::npos);
  // Every node appears with its label; domains become clusters.
  for (const char* name : {"\"a\"", "\"b\"", "\"c\"", "\"d\""}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("\"internet\""), std::string::npos);
  // Forward-direction links render as undirected edges.
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
  // Link classes color the edges.
  EXPECT_NE(dot.find("color=blue"), std::string::npos);   // backbone
  EXPECT_NE(dot.find("color=black"), std::string::npos);  // internet
}

TEST(TopologyTest, DeliveryProbabilityIsProductOfSurvival) {
  Diamond w;
  std::vector<LinkId> internet{w.ac, w.cd};
  EXPECT_NEAR(w.topo.PathDeliveryProbability(internet), 0.99 * 0.99, 1e-12);
  std::vector<LinkId> backbone{w.ab, w.bd};
  EXPECT_DOUBLE_EQ(w.topo.PathDeliveryProbability(backbone), 1.0);
}

}  // namespace
}  // namespace tenantnet
