// Tests for the credential registry and API gateway.

#include <gtest/gtest.h>

#include "src/app/gateway.h"

namespace tenantnet {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest() : gateway_("orders", &registry_) {}

  ApiRequest Request(const std::string& method, const std::string& path,
                     const std::string& token) {
    ApiRequest r;
    r.method = method;
    r.path = path;
    r.token = token;
    return r;
  }

  CredentialRegistry registry_;
  ApiGateway gateway_;
};

TEST_F(GatewayTest, TokensAuthenticate) {
  Principal& alice = registry_.CreatePrincipal("alice");
  EXPECT_EQ(registry_.Authenticate(alice.token), &alice);
  EXPECT_EQ(registry_.Authenticate("bogus"), nullptr);
  EXPECT_EQ(registry_.Authenticate(""), nullptr);
}

TEST_F(GatewayTest, RevokedTokenStopsAuthenticating) {
  Principal& alice = registry_.CreatePrincipal("alice");
  std::string token = alice.token;
  ASSERT_TRUE(registry_.RevokeToken(alice.id).ok());
  EXPECT_EQ(registry_.Authenticate(token), nullptr);
  EXPECT_EQ(registry_.RevokeToken(PrincipalId(99)).code(),
            StatusCode::kNotFound);
}

TEST_F(GatewayTest, MalformedRequestsRejectedFirst) {
  Principal& alice = registry_.CreatePrincipal("alice");
  gateway_.Authorize(alice.id, "*", "/");
  EXPECT_EQ(gateway_.Check(Request("FETCH", "/x", alice.token)),
            GatewayVerdict::kMalformed);
  EXPECT_EQ(gateway_.Check(Request("GET", "no-slash", alice.token)),
            GatewayVerdict::kMalformed);
  EXPECT_EQ(gateway_.Check(Request("GET", "/a/../b", alice.token)),
            GatewayVerdict::kMalformed);
  EXPECT_EQ(gateway_.rejected_malformed(), 3u);
}

TEST_F(GatewayTest, UnauthenticatedVsUnauthorized) {
  Principal& alice = registry_.CreatePrincipal("alice");
  gateway_.Authorize(alice.id, "GET", "/orders");
  // Unknown token.
  EXPECT_EQ(gateway_.Check(Request("GET", "/orders", "bad-token")),
            GatewayVerdict::kUnauthenticated);
  // Known principal, wrong route.
  EXPECT_EQ(gateway_.Check(Request("GET", "/admin", alice.token)),
            GatewayVerdict::kUnauthorized);
  // Known principal, wrong method.
  EXPECT_EQ(gateway_.Check(Request("DELETE", "/orders/1", alice.token)),
            GatewayVerdict::kUnauthorized);
  // The happy path.
  EXPECT_EQ(gateway_.Check(Request("GET", "/orders/1", alice.token)),
            GatewayVerdict::kAccepted);
  EXPECT_EQ(gateway_.accepted(), 1u);
  EXPECT_EQ(gateway_.rejected_unauthenticated(), 1u);
  EXPECT_EQ(gateway_.rejected_unauthorized(), 2u);
  EXPECT_EQ(gateway_.total_checked(), 4u);
}

TEST_F(GatewayTest, WildcardMethodGrant) {
  Principal& svc = registry_.CreatePrincipal("svc");
  gateway_.Authorize(svc.id, "*", "/internal");
  for (const char* method : {"GET", "PUT", "POST", "DELETE", "PATCH"}) {
    EXPECT_EQ(gateway_.Check(Request(method, "/internal/x", svc.token)),
              GatewayVerdict::kAccepted)
        << method;
  }
}

TEST_F(GatewayTest, GrantsArePerPrincipal) {
  Principal& alice = registry_.CreatePrincipal("alice");
  Principal& bob = registry_.CreatePrincipal("bob");
  gateway_.Authorize(alice.id, "GET", "/");
  EXPECT_EQ(gateway_.Check(Request("GET", "/x", bob.token)),
            GatewayVerdict::kUnauthorized);
  EXPECT_EQ(gateway_.Check(Request("GET", "/x", alice.token)),
            GatewayVerdict::kAccepted);
}

TEST_F(GatewayTest, ResetCounters) {
  Principal& alice = registry_.CreatePrincipal("alice");
  gateway_.Authorize(alice.id, "*", "/");
  gateway_.Check(Request("GET", "/x", alice.token));
  gateway_.ResetCounters();
  EXPECT_EQ(gateway_.total_checked(), 0u);
}

}  // namespace
}  // namespace tenantnet
