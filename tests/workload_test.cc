// Tests for the request workload driver.

#include <gtest/gtest.h>

#include "src/app/workload.h"
#include "src/sim/flow_sim.h"
#include "src/cloud/presets.h"

namespace tenantnet {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : tw_(BuildTestWorld()),
        flows_(queue_, tw_.world->topology()),
        workload_(queue_, flows_, *tw_.world, MakeParams()) {
    east_a_ = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
    east_b_ = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 1);
    west_ = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.west, 0);
  }

  static WorkloadParams MakeParams() {
    WorkloadParams p;
    p.mean_response_bytes = 64 * 1024;
    p.seed = 3;
    return p;
  }

  ConnectorFn AllowAll(EgressPolicy policy = EgressPolicy::kColdPotato) {
    CloudWorld* world = tw_.world.get();
    return [world, policy](InstanceId src, InstanceId dst) {
      ResolvedRoute route;
      route.allowed = true;
      route.src_node = world->FindInstance(src)->host_node;
      route.dst_node = world->FindInstance(dst)->host_node;
      route.policy = policy;
      return route;
    };
  }

  TestWorld tw_;
  EventQueue queue_;
  FlowSim flows_;
  RequestWorkload workload_;
  InstanceId east_a_, east_b_, west_;
};

TEST_F(WorkloadTest, TransactionsCompleteWithPositiveLatency) {
  size_t p = workload_.AddPattern("east-west", {east_a_}, {west_}, 50.0,
                                  AllowAll());
  workload_.Start(SimDuration::Seconds(10));
  queue_.RunAll();
  const PatternStats& stats = workload_.stats(p);
  EXPECT_GT(stats.attempted, 300u);
  EXPECT_EQ(stats.denied, 0u);
  EXPECT_EQ(stats.completed, stats.attempted);
  EXPECT_EQ(workload_.inflight(), 0u);
  // East-west is ~20ms one way: round trips must exceed 40ms.
  EXPECT_GT(stats.latency_ms.min(), 40.0);
  EXPECT_GT(stats.bytes_transferred, 0.0);
}

TEST_F(WorkloadTest, DeniedTransactionsAreCountedByStage) {
  ConnectorFn deny = [](InstanceId, InstanceId) {
    ResolvedRoute route;
    route.allowed = false;
    route.deny_stage = DenyStage("edge-filter");
    return route;
  };
  size_t p = workload_.AddPattern("blocked", {east_a_}, {west_}, 20.0, deny);
  workload_.Start(SimDuration::Seconds(5));
  queue_.RunAll();
  const PatternStats& stats = workload_.stats(p);
  EXPECT_GT(stats.attempted, 50u);
  EXPECT_EQ(stats.denied, stats.attempted);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.DenyByStage().at("edge-filter"), stats.denied);
}

TEST_F(WorkloadTest, IntraRegionIsFasterThanCrossRegion) {
  size_t local = workload_.AddPattern("local", {east_a_}, {east_b_}, 40.0,
                                      AllowAll());
  size_t remote = workload_.AddPattern("remote", {east_a_}, {west_}, 40.0,
                                       AllowAll());
  workload_.Start(SimDuration::Seconds(10));
  queue_.RunAll();
  EXPECT_LT(workload_.stats(local).latency_ms.P50(),
            workload_.stats(remote).latency_ms.P50());
}

TEST_F(WorkloadTest, RateCapSlowsTransfers) {
  ConnectorFn capped = [this](InstanceId src, InstanceId dst) {
    ResolvedRoute route;
    route.allowed = true;
    route.src_node = tw_.world->FindInstance(src)->host_node;
    route.dst_node = tw_.world->FindInstance(dst)->host_node;
    route.policy = EgressPolicy::kColdPotato;
    route.rate_cap_bps = 1e6;  // 1 Mbps
    return route;
  };
  size_t slow = workload_.AddPattern("capped", {east_a_}, {west_}, 10.0,
                                     capped);
  size_t fast = workload_.AddPattern("open", {east_b_}, {west_}, 10.0,
                                     AllowAll());
  workload_.Start(SimDuration::Seconds(10));
  queue_.RunAll();
  // 64KB at 1Mbps is ~0.5s; uncapped it is sub-ms of transfer time.
  EXPECT_GT(workload_.stats(slow).latency_ms.P50(),
            workload_.stats(fast).latency_ms.P50() * 3);
}

TEST_F(WorkloadTest, StreamingPatternsHoldOnePendingArrivalEach) {
  // A pre-scheduled pattern at this rate/horizon would enqueue ~rps*horizon
  // = 600k events at Start(). Streaming patterns enqueue exactly one
  // candidate each, independent of rate and horizon.
  workload_.AddStreamingPattern("s0", {east_a_}, {west_},
                                RateCurve::Constant(2000.0), AllowAll());
  workload_.AddStreamingPattern("s1", {east_b_}, {west_},
                                RateCurve::Constant(2000.0), AllowAll());
  workload_.AddStreamingPattern("s2", {west_}, {east_a_},
                                RateCurve::Constant(2000.0), AllowAll());
  workload_.Start(SimDuration::Seconds(100));
  EXPECT_EQ(queue_.pending_count(), 3u);
}

TEST_F(WorkloadTest, StreamingConstantRateMatchesPoissonExpectation) {
  size_t p = workload_.AddStreamingPattern(
      "steady", {east_a_}, {west_}, RateCurve::Constant(100.0), AllowAll());
  workload_.Start(SimDuration::Seconds(10));
  queue_.RunAll();
  const PatternStats& stats = workload_.stats(p);
  // Poisson(1000): +-6 sigma is ~190.
  EXPECT_GT(stats.attempted, 800u);
  EXPECT_LT(stats.attempted, 1200u);
  EXPECT_EQ(stats.completed, stats.attempted);
  EXPECT_EQ(workload_.inflight(), 0u);
}

TEST_F(WorkloadTest, StreamingDiurnalIntegratesToBaseOverFullPeriod) {
  // Over one full period the sinusoid integrates to zero, so expected
  // arrivals = base * horizon = 1000 even though the instantaneous rate
  // swings between 20 and 180 rps.
  size_t p = workload_.AddStreamingPattern(
      "diurnal", {east_a_}, {west_},
      RateCurve::Diurnal(100.0, 0.8, SimDuration::Seconds(10)), AllowAll());
  workload_.Start(SimDuration::Seconds(10));
  queue_.RunAll();
  const PatternStats& stats = workload_.stats(p);
  EXPECT_GT(stats.attempted, 800u);
  EXPECT_LT(stats.attempted, 1200u);
}

TEST_F(WorkloadTest, StreamingFlashCrowdAddsBurstArea) {
  // Base 50 rps over 10s = 500, plus a triangular burst of area
  // base * multiplier * (rise + fall) / 2 = 50 * 4 * 1 = 200.
  size_t p = workload_.AddStreamingPattern(
      "flash", {east_a_}, {west_},
      RateCurve::FlashCrowd(50.0, 4.0, SimDuration::Seconds(2),
                            SimDuration::Seconds(1), SimDuration::Seconds(1)),
      AllowAll());
  workload_.Start(SimDuration::Seconds(10));
  queue_.RunAll();
  const PatternStats& stats = workload_.stats(p);
  EXPECT_GT(stats.attempted, 550u);
  EXPECT_LT(stats.attempted, 850u);
}

TEST_F(WorkloadTest, StreamingArrivalsAreDeterministicPerSeed) {
  auto run_once = [this](uint64_t seed) {
    EventQueue queue;
    FlowSim flows(queue, tw_.world->topology());
    WorkloadParams params = MakeParams();
    params.seed = seed;
    RequestWorkload workload(queue, flows, *tw_.world, params);
    workload.AddStreamingPattern(
        "det", {east_a_}, {west_},
        RateCurve::Diurnal(80.0, 0.5, SimDuration::Seconds(5)), AllowAll());
    workload.Start(SimDuration::Seconds(8));
    queue.RunAll();
    return workload.stats(0);
  };
  PatternStats a = run_once(11);
  PatternStats b = run_once(11);
  PatternStats c = run_once(12);
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_NE(a.attempted, c.attempted);
}

TEST_F(WorkloadTest, MultiplePatternsRunConcurrently) {
  workload_.AddPattern("p0", {east_a_}, {east_b_}, 30.0, AllowAll());
  workload_.AddPattern("p1", {east_b_}, {west_}, 30.0, AllowAll());
  workload_.AddPattern("p2", {west_}, {east_a_}, 30.0, AllowAll());
  workload_.Start(SimDuration::Seconds(5));
  queue_.RunAll();
  EXPECT_EQ(workload_.pattern_count(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(workload_.stats(i).completed, 50u) << workload_.pattern_name(i);
  }
}

}  // namespace
}  // namespace tenantnet
