// Tests for the intent layer: service graph -> API calls, with the closure
// property (exactly the call-graph edges deliver) and one-call scaling.

#include <gtest/gtest.h>

#include <set>

#include "src/cloud/presets.h"
#include "src/core/intent.h"

namespace tenantnet {
namespace {

class IntentTest : public ::testing::Test {
 protected:
  IntentTest() : tw_(BuildTestWorld()), cloud_(*tw_.world, ledger_),
                 deployer_(cloud_) {}

  InstanceId Launch(RegionId region, int zone = 0) {
    return *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, region, zone);
  }

  // web(public, 2x) -> app(2x, SIP) -> db(1x); web also calls db? no.
  AppSpec ThreeTier() {
    AppSpec app;
    app.tenant = tw_.tenant;
    ServiceSpec web;
    web.name = "web";
    web.instances = {Launch(tw_.east, 0), Launch(tw_.east, 1)};
    web.port = 443;
    web.public_facing = true;
    web.sip_provider = tw_.provider;
    ServiceSpec mid;
    mid.name = "app";
    mid.instances = {Launch(tw_.east, 0), Launch(tw_.west, 0)};
    mid.port = 8080;
    mid.sip_provider = tw_.provider;
    ServiceSpec db;
    db.name = "db";
    db.instances = {Launch(tw_.east, 1)};
    db.port = 5432;
    app.services = {web, mid, db};
    app.calls = {{"web", "app"}, {"app", "db"}};
    return app;
  }

  TestWorld tw_;
  ConfigLedger ledger_;
  DeclarativeCloud cloud_;
  IntentDeployer deployer_;
};

TEST_F(IntentTest, DeploysAllServices) {
  AppSpec spec = ThreeTier();
  auto app = deployer_.Deploy(spec);
  ASSERT_TRUE(app.ok()) << app.status();
  EXPECT_EQ(app->services.size(), 3u);
  // Multi-instance services got SIPs; the single-instance db did not.
  EXPECT_TRUE(app->services.at("web").sip.has_value());
  EXPECT_TRUE(app->services.at("app").sip.has_value());
  EXPECT_FALSE(app->services.at("db").sip.has_value());
  // AddressOf resolves either way.
  EXPECT_TRUE(app->AddressOf("web").ok());
  EXPECT_TRUE(app->AddressOf("db").ok());
  EXPECT_EQ(ledger_.components(), 0u);  // still no boxes
}

TEST_F(IntentTest, CallGraphClosure) {
  AppSpec spec = ThreeTier();
  auto app = deployer_.Deploy(spec);
  ASSERT_TRUE(app.ok());

  auto instance_of = [&](const std::string& service, size_t idx) {
    for (const ServiceSpec& s : spec.services) {
      if (s.name == service) {
        return s.instances[idx];
      }
    }
    return InstanceId();
  };
  auto can_call = [&](const std::string& from, const std::string& to,
                      uint16_t port) {
    InstanceId src = instance_of(from, 0);
    IpAddress dst = *app->AddressOf(to);
    auto result = cloud_.Evaluate(src, dst, port, Protocol::kTcp);
    return result.ok() && result->delivered;
  };

  // Declared edges deliver on the service port.
  EXPECT_TRUE(can_call("web", "app", 8080));
  EXPECT_TRUE(can_call("app", "db", 5432));
  // Undeclared edges do not (web must not reach the db directly).
  EXPECT_FALSE(can_call("web", "db", 5432));
  // db -> web is also undeclared, but web is public on 443, so it IS
  // reachable — public-facing means public to everyone, insiders included.
  EXPECT_TRUE(can_call("db", "web", 443));
  // Wrong ports do not, even on declared edges.
  EXPECT_FALSE(can_call("web", "app", 8081));

  // Public service: any external source on the service port, nothing else.
  IpAddress web_addr = *app->AddressOf("web");
  auto external_ok = cloud_.EvaluateExternal(IpAddress::V4(198, 18, 5, 5),
                                             web_addr, 443, Protocol::kTcp);
  EXPECT_TRUE(external_ok.delivered);
  auto external_bad = cloud_.EvaluateExternal(IpAddress::V4(198, 18, 5, 5),
                                              web_addr, 22, Protocol::kTcp);
  EXPECT_FALSE(external_bad.delivered);
  // The internal tiers are not publicly reachable at all.
  auto external_app = cloud_.EvaluateExternal(IpAddress::V4(198, 18, 5, 5),
                                              *app->AddressOf("db"), 5432,
                                              Protocol::kTcp);
  EXPECT_FALSE(external_app.delivered);
}

TEST_F(IntentTest, SipSpreadsAcrossServiceInstances) {
  AppSpec spec = ThreeTier();
  auto app = deployer_.Deploy(spec);
  ASSERT_TRUE(app.ok());
  InstanceId web0 = spec.services[0].instances[0];
  std::set<std::string> backends;
  for (int i = 0; i < 30; ++i) {
    auto result = cloud_.Evaluate(web0, *app->AddressOf("app"), 8080,
                                  Protocol::kTcp);
    ASSERT_TRUE(result->delivered)
        << result->drop_stage << ": " << result->drop_reason;
    backends.insert(result->effective_dst.ToString());
  }
  EXPECT_EQ(backends.size(), 2u);
}

TEST_F(IntentTest, ScaleOutIsOneMembershipChange) {
  AppSpec spec = ThreeTier();
  auto app = deployer_.Deploy(spec);
  ASSERT_TRUE(app.ok());

  // A new app-tier instance immediately serves and is immediately
  // permitted at the db (group reference: no db permit-list rewrite).
  uint64_t calls_before = ledger_.api_calls();
  InstanceId newcomer = Launch(tw_.west, 1);
  ASSERT_TRUE(deployer_.AddInstance(*app, spec, "app", newcomer).ok());
  // request_eip + group_add + bind + set_permit_list = 4 calls.
  EXPECT_EQ(ledger_.api_calls() - calls_before, 4u);

  auto to_db = cloud_.Evaluate(newcomer, *app->AddressOf("db"), 5432,
                               Protocol::kTcp);
  EXPECT_TRUE(to_db->delivered)
      << to_db->drop_stage << ": " << to_db->drop_reason;
  // And web can now land on it via the SIP.
  std::set<std::string> backends;
  for (int i = 0; i < 40; ++i) {
    backends.insert(cloud_
                        .Evaluate(spec.services[0].instances[0],
                                  *app->AddressOf("app"), 8080,
                                  Protocol::kTcp)
                        ->effective_dst.ToString());
  }
  EXPECT_EQ(backends.size(), 3u);
}

TEST_F(IntentTest, ScaleInRevokesEverything) {
  AppSpec spec = ThreeTier();
  auto app = deployer_.Deploy(spec);
  ASSERT_TRUE(app.ok());
  InstanceId victim = spec.services[1].instances[0];  // an app instance
  IpAddress victim_eip = *app->EipOf("app", victim);
  ASSERT_TRUE(deployer_.RemoveInstance(*app, "app", victim).ok());
  // Its address no longer resolves, is unbound, and lost its grants.
  EXPECT_EQ(cloud_.FindEip(victim_eip), nullptr);
  auto members = cloud_.GroupMembers(app->services.at("app").group);
  EXPECT_EQ(members->size(), 1u);
  // The SIP still serves from the survivor.
  auto result = cloud_.Evaluate(spec.services[0].instances[0],
                                *app->AddressOf("app"), 8080, Protocol::kTcp);
  EXPECT_TRUE(result->delivered);
}

TEST_F(IntentTest, RejectsDanglingCallEdges) {
  AppSpec app;
  app.tenant = tw_.tenant;
  ServiceSpec lonely;
  lonely.name = "svc";
  lonely.instances = {Launch(tw_.east)};
  app.services = {lonely};
  app.calls = {{"svc", "ghost"}};
  EXPECT_EQ(deployer_.Deploy(app).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tenantnet
