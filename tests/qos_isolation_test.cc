// Multi-tenant QoS isolation over the fluid data plane: per-tenant egress
// quotas plus flow-level rate caps must give each tenant its guarantee on
// a shared link regardless of the other's offered load — the EyeQ-style
// property behind §4's QoS design.

#include <gtest/gtest.h>

#include "src/core/qos.h"
#include "src/sim/flow_sim.h"

namespace tenantnet {
namespace {

struct SharedLink {
  EventQueue queue;
  Topology topo;
  NodeId a, b;
  LinkId ab;

  SharedLink() {
    a = topo.AddNode({"a", NodeKind::kHostAggregate, "x"});
    b = topo.AddNode({"b", NodeKind::kEdgeRouter, "x"});
    ab = topo.AddLink({a, b, 1e9, SimDuration::Millis(1),
                       SimDuration::Zero(), 0, LinkClass::kDatacenter});
  }
};

TEST(QosIsolationTest, QuotaCapsDivideASharedLink) {
  // Tenant A holds a 600 Mbps quota, tenant B 400 Mbps; both flood the
  // shared 1G link. With flows capped at the quota, each receives exactly
  // its guarantee: B's greed cannot dilute A.
  SharedLink w;
  FlowSim sim(w.queue, w.topo);
  FlowId a1 = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/300e6);
  FlowId a2 = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/300e6);
  FlowId b1 = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/200e6);
  FlowId b2 = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/200e6);
  double tenant_a = *sim.CurrentRate(a1) + *sim.CurrentRate(a2);
  double tenant_b = *sim.CurrentRate(b1) + *sim.CurrentRate(b2);
  EXPECT_NEAR(tenant_a, 600e6, 1e3);
  EXPECT_NEAR(tenant_b, 400e6, 1e3);

  // B scales out to four flows; the quota manager re-divides B's 400M
  // across them (that is exactly what EgressQuotaManager's epoch does).
  // A's aggregate guarantee is untouched.
  FlowId b3 = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/100e6);
  FlowId b4 = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/100e6);
  ASSERT_TRUE(sim.SetRateCap(b1, 100e6).ok());
  ASSERT_TRUE(sim.SetRateCap(b2, 100e6).ok());
  double tenant_b_scaled = *sim.CurrentRate(b1) + *sim.CurrentRate(b2) +
                           *sim.CurrentRate(b3) + *sim.CurrentRate(b4);
  EXPECT_NEAR(tenant_b_scaled, 400e6, 1e3);
  tenant_a = *sim.CurrentRate(a1) + *sim.CurrentRate(a2);
  EXPECT_NEAR(tenant_a, 600e6, 1e3);
}

TEST(QosIsolationTest, UnmanagedTrafficDilutesGuaranteesWithoutPriority) {
  // The honest counterfactual: caps are ceilings, not floors. If a tenant
  // outside quota enforcement floods the link with uncapped flows, the
  // max-min shares of the "guaranteed" tenant collapse below its quota —
  // which is why the guarantee model in E5 adds weight/priority at the
  // enforcement point, and why the provider must enforce quotas on
  // *every* tenant sharing the guaranteed resource.
  SharedLink w;
  FlowSim sim(w.queue, w.topo);
  FlowId a1 = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/300e6);
  FlowId a2 = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/300e6);
  for (int i = 0; i < 4; ++i) {
    sim.StartPersistentFlow({w.ab});  // rogue, uncapped
  }
  double tenant_a = *sim.CurrentRate(a1) + *sim.CurrentRate(a2);
  EXPECT_LT(tenant_a, 600e6 * 0.9);  // guarantee violated

  // Weighted sharing restores it: the provider prioritizes reserved
  // traffic proportionally to the guarantee.
  ASSERT_TRUE(sim.CancelFlow(a1).ok());
  ASSERT_TRUE(sim.CancelFlow(a2).ok());
  FlowId g1 = sim.StartPersistentFlow({w.ab}, /*weight=*/6.0, 300e6);
  FlowId g2 = sim.StartPersistentFlow({w.ab}, /*weight=*/6.0, 300e6);
  double guaranteed = *sim.CurrentRate(g1) + *sim.CurrentRate(g2);
  EXPECT_GE(guaranteed, 600e6 * 0.99);
}

TEST(QosIsolationTest, QuotaOnlyIsNotWorkConserving) {
  // The honest limitation: pure quota caps leave bandwidth idle when the
  // guaranteed tenant underuses it. (Weighted sharing — E5's guarantee
  // model — trades exactness for work conservation.)
  SharedLink w;
  FlowSim sim(w.queue, w.topo);
  FlowId a = sim.StartPersistentFlow({w.ab}, 1.0, /*cap=*/600e6);
  EXPECT_NEAR(*sim.CurrentRate(a), 600e6, 1e3);
  EXPECT_NEAR(sim.LinkUtilization(w.ab), 0.6, 1e-6);  // 400M idle
}

TEST(QosIsolationTest, SharesTrackDemandAcrossPointsPerTenant) {
  // Two tenants, two enforcement points, demand skewed oppositely: the
  // per-tenant re-division must converge independently (A hot at point 0,
  // B hot at point 1).
  QuotaParams params;
  params.epoch = SimDuration::Millis(100);
  params.ewma_alpha = 0.5;
  EgressQuotaManager qos(params);
  RegionId region(1);
  qos.RegisterPoint(region, "p0");
  qos.RegisterPoint(region, "p1");
  TenantId a(1), b(2);
  ASSERT_TRUE(qos.SetQuota(a, region, 1e9, SimTime::Epoch()).ok());
  ASSERT_TRUE(qos.SetQuota(b, region, 1e9, SimTime::Epoch()).ok());

  SimTime now = SimTime::Epoch();
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int tick = 0; tick < 10; ++tick) {
      now += SimDuration::Millis(10);
      qos.TryConsume(a, region, 0, 1e7, now);  // A hot at p0
      qos.TryConsume(b, region, 1, 1e7, now);  // B hot at p1
    }
    qos.RunEpoch(now);
  }
  EXPECT_GT(*qos.ShareOf(a, region, 0), 0.8e9);
  EXPECT_GT(*qos.ShareOf(b, region, 1), 0.8e9);
  EXPECT_LT(*qos.ShareOf(a, region, 1), 0.2e9);
  EXPECT_LT(*qos.ShareOf(b, region, 0), 0.2e9);
}

TEST(QosIsolationTest, EpochRedivisionBatchesFlowCapsIntoOneReallocation) {
  // With a FlowSim attached, the quota manager applies each point's share
  // to its registered flows as equal-split rate caps — and a whole epoch's
  // worth of cap updates collapses into a single water-filling pass.
  SharedLink w;
  FlowSim sim(w.queue, w.topo);
  QuotaParams params;
  EgressQuotaManager qos(params);
  qos.AttachFlowSim(&sim);
  RegionId region(1);
  qos.RegisterPoint(region, "p0");
  TenantId tenant(1);
  SimTime now = SimTime::Epoch();
  ASSERT_TRUE(qos.SetQuota(tenant, region, 400e6, now).ok());

  FlowId f1 = sim.StartPersistentFlow({w.ab});
  FlowId f2 = sim.StartPersistentFlow({w.ab});
  ASSERT_TRUE(qos.RegisterFlow(tenant, region, 0, f1).ok());
  ASSERT_TRUE(qos.RegisterFlow(tenant, region, 0, f2).ok());
  // Registration applies the split immediately: 400M over two flows.
  EXPECT_NEAR(*sim.CurrentRate(f1), 200e6, 1e3);
  EXPECT_NEAR(*sim.CurrentRate(f2), 200e6, 1e3);

  uint64_t before = sim.reallocation_count();
  now += params.epoch;
  qos.RunEpoch(now);
  EXPECT_EQ(sim.reallocation_count(), before + 1);
  EXPECT_NEAR(*sim.CurrentRate(f1) + *sim.CurrentRate(f2), 400e6, 1e4);

  // Dead flows are pruned at the next re-division; the survivor inherits
  // the whole point share.
  ASSERT_TRUE(sim.CancelFlow(f2).ok());
  now += params.epoch;
  qos.RunEpoch(now);
  EXPECT_NEAR(*sim.CurrentRate(f1), 400e6, 1e4);

  // Unregistering lifts the quota cap: the flow returns to unmanaged
  // max-min sharing (alone on the 1G link, it takes all of it).
  ASSERT_TRUE(qos.UnregisterFlow(tenant, region, 0, f1).ok());
  EXPECT_NEAR(*sim.CurrentRate(f1), 1e9, 1e3);
  EXPECT_EQ(qos.UnregisterFlow(tenant, region, 0, f2).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace tenantnet
