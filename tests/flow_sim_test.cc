// Tests for the fluid flow simulator: max-min fairness, caps, weights,
// completion scheduling.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/sim/flow_sim.h"

namespace tenantnet {
namespace {

struct Line {
  EventQueue queue;
  Topology topo;
  NodeId a, b, c;
  LinkId ab, bc;

  // a --1Gbps--> b --0.5Gbps--> c
  Line() {
    a = topo.AddNode({"a", NodeKind::kHostAggregate, "x"});
    b = topo.AddNode({"b", NodeKind::kBackboneRouter, "x"});
    c = topo.AddNode({"c", NodeKind::kHostAggregate, "x"});
    ab = topo.AddLink({a, b, 1e9, SimDuration::Millis(1),
                       SimDuration::Zero(), 0, LinkClass::kDatacenter});
    bc = topo.AddLink({b, c, 0.5e9, SimDuration::Millis(1),
                       SimDuration::Zero(), 0, LinkClass::kDatacenter});
  }
};

TEST(FlowSimTest, SingleFlowGetsBottleneckRate) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f = sim.StartPersistentFlow({w.ab, w.bc});
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.5e9);
  EXPECT_DOUBLE_EQ(sim.LinkUtilization(w.bc), 1.0);
  EXPECT_DOUBLE_EQ(sim.LinkUtilization(w.ab), 0.5);
}

TEST(FlowSimTest, TwoFlowsShareBottleneckEqually) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f1 = sim.StartPersistentFlow({w.ab, w.bc});
  FlowId f2 = sim.StartPersistentFlow({w.ab, w.bc});
  EXPECT_NEAR(*sim.CurrentRate(f1), 0.25e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(f2), 0.25e9, 1);
}

TEST(FlowSimTest, WeightsBiasTheShare) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId heavy = sim.StartPersistentFlow({w.ab, w.bc}, /*weight=*/3.0);
  FlowId light = sim.StartPersistentFlow({w.ab, w.bc}, /*weight=*/1.0);
  EXPECT_NEAR(*sim.CurrentRate(heavy), 0.375e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(light), 0.125e9, 1);
}

TEST(FlowSimTest, RateCapFreesBandwidthForOthers) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId capped =
      sim.StartPersistentFlow({w.ab, w.bc}, 1.0, /*rate_cap=*/0.1e9);
  FlowId open = sim.StartPersistentFlow({w.ab, w.bc});
  EXPECT_NEAR(*sim.CurrentRate(capped), 0.1e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(open), 0.4e9, 1);  // max-min gives the rest
}

TEST(FlowSimTest, MaxMinWithDistinctBottlenecks) {
  // Classic example: flows X (a->c via both links) and Y (only b->c link).
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId x = sim.StartPersistentFlow({w.ab, w.bc});
  FlowId y = sim.StartPersistentFlow({w.bc});
  FlowId z = sim.StartPersistentFlow({w.ab});
  // bc (0.5G) is shared by x and y -> 0.25 each; z then gets the remaining
  // 0.75G of ab.
  EXPECT_NEAR(*sim.CurrentRate(x), 0.25e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(y), 0.25e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(z), 0.75e9, 1);
}

TEST(FlowSimTest, FiniteFlowCompletesAtPredictedTime) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  SimTime finish_time;
  bool done = false;
  // 0.5 Gbit/s bottleneck, 62.5 MB = 5e8 bits -> exactly 1 second.
  sim.StartFlow({w.ab, w.bc}, 62.5e6, [&](FlowId, SimTime t) {
    done = true;
    finish_time = t;
  });
  w.queue.RunAll();
  ASSERT_TRUE(done);
  EXPECT_NEAR(finish_time.ToSeconds(), 1.0, 1e-9);
  EXPECT_NEAR(sim.total_bytes_delivered(), 62.5e6, 1);
  EXPECT_EQ(sim.active_flow_count(), 0u);
}

TEST(FlowSimTest, CompletionRescheduledWhenContentionChanges) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  SimTime finish;
  sim.StartFlow({w.ab, w.bc}, 62.5e6,
                [&](FlowId, SimTime t) { finish = t; });
  // At t=0.5s, a competitor arrives and halves the first flow's rate.
  FlowId competitor;
  w.queue.ScheduleAt(SimTime::FromSeconds(0.5), [&] {
    competitor = sim.StartPersistentFlow({w.ab, w.bc});
  });
  w.queue.RunUntil(SimTime::FromSeconds(10));
  // First half took 0.5s at 0.5G (2.5e8 bits); remaining 2.5e8 bits at
  // 0.25G takes 1s more -> finish at 1.5s.
  EXPECT_NEAR(finish.ToSeconds(), 1.5, 1e-6);
  EXPECT_TRUE(sim.CancelFlow(competitor).ok());
}

TEST(FlowSimTest, CancelStopsDelivery) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  bool completed = false;
  FlowId f = sim.StartFlow({w.ab, w.bc}, 62.5e6,
                           [&](FlowId, SimTime) { completed = true; });
  w.queue.RunUntil(SimTime::FromSeconds(0.5));
  ASSERT_TRUE(sim.CancelFlow(f).ok());
  w.queue.RunAll();
  EXPECT_FALSE(completed);
  // Half the bytes were delivered before the cancel.
  EXPECT_NEAR(sim.total_bytes_delivered(), 31.25e6, 1e3);
}

TEST(FlowSimTest, EmptyPathCompletesImmediately) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  bool done = false;
  SimTime when;
  sim.StartFlow({}, 1e9, [&](FlowId, SimTime t) {
    done = true;
    when = t;
  });
  w.queue.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(when, SimTime::Epoch());
}

TEST(FlowSimTest, SetRateCapMidFlight) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f = sim.StartPersistentFlow({w.ab, w.bc});
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.5e9);
  ASSERT_TRUE(sim.SetRateCap(f, 0.2e9).ok());
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.2e9);
  ASSERT_TRUE(sim.SetRateCap(f, 1e12).ok());
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.5e9);
}

TEST(FlowSimTest, ZeroCapStallsUntilRaised) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  bool done = false;
  FlowId f = sim.StartFlow({w.ab, w.bc}, 62.5e6,
                           [&](FlowId, SimTime) { done = true; }, 1.0,
                           /*rate_cap=*/0.0);
  w.queue.RunUntil(SimTime::FromSeconds(5));
  EXPECT_FALSE(done);
  ASSERT_TRUE(sim.SetRateCap(f, 0.5e9).ok());
  w.queue.RunAll();
  EXPECT_TRUE(done);
  // Stalled for 5s then 1s of transfer.
  EXPECT_NEAR(w.queue.now().ToSeconds(), 6.0, 1e-6);
}

TEST(FlowSimTest, QueuePenaltyGrowsWithUtilization) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  std::vector<LinkId> path{w.ab, w.bc};
  SimDuration idle = sim.QueuePenalty(path, SimDuration::Millis(1),
                                      SimDuration::Millis(50));
  sim.StartPersistentFlow(path);
  SimDuration busy = sim.QueuePenalty(path, SimDuration::Millis(1),
                                      SimDuration::Millis(50));
  EXPECT_GT(busy, idle);
  // The fully-utilized bc link hits the cap.
  EXPECT_GE(busy, SimDuration::Millis(50));
}

TEST(FlowSimTest, UnknownFlowOperationsFail) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  EXPECT_EQ(sim.CancelFlow(FlowId(999)).code(), StatusCode::kNotFound);
  EXPECT_EQ(sim.SetRateCap(FlowId(999), 1).code(), StatusCode::kNotFound);
  EXPECT_FALSE(sim.CurrentRate(FlowId(999)).ok());
  EXPECT_EQ(sim.FindFlow(FlowId(999)), nullptr);
}

// Property: on random topologies with random weighted/capped flows, the
// allocation must be (1) feasible — no link above capacity — and
// (2) max-min: every flow is either at its cap or bottlenecked at some
// saturated link where no co-located flow has a higher weight-normalized
// rate. These two conditions characterize weighted max-min fairness.
class MaxMinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxMinPropertyTest, FeasibleAndBottlenecked) {
  Rng rng(GetParam());
  EventQueue queue;
  Topology topo;
  constexpr int kNodes = 12;
  std::vector<NodeId> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(topo.AddNode({"n" + std::to_string(i),
                                  NodeKind::kBackboneRouter, "x"}));
  }
  // A connected ring plus random chords.
  std::vector<LinkId> links;
  auto add_link = [&](int a, int b) {
    links.push_back(topo.AddLink(
        {nodes[a], nodes[b], 0.1e9 + rng.NextDouble() * 0.9e9,
         SimDuration::Millis(1), SimDuration::Zero(), 0,
         LinkClass::kBackbone}));
  };
  for (int i = 0; i < kNodes; ++i) {
    add_link(i, (i + 1) % kNodes);
  }
  for (int i = 0; i < 10; ++i) {
    int a = static_cast<int>(rng.NextU64(kNodes));
    int b = static_cast<int>(rng.NextU64(kNodes));
    if (a != b) {
      add_link(a, b);
    }
  }

  FlowSim sim(queue, topo);
  struct TestFlow {
    FlowId id;
    std::vector<LinkId> path;
    double weight;
    double cap;
  };
  std::vector<TestFlow> flows;
  for (int i = 0; i < 40; ++i) {
    NodeId src = nodes[rng.NextU64(kNodes)];
    NodeId dst = nodes[rng.NextU64(kNodes)];
    if (src == dst) {
      continue;
    }
    auto path = topo.ShortestPath(src, dst, Topology::DelayCost());
    if (!path.ok() || path->empty()) {
      continue;
    }
    double weight = 0.5 + rng.NextDouble() * 3.0;
    double cap = rng.NextBool(0.3)
                     ? 1e6 + rng.NextDouble() * 2e8
                     : std::numeric_limits<double>::infinity();
    FlowId id = sim.StartPersistentFlow(*path, weight, cap);
    flows.push_back({id, *path, weight, cap});
  }
  ASSERT_GT(flows.size(), 10u);

  constexpr double kRelEps = 1e-6;
  // (1) Feasibility.
  std::map<uint64_t, double> link_load;
  for (const TestFlow& flow : flows) {
    double rate = *sim.CurrentRate(flow.id);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, flow.cap * (1 + kRelEps));
    for (LinkId link : flow.path) {
      link_load[link.value()] += rate;
    }
  }
  for (const auto& [link_value, load] : link_load) {
    double cap = topo.link(LinkId(link_value)).capacity_bps;
    EXPECT_LE(load, cap * (1 + kRelEps)) << "link " << link_value;
  }
  // (2) Bottleneck condition.
  for (const TestFlow& flow : flows) {
    double rate = *sim.CurrentRate(flow.id);
    if (rate >= flow.cap * (1 - kRelEps)) {
      continue;  // at cap: justified
    }
    double normalized = rate / flow.weight;
    bool justified = false;
    for (LinkId link : flow.path) {
      double cap = topo.link(link).capacity_bps;
      if (link_load[link.value()] < cap * (1 - kRelEps)) {
        continue;  // link not saturated
      }
      // Is this flow among the top weight-normalized rates on the link?
      double max_norm = 0;
      for (const TestFlow& other : flows) {
        bool on_link = std::find(other.path.begin(), other.path.end(),
                                 link) != other.path.end();
        if (on_link) {
          max_norm = std::max(max_norm,
                              *sim.CurrentRate(other.id) / other.weight);
        }
      }
      if (normalized >= max_norm * (1 - 1e-3)) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified)
        << "flow with rate " << rate << " (weight " << flow.weight
        << ") is neither capped nor bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(FlowSimTest, ManyFlowsConservationProperty) {
  // Allocation must never exceed any link capacity and must be work-
  // conserving on the bottleneck.
  Line w;
  FlowSim sim(w.queue, w.topo);
  std::vector<FlowId> flows;
  for (int i = 0; i < 20; ++i) {
    flows.push_back(sim.StartPersistentFlow(
        {w.ab, w.bc}, 1.0 + (i % 3),
        (i % 5 == 0) ? 1e7 : std::numeric_limits<double>::infinity()));
  }
  double total = 0;
  for (FlowId f : flows) {
    total += *sim.CurrentRate(f);
  }
  EXPECT_LE(total, 0.5e9 * (1 + 1e-6));
  EXPECT_GE(total, 0.5e9 * (1 - 1e-6));  // work conserving
}

}  // namespace
}  // namespace tenantnet
