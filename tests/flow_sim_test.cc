// Tests for the fluid flow simulator: max-min fairness, caps, weights,
// completion scheduling.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <tuple>

#include "src/common/rng.h"
#include "src/sim/flow_sim.h"

namespace tenantnet {
namespace {

struct Line {
  EventQueue queue;
  Topology topo;
  NodeId a, b, c;
  LinkId ab, bc;

  // a --1Gbps--> b --0.5Gbps--> c
  Line() {
    a = topo.AddNode({"a", NodeKind::kHostAggregate, "x"});
    b = topo.AddNode({"b", NodeKind::kBackboneRouter, "x"});
    c = topo.AddNode({"c", NodeKind::kHostAggregate, "x"});
    ab = topo.AddLink({a, b, 1e9, SimDuration::Millis(1),
                       SimDuration::Zero(), 0, LinkClass::kDatacenter});
    bc = topo.AddLink({b, c, 0.5e9, SimDuration::Millis(1),
                       SimDuration::Zero(), 0, LinkClass::kDatacenter});
  }
};

TEST(FlowSimTest, SingleFlowGetsBottleneckRate) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f = sim.StartPersistentFlow({w.ab, w.bc});
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.5e9);
  EXPECT_DOUBLE_EQ(sim.LinkUtilization(w.bc), 1.0);
  EXPECT_DOUBLE_EQ(sim.LinkUtilization(w.ab), 0.5);
}

TEST(FlowSimTest, TwoFlowsShareBottleneckEqually) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f1 = sim.StartPersistentFlow({w.ab, w.bc});
  FlowId f2 = sim.StartPersistentFlow({w.ab, w.bc});
  EXPECT_NEAR(*sim.CurrentRate(f1), 0.25e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(f2), 0.25e9, 1);
}

TEST(FlowSimTest, WeightsBiasTheShare) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId heavy = sim.StartPersistentFlow({w.ab, w.bc}, /*weight=*/3.0);
  FlowId light = sim.StartPersistentFlow({w.ab, w.bc}, /*weight=*/1.0);
  EXPECT_NEAR(*sim.CurrentRate(heavy), 0.375e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(light), 0.125e9, 1);
}

TEST(FlowSimTest, RateCapFreesBandwidthForOthers) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId capped =
      sim.StartPersistentFlow({w.ab, w.bc}, 1.0, /*rate_cap=*/0.1e9);
  FlowId open = sim.StartPersistentFlow({w.ab, w.bc});
  EXPECT_NEAR(*sim.CurrentRate(capped), 0.1e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(open), 0.4e9, 1);  // max-min gives the rest
}

TEST(FlowSimTest, MaxMinWithDistinctBottlenecks) {
  // Classic example: flows X (a->c via both links) and Y (only b->c link).
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId x = sim.StartPersistentFlow({w.ab, w.bc});
  FlowId y = sim.StartPersistentFlow({w.bc});
  FlowId z = sim.StartPersistentFlow({w.ab});
  // bc (0.5G) is shared by x and y -> 0.25 each; z then gets the remaining
  // 0.75G of ab.
  EXPECT_NEAR(*sim.CurrentRate(x), 0.25e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(y), 0.25e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(z), 0.75e9, 1);
}

TEST(FlowSimTest, FiniteFlowCompletesAtPredictedTime) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  SimTime finish_time;
  bool done = false;
  // 0.5 Gbit/s bottleneck, 62.5 MB = 5e8 bits -> exactly 1 second.
  sim.StartFlow({w.ab, w.bc}, 62.5e6, [&](FlowId, SimTime t) {
    done = true;
    finish_time = t;
  });
  w.queue.RunAll();
  ASSERT_TRUE(done);
  EXPECT_NEAR(finish_time.ToSeconds(), 1.0, 1e-9);
  EXPECT_NEAR(sim.total_bytes_delivered(), 62.5e6, 1);
  EXPECT_EQ(sim.active_flow_count(), 0u);
}

TEST(FlowSimTest, CompletionRescheduledWhenContentionChanges) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  SimTime finish;
  sim.StartFlow({w.ab, w.bc}, 62.5e6,
                [&](FlowId, SimTime t) { finish = t; });
  // At t=0.5s, a competitor arrives and halves the first flow's rate.
  FlowId competitor;
  w.queue.ScheduleAt(SimTime::FromSeconds(0.5), [&] {
    competitor = sim.StartPersistentFlow({w.ab, w.bc});
  });
  w.queue.RunUntil(SimTime::FromSeconds(10));
  // First half took 0.5s at 0.5G (2.5e8 bits); remaining 2.5e8 bits at
  // 0.25G takes 1s more -> finish at 1.5s.
  EXPECT_NEAR(finish.ToSeconds(), 1.5, 1e-6);
  EXPECT_TRUE(sim.CancelFlow(competitor).ok());
}

TEST(FlowSimTest, CancelStopsDelivery) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  bool completed = false;
  FlowId f = sim.StartFlow({w.ab, w.bc}, 62.5e6,
                           [&](FlowId, SimTime) { completed = true; });
  w.queue.RunUntil(SimTime::FromSeconds(0.5));
  ASSERT_TRUE(sim.CancelFlow(f).ok());
  w.queue.RunAll();
  EXPECT_FALSE(completed);
  // Half the bytes were delivered before the cancel.
  EXPECT_NEAR(sim.total_bytes_delivered(), 31.25e6, 1e3);
}

TEST(FlowSimTest, EmptyPathCompletesImmediately) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  bool done = false;
  SimTime when;
  sim.StartFlow({}, 1e9, [&](FlowId, SimTime t) {
    done = true;
    when = t;
  });
  w.queue.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(when, SimTime::Epoch());
}

TEST(FlowSimTest, SetRateCapMidFlight) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f = sim.StartPersistentFlow({w.ab, w.bc});
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.5e9);
  ASSERT_TRUE(sim.SetRateCap(f, 0.2e9).ok());
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.2e9);
  ASSERT_TRUE(sim.SetRateCap(f, 1e12).ok());
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.5e9);
}

TEST(FlowSimTest, ZeroCapStallsUntilRaised) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  bool done = false;
  FlowId f = sim.StartFlow({w.ab, w.bc}, 62.5e6,
                           [&](FlowId, SimTime) { done = true; }, 1.0,
                           /*rate_cap=*/0.0);
  w.queue.RunUntil(SimTime::FromSeconds(5));
  EXPECT_FALSE(done);
  ASSERT_TRUE(sim.SetRateCap(f, 0.5e9).ok());
  w.queue.RunAll();
  EXPECT_TRUE(done);
  // Stalled for 5s then 1s of transfer.
  EXPECT_NEAR(w.queue.now().ToSeconds(), 6.0, 1e-6);
}

TEST(FlowSimTest, QueuePenaltyGrowsWithUtilization) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  std::vector<LinkId> path{w.ab, w.bc};
  SimDuration idle = sim.QueuePenalty(path, SimDuration::Millis(1),
                                      SimDuration::Millis(50));
  sim.StartPersistentFlow(path);
  SimDuration busy = sim.QueuePenalty(path, SimDuration::Millis(1),
                                      SimDuration::Millis(50));
  EXPECT_GT(busy, idle);
  // The fully-utilized bc link hits the cap.
  EXPECT_GE(busy, SimDuration::Millis(50));
}

TEST(FlowSimTest, UnknownFlowOperationsFail) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  EXPECT_EQ(sim.CancelFlow(FlowId(999)).code(), StatusCode::kNotFound);
  EXPECT_EQ(sim.SetRateCap(FlowId(999), 1).code(), StatusCode::kNotFound);
  EXPECT_FALSE(sim.CurrentRate(FlowId(999)).ok());
  EXPECT_EQ(sim.FindFlow(FlowId(999)), nullptr);
}

// Property: on random topologies with random weighted/capped flows, the
// allocation must be (1) feasible — no link above capacity — and
// (2) max-min: every flow is either at its cap or bottlenecked at some
// saturated link where no co-located flow has a higher weight-normalized
// rate. These two conditions characterize weighted max-min fairness.
class MaxMinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaxMinPropertyTest, FeasibleAndBottlenecked) {
  Rng rng(GetParam());
  EventQueue queue;
  Topology topo;
  constexpr int kNodes = 12;
  std::vector<NodeId> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(topo.AddNode({"n" + std::to_string(i),
                                  NodeKind::kBackboneRouter, "x"}));
  }
  // A connected ring plus random chords.
  std::vector<LinkId> links;
  auto add_link = [&](int a, int b) {
    links.push_back(topo.AddLink(
        {nodes[a], nodes[b], 0.1e9 + rng.NextDouble() * 0.9e9,
         SimDuration::Millis(1), SimDuration::Zero(), 0,
         LinkClass::kBackbone}));
  };
  for (int i = 0; i < kNodes; ++i) {
    add_link(i, (i + 1) % kNodes);
  }
  for (int i = 0; i < 10; ++i) {
    int a = static_cast<int>(rng.NextU64(kNodes));
    int b = static_cast<int>(rng.NextU64(kNodes));
    if (a != b) {
      add_link(a, b);
    }
  }

  FlowSim sim(queue, topo);
  struct TestFlow {
    FlowId id;
    std::vector<LinkId> path;
    double weight;
    double cap;
  };
  std::vector<TestFlow> flows;
  for (int i = 0; i < 40; ++i) {
    NodeId src = nodes[rng.NextU64(kNodes)];
    NodeId dst = nodes[rng.NextU64(kNodes)];
    if (src == dst) {
      continue;
    }
    auto path = topo.ShortestPath(src, dst, Topology::DelayCost());
    if (!path.ok() || path->empty()) {
      continue;
    }
    double weight = 0.5 + rng.NextDouble() * 3.0;
    double cap = rng.NextBool(0.3)
                     ? 1e6 + rng.NextDouble() * 2e8
                     : std::numeric_limits<double>::infinity();
    FlowId id = sim.StartPersistentFlow(*path, weight, cap);
    flows.push_back({id, *path, weight, cap});
  }
  ASSERT_GT(flows.size(), 10u);

  constexpr double kRelEps = 1e-6;
  // (1) Feasibility.
  std::map<uint64_t, double> link_load;
  for (const TestFlow& flow : flows) {
    double rate = *sim.CurrentRate(flow.id);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, flow.cap * (1 + kRelEps));
    for (LinkId link : flow.path) {
      link_load[link.value()] += rate;
    }
  }
  for (const auto& [link_value, load] : link_load) {
    double cap = topo.link(LinkId(link_value)).capacity_bps;
    EXPECT_LE(load, cap * (1 + kRelEps)) << "link " << link_value;
  }
  // (2) Bottleneck condition.
  for (const TestFlow& flow : flows) {
    double rate = *sim.CurrentRate(flow.id);
    if (rate >= flow.cap * (1 - kRelEps)) {
      continue;  // at cap: justified
    }
    double normalized = rate / flow.weight;
    bool justified = false;
    for (LinkId link : flow.path) {
      double cap = topo.link(link).capacity_bps;
      if (link_load[link.value()] < cap * (1 - kRelEps)) {
        continue;  // link not saturated
      }
      // Is this flow among the top weight-normalized rates on the link?
      double max_norm = 0;
      for (const TestFlow& other : flows) {
        bool on_link = std::find(other.path.begin(), other.path.end(),
                                 link) != other.path.end();
        if (on_link) {
          max_norm = std::max(max_norm,
                              *sim.CurrentRate(other.id) / other.weight);
        }
      }
      if (normalized >= max_norm * (1 - 1e-3)) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified)
        << "flow with rate " << rate << " (weight " << flow.weight
        << ") is neither capped nor bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(FlowSimTest, ManyFlowsConservationProperty) {
  // Allocation must never exceed any link capacity and must be work-
  // conserving on the bottleneck.
  Line w;
  FlowSim sim(w.queue, w.topo);
  std::vector<FlowId> flows;
  for (int i = 0; i < 20; ++i) {
    flows.push_back(sim.StartPersistentFlow(
        {w.ab, w.bc}, 1.0 + (i % 3),
        (i % 5 == 0) ? 1e7 : std::numeric_limits<double>::infinity()));
  }
  double total = 0;
  for (FlowId f : flows) {
    total += *sim.CurrentRate(f);
  }
  EXPECT_LE(total, 0.5e9 * (1 + 1e-6));
  EXPECT_GE(total, 0.5e9 * (1 - 1e-6));  // work conserving
}

TEST(FlowSimTest, EmptyPathPersistentFlowIsTrackedNoOp) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId real = sim.StartPersistentFlow({w.ab, w.bc});
  uint64_t reallocs = sim.reallocation_count();
  FlowId noop = sim.StartPersistentFlow({});
  EXPECT_EQ(sim.active_flow_count(), 2u);
  EXPECT_NE(sim.FindFlow(noop), nullptr);
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(noop), 0.0);
  // It consumes no link capacity and triggers no reallocation — not on
  // start, not on cap changes, not on cancel.
  EXPECT_EQ(sim.reallocation_count(), reallocs);
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(real), 0.5e9);
  EXPECT_TRUE(sim.SetRateCap(noop, 1e6).ok());
  EXPECT_EQ(sim.reallocation_count(), reallocs);
  EXPECT_TRUE(sim.CancelFlow(noop).ok());
  EXPECT_EQ(sim.reallocation_count(), reallocs);
  EXPECT_EQ(sim.active_flow_count(), 1u);
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(real), 0.5e9);
  EXPECT_EQ(sim.CancelFlow(noop).code(), StatusCode::kNotFound);
}

TEST(FlowSimTest, BatchCoalescesBurstIntoOneReallocation) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  std::vector<FlowId> flows;
  for (int i = 0; i < 16; ++i) {
    flows.push_back(sim.StartPersistentFlow({w.ab, w.bc}));
  }
  uint64_t before = sim.reallocation_count();
  FlowId added;
  {
    FlowSim::BatchScope batch = sim.Batch();
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(sim.SetRateCap(flows[i], 10e6).ok());
    }
    added = sim.StartPersistentFlow({w.ab, w.bc});
    ASSERT_TRUE(sim.CancelFlow(flows[8]).ok());
    // Inside the scope nothing has been reallocated yet: touched flows
    // report their pre-batch rate, new flows report 0.
    EXPECT_EQ(sim.reallocation_count(), before);
    EXPECT_DOUBLE_EQ(*sim.CurrentRate(added), 0.0);
  }
  // One pass for the whole burst, with the same result as unbatched
  // updates: 8 flows capped at 10M, the other 8 share the remaining 420M.
  EXPECT_EQ(sim.reallocation_count(), before + 1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(*sim.CurrentRate(flows[i]), 10e6, 1);
  }
  for (size_t i = 9; i < flows.size(); ++i) {
    EXPECT_NEAR(*sim.CurrentRate(flows[i]), 52.5e6, 1);
  }
  EXPECT_NEAR(*sim.CurrentRate(added), 52.5e6, 1);
}

TEST(FlowSimTest, NestedBatchScopesReallocateOnceAtOutermostExit) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f = sim.StartPersistentFlow({w.ab, w.bc});
  uint64_t before = sim.reallocation_count();
  {
    FlowSim::BatchScope outer = sim.Batch();
    {
      FlowSim::BatchScope inner = sim.Batch();
      ASSERT_TRUE(sim.SetRateCap(f, 0.1e9).ok());
    }
    // Inner exit must not reallocate while the outer scope is open.
    EXPECT_EQ(sim.reallocation_count(), before);
  }
  EXPECT_EQ(sim.reallocation_count(), before + 1);
  EXPECT_NEAR(*sim.CurrentRate(f), 0.1e9, 1);
}

TEST(FlowSimTest, EmptyBatchDoesNotReallocate) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  sim.StartPersistentFlow({w.ab, w.bc});
  uint64_t before = sim.reallocation_count();
  { FlowSim::BatchScope batch = sim.Batch(); }
  EXPECT_EQ(sim.reallocation_count(), before);
}

TEST(FlowSimTest, ScopedReallocationLeavesDisjointComponentsAlone) {
  // Two independent bottlenecks; churn on one must not grow the touched
  // set beyond that component.
  EventQueue queue;
  Topology topo;
  std::vector<std::vector<LinkId>> paths;
  for (int g = 0; g < 2; ++g) {
    NodeId a = topo.AddNode({"a", NodeKind::kHostAggregate, "x"});
    NodeId b = topo.AddNode({"b", NodeKind::kBackboneRouter, "x"});
    LinkId ab = topo.AddLink({a, b, 1e9, SimDuration::Millis(1),
                              SimDuration::Zero(), 0,
                              LinkClass::kDatacenter});
    paths.push_back({ab});
  }
  FlowSim sim(queue, topo);
  for (int i = 0; i < 8; ++i) {
    sim.StartPersistentFlow(paths[0]);
  }
  FlowId lone = sim.StartPersistentFlow(paths[1]);
  // The last reallocation (starting `lone`) touched only its 1-flow
  // component, not the 8 flows in the other one.
  EXPECT_DOUBLE_EQ(sim.component_size_histogram().max(), 8.0);
  ASSERT_TRUE(sim.SetRateCap(lone, 1e6).ok());
  EXPECT_LT(sim.mean_flows_touched_per_realloc(),
            static_cast<double>(sim.active_flow_count()));
}

// --- Incremental vs global equivalence --------------------------------------
// The core property of component-scoped reallocation: after EVERY event of
// a long random churn trace, the incrementally maintained rates must match
// a from-scratch global water-fill. The reference below re-implements the
// original (pre-incremental) map-based algorithm verbatim.

struct RefFlow {
  std::vector<LinkId> path;
  double weight = 1.0;
  double cap = std::numeric_limits<double>::infinity();
};

std::map<uint64_t, double> GlobalWaterFill(
    const Topology& topo, const std::map<uint64_t, RefFlow>& flows) {
  constexpr double kEps = 1e-9;
  std::map<uint64_t, double> rates;
  struct LinkBudget {
    double remaining = 0;
    double weight_sum = 0;
  };
  std::map<uint64_t, LinkBudget> budgets;
  using Entry = const std::pair<const uint64_t, RefFlow>;
  std::vector<Entry*> unfrozen;
  for (Entry& kv : flows) {
    rates[kv.first] = 0;
    if (kv.second.path.empty()) {
      continue;  // tracked zero-link no-op flows never acquire rate
    }
    unfrozen.push_back(&kv);
    for (LinkId link : kv.second.path) {
      auto [it, inserted] = budgets.try_emplace(
          link.value(), LinkBudget{topo.link(link).capacity_bps, 0});
      it->second.weight_sum += kv.second.weight;
    }
  }
  while (!unfrozen.empty()) {
    double lambda = std::numeric_limits<double>::infinity();
    for (Entry* f : unfrozen) {
      lambda = std::min(lambda, f->second.cap / f->second.weight);
      for (LinkId link : f->second.path) {
        const LinkBudget& b = budgets[link.value()];
        if (b.weight_sum > 0) {
          lambda =
              std::min(lambda, std::max(0.0, b.remaining) / b.weight_sum);
        }
      }
    }
    if (!std::isfinite(lambda)) {
      for (Entry* f : unfrozen) {
        rates[f->first] = 1e18;
      }
      break;
    }
    std::vector<Entry*> still_unfrozen;
    for (Entry* f : unfrozen) {
      bool frozen = false;
      double rate = f->second.weight * lambda;
      if (f->second.cap / f->second.weight <= lambda * (1 + kEps) + kEps) {
        rate = f->second.cap;
        frozen = true;
      } else {
        for (LinkId link : f->second.path) {
          const LinkBudget& b = budgets[link.value()];
          if (b.weight_sum > 0 &&
              std::max(0.0, b.remaining) / b.weight_sum <=
                  lambda * (1 + kEps) + kEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        rates[f->first] = rate;
        for (LinkId link : f->second.path) {
          LinkBudget& b = budgets[link.value()];
          b.remaining -= rate;
          b.weight_sum -= f->second.weight;
        }
      } else {
        still_unfrozen.push_back(f);
      }
    }
    if (still_unfrozen.size() == unfrozen.size()) {
      for (Entry* f : still_unfrozen) {
        rates[f->first] = f->second.weight * lambda;
      }
      still_unfrozen.clear();
    }
    unfrozen.swap(still_unfrozen);
  }
  return rates;
}

// Mixed topology: five isolated 2-link chains (tiny components) plus four
// pod uplinks through one shared core (one clustered component).
struct ChurnTopo {
  EventQueue queue;
  Topology topo;
  std::vector<std::vector<LinkId>> paths;

  ChurnTopo() {
    for (int g = 0; g < 5; ++g) {
      NodeId a = topo.AddNode({"a", NodeKind::kHostAggregate, "x"});
      NodeId b = topo.AddNode({"b", NodeKind::kBackboneRouter, "x"});
      NodeId c = topo.AddNode({"c", NodeKind::kHostAggregate, "x"});
      LinkId ab = topo.AddLink({a, b, 1e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
      LinkId bc = topo.AddLink({b, c, 0.5e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
      paths.push_back({ab, bc});
    }
    NodeId core_a = topo.AddNode({"ca", NodeKind::kBackboneRouter, "x"});
    NodeId core_b = topo.AddNode({"cb", NodeKind::kBackboneRouter, "x"});
    LinkId core =
        topo.AddLink({core_a, core_b, 2e9, SimDuration::Millis(1),
                      SimDuration::Zero(), 0, LinkClass::kBackbone});
    for (int p = 0; p < 4; ++p) {
      NodeId pod = topo.AddNode({"p", NodeKind::kHostAggregate, "x"});
      LinkId up = topo.AddLink({pod, core_a, 1e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
      paths.push_back({up, core});
    }
  }
};

TEST(FlowSimEquivalenceTest, IncrementalMatchesGlobalOnEveryChurnStep) {
  ChurnTopo w;
  FlowSim sim(w.queue, w.topo);
  Rng rng(2024);
  std::map<uint64_t, RefFlow> ref;
  std::vector<FlowId> live;

  auto verify = [&] {
    std::map<uint64_t, double> expect = GlobalWaterFill(w.topo, ref);
    for (const auto& [id_value, want] : expect) {
      Result<double> got = sim.CurrentRate(FlowId(id_value));
      ASSERT_TRUE(got.ok()) << "flow " << id_value << " missing";
      ASSERT_NEAR(*got, want, std::max(1.0, want) * 1e-6)
          << "flow " << id_value << " diverged from global water-fill";
    }
  };
  auto start_one = [&] {
    const std::vector<LinkId>& path = w.paths[rng.NextU64(w.paths.size())];
    double weight = 1.0 + static_cast<double>(rng.NextU64(3));
    double cap = rng.NextBool(0.25)
                     ? 20e6 + 1e6 * static_cast<double>(rng.NextU64(10))
                     : std::numeric_limits<double>::infinity();
    FlowId id;
    if (rng.NextBool(0.3)) {
      // Finite transfer, small enough to complete during the trace; its
      // completion exercises the incremental path from HandleCompletion.
      double bytes = 20e3 + 1e3 * static_cast<double>(rng.NextU64(100));
      id = sim.StartFlow(
          path, bytes,
          [&](FlowId done, SimTime) {
            ref.erase(done.value());
            live.erase(std::find(live.begin(), live.end(), done));
          },
          weight, cap);
    } else {
      id = sim.StartPersistentFlow(path, weight, cap);
    }
    ref[id.value()] = RefFlow{path, weight, cap};
    live.push_back(id);
  };

  for (int i = 0; i < 30; ++i) {
    start_one();
  }
  constexpr int kEvents = 10000;
  for (int e = 0; e < kEvents; ++e) {
    uint64_t kind = rng.NextU64(4);
    if (kind == 0 || live.size() < 15) {
      start_one();
    } else if (kind == 1) {
      size_t victim = rng.NextU64(live.size());
      FlowId id = live[victim];
      ASSERT_TRUE(sim.CancelFlow(id).ok());
      ref.erase(id.value());
      live.erase(live.begin() + victim);
    } else if (kind == 2) {
      FlowId id = live[rng.NextU64(live.size())];
      double cap = rng.NextBool(0.5)
                       ? 20e6 + 1e6 * static_cast<double>(rng.NextU64(10))
                       : std::numeric_limits<double>::infinity();
      ASSERT_TRUE(sim.SetRateCap(id, cap).ok());
      ref[id.value()].cap = cap;
    } else {
      // Advance simulated time so finite flows progress and complete.
      w.queue.RunUntil(w.queue.now() + SimDuration::Micros(200));
    }
    ASSERT_NO_FATAL_FAILURE(verify()) << "after event " << e;
  }
  EXPECT_EQ(sim.active_flow_count(), live.size());
}

TEST(FlowSimDeterminismTest, SameSeedYieldsIdenticalEventTrace) {
  // (flow id, completion time ns) pairs plus the cost counters must be
  // bit-identical across runs with the same seed: the slab queue's FIFO
  // tie-break and the deterministic component iteration leave no room for
  // run-to-run drift.
  auto run = [](uint64_t seed) {
    ChurnTopo w;
    FlowSim sim(w.queue, w.topo);
    Rng rng(seed);
    std::vector<std::pair<uint64_t, int64_t>> trace;
    std::vector<FlowId> live;
    auto start_one = [&] {
      const std::vector<LinkId>& path =
          w.paths[rng.NextU64(w.paths.size())];
      double weight = 1.0 + static_cast<double>(rng.NextU64(3));
      FlowId id = sim.StartFlow(
          path, 20e3 + 1e3 * static_cast<double>(rng.NextU64(50)),
          [&](FlowId done, SimTime t) {
            trace.push_back({done.value(), t.nanos()});
            live.erase(std::find(live.begin(), live.end(), done));
          },
          weight,
          rng.NextBool(0.3) ? 40e6 : std::numeric_limits<double>::infinity());
      live.push_back(id);
    };
    for (int i = 0; i < 20; ++i) {
      start_one();
    }
    for (int e = 0; e < 2000; ++e) {
      uint64_t kind = rng.NextU64(4);
      if (kind == 0 || live.size() < 10) {
        start_one();
      } else if (kind == 1) {
        size_t victim = rng.NextU64(live.size());
        FlowId id = live[victim];
        live.erase(live.begin() + victim);
        EXPECT_TRUE(sim.CancelFlow(id).ok());
      } else if (kind == 2) {
        (void)sim.SetRateCap(
            live[rng.NextU64(live.size())],
            rng.NextBool(0.5) ? 40e6
                              : std::numeric_limits<double>::infinity());
      } else {
        w.queue.RunUntil(w.queue.now() + SimDuration::Micros(500));
      }
    }
    w.queue.RunAll();
    return std::tuple(trace, sim.reallocation_count(),
                      sim.flows_rescheduled(), sim.total_bytes_delivered());
  };
  auto a = run(7);
  auto b = run(7);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_DOUBLE_EQ(std::get<3>(a), std::get<3>(b));
  EXPECT_GT(std::get<0>(a).size(), 100u);  // the trace actually ran
}

TEST(FlowSimTest, DownLinkStallsFlowAndRestoreResumes) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f = sim.StartPersistentFlow({w.ab, w.bc});
  ASSERT_TRUE(sim.SetLinkUp(w.bc, false).ok());
  EXPECT_FALSE(sim.IsLinkUp(w.bc));
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.0);
  EXPECT_EQ(sim.stalled_flow_count(), 1u);
  EXPECT_EQ(sim.flows_blackholed(), 1u);
  // Re-downing an already-down link is a no-op: no double counting.
  ASSERT_TRUE(sim.SetLinkUp(w.bc, false).ok());
  EXPECT_EQ(sim.flows_blackholed(), 1u);
  ASSERT_TRUE(sim.SetLinkUp(w.bc, true).ok());
  EXPECT_TRUE(sim.IsLinkUp(w.bc));
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f), 0.5e9);
  EXPECT_EQ(sim.stalled_flow_count(), 0u);
}

TEST(FlowSimTest, DownLinkAbortsFlowsWithAbortHandlers) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  bool completed = false;
  int aborts = 0;
  FlowId aborted_id;
  SimTime abort_time;
  FlowId f = sim.StartFlow(
      {w.ab, w.bc}, 62.5e6, [&](FlowId, SimTime) { completed = true; }, 1.0,
      std::numeric_limits<double>::infinity(), [&](FlowId id, SimTime t) {
        ++aborts;
        aborted_id = id;
        abort_time = t;
      });
  // Halfway through the 1-second transfer the bottleneck link dies.
  w.queue.ScheduleAt(SimTime::FromSeconds(0.5), [&] {
    ASSERT_TRUE(sim.SetLinkUp(w.bc, false).ok());
  });
  w.queue.RunAll();
  EXPECT_FALSE(completed);
  EXPECT_EQ(aborts, 1);
  EXPECT_EQ(aborted_id.value(), f.value());
  EXPECT_NEAR(abort_time.ToSeconds(), 0.5, 1e-9);
  EXPECT_EQ(sim.flows_aborted(), 1u);
  EXPECT_EQ(sim.active_flow_count(), 0u);
  // Half the payload made it out before the fault; the rest blackholed.
  EXPECT_NEAR(sim.total_bytes_delivered(), 31.25e6, 1.0);
  EXPECT_NEAR(sim.bytes_blackholed(), 31.25e6, 1.0);
}

TEST(FlowSimTest, DownLinkFreesCapacityForSurvivors) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId through = sim.StartPersistentFlow({w.ab, w.bc});
  FlowId local = sim.StartPersistentFlow({w.ab});
  EXPECT_NEAR(*sim.CurrentRate(local), 0.5e9, 1);
  ASSERT_TRUE(sim.SetLinkUp(w.bc, false).ok());
  // The stalled flow's share of ab is released to the survivor.
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(through), 0.0);
  EXPECT_NEAR(*sim.CurrentRate(local), 1e9, 1);
  EXPECT_DOUBLE_EQ(sim.LinkUtilization(w.bc), 1.0);  // down reads saturated
  ASSERT_TRUE(sim.SetLinkUp(w.bc, true).ok());
  EXPECT_NEAR(*sim.CurrentRate(through), 0.5e9, 1);
  EXPECT_NEAR(*sim.CurrentRate(local), 0.5e9, 1);
}

TEST(FlowSimTest, NestedBatchAppliesLinkDownAndStartsAtomically) {
  // Satellite: Batch() nesting under concurrent link-down + flow-start.
  // SetLinkUp opens its own nested batch; wrapped in an outer scope the
  // whole burst must settle in a single reallocation at the outermost end.
  Line w;
  FlowSim sim(w.queue, w.topo);
  FlowId f1 = sim.StartPersistentFlow({w.ab, w.bc});
  uint64_t reallocs_before = sim.reallocation_count();
  FlowId f2;
  {
    auto outer = sim.Batch();
    ASSERT_TRUE(sim.SetLinkUp(w.bc, false).ok());
    {
      auto inner = sim.Batch();
      f2 = sim.StartPersistentFlow({w.ab});
    }
    // Neither the inner scope's close nor SetLinkUp reallocated yet.
    EXPECT_EQ(sim.reallocation_count(), reallocs_before);
  }
  EXPECT_EQ(sim.reallocation_count(), reallocs_before + 1);
  EXPECT_DOUBLE_EQ(*sim.CurrentRate(f1), 0.0);
  EXPECT_NEAR(*sim.CurrentRate(f2), 1e9, 1);
  EXPECT_EQ(sim.flows_blackholed(), 1u);
  EXPECT_EQ(sim.stalled_flow_count(), 1u);
}

TEST(FlowSimTest, SameTimestampFaultAndCompletionBothOrdersDeliver) {
  // Satellite: a fault batch that removes a flow's last link at the exact
  // sim timestamp where the flow's completion is due. The EventQueue FIFO
  // tie-break makes both interleavings reachable; in BOTH the flow must be
  // delivered exactly once and never charged as blackholed.
  //
  // Order A: the fault event is scheduled before the flow starts, so at
  // t=1s the fault fires first. Settling inside the fault batch leaves
  // bytes_left == 0 and the write-back re-completes the flow at `now`.
  {
    Line w;
    FlowSim sim(w.queue, w.topo);
    w.queue.ScheduleAt(SimTime::FromSeconds(1), [&] {
      ASSERT_TRUE(sim.SetLinkUp(w.bc, false).ok());
    });
    int completions = 0;
    SimTime finish;
    sim.StartFlow({w.ab, w.bc}, 62.5e6, [&](FlowId, SimTime t) {
      ++completions;
      finish = t;
    });
    w.queue.RunAll();
    EXPECT_EQ(completions, 1);
    EXPECT_NEAR(finish.ToSeconds(), 1.0, 1e-9);
    EXPECT_EQ(sim.flows_blackholed(), 0u);
    EXPECT_DOUBLE_EQ(sim.bytes_blackholed(), 0.0);
    EXPECT_NEAR(sim.total_bytes_delivered(), 62.5e6, 1.0);
    EXPECT_EQ(sim.active_flow_count(), 0u);
  }
  // Order B: the completion event was scheduled first and wins the
  // tie-break; the fault batch then finds no crossing flows and the stale
  // completion-handle Cancel inside the batch must be a safe no-op.
  {
    Line w;
    FlowSim sim(w.queue, w.topo);
    int completions = 0;
    sim.StartFlow({w.ab, w.bc}, 62.5e6,
                  [&](FlowId, SimTime) { ++completions; });
    w.queue.ScheduleAt(SimTime::FromSeconds(1), [&] {
      ASSERT_TRUE(sim.SetLinkUp(w.bc, false).ok());
    });
    w.queue.RunAll();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(sim.flows_blackholed(), 0u);
    EXPECT_DOUBLE_EQ(sim.bytes_blackholed(), 0.0);
    EXPECT_NEAR(sim.total_bytes_delivered(), 62.5e6, 1.0);
    EXPECT_EQ(sim.active_flow_count(), 0u);
  }
}

TEST(FlowSimTest, SetLinkUpRejectsUnknownLink) {
  Line w;
  FlowSim sim(w.queue, w.topo);
  EXPECT_FALSE(sim.SetLinkUp(LinkId(), false).ok());
  EXPECT_FALSE(sim.SetLinkUp(LinkId(999), false).ok());
}

}  // namespace
}  // namespace tenantnet
