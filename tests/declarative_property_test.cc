// Property tests over the declarative world: for random permit matrices,
// delivery must hold EXACTLY for permitted (src, dst) pairs — default-off
// completeness in both directions — and must stay consistent through
// endpoint churn (released addresses lose all their permissions even when
// the address is recycled).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/cloud/presets.h"
#include "src/common/rng.h"
#include "src/core/api.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

class PermitMatrixTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PermitMatrixTest, DeliveryIffPermitted) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);
  Rng rng(GetParam());

  constexpr int kN = 12;
  std::vector<InstanceId> vms;
  std::vector<IpAddress> eips;
  for (int i = 0; i < kN; ++i) {
    InstanceId vm = *tw.world->LaunchInstance(
        tw.tenant, tw.provider, rng.NextBool(0.5) ? tw.east : tw.west,
        static_cast<int>(rng.NextU64(2)));
    vms.push_back(vm);
    eips.push_back(*cloud.RequestEip(vm));
  }

  // Random allow matrix, density ~30%.
  std::set<std::pair<int, int>> allowed;
  for (int dst = 0; dst < kN; ++dst) {
    std::vector<PermitEntry> permits;
    for (int src = 0; src < kN; ++src) {
      if (src != dst && rng.NextBool(0.3)) {
        allowed.insert({src, dst});
        PermitEntry e;
        e.source = IpPrefix::Host(eips[src]);
        permits.push_back(e);
      }
    }
    ASSERT_TRUE(cloud.SetPermitList(eips[dst], permits).ok());
  }

  for (int src = 0; src < kN; ++src) {
    for (int dst = 0; dst < kN; ++dst) {
      if (src == dst) {
        continue;
      }
      auto result = cloud.Evaluate(vms[src], eips[dst], 443, Protocol::kTcp);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->delivered, allowed.count({src, dst}) > 0)
          << "src=" << src << " dst=" << dst;
      if (!result->delivered) {
        EXPECT_EQ(result->drop_stage, "edge-filter");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermitMatrixTest,
                         ::testing::ValuesIn(test_env::SeedList(
                             {1, 12, 123, 1234})));

class ChurnConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnConsistencyTest, RecycledAddressesInheritNothing) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);
  Rng rng(GetParam());

  // A long-lived server permits a rotating set of clients; clients churn
  // (release + new instance gets the recycled address). The invariant: the
  // holder of a recycled address is never admitted unless the *current*
  // permit list names it.
  InstanceId server =
      *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  IpAddress server_eip = *cloud.RequestEip(server);

  // Element picks go through the shared sampler so a TN_SEED repro replays
  // the same release/probe victims across suites.
  test_env::PairSampler sampler(GetParam());

  std::map<uint64_t, InstanceId> live;     // eip value -> instance
  std::set<uint64_t> permitted_values;     // eip values on the permit list

  auto reinstall = [&]() {
    std::vector<PermitEntry> permits;
    for (uint64_t v : permitted_values) {
      PermitEntry e;
      // Reconstruct the v4 address from its stored 32-bit value.
      e.source = IpPrefix::Host(IpAddress::V4(static_cast<uint32_t>(v)));
      permits.push_back(e);
    }
    ASSERT_TRUE(cloud.SetPermitList(server_eip, permits).ok());
  };

  for (int step = 0; step < 300; ++step) {
    double coin = rng.NextDouble();
    if (coin < 0.4 || live.empty()) {
      // Launch a client; maybe permit it.
      InstanceId vm = *tw.world->LaunchInstance(tw.tenant, tw.provider,
                                                tw.west,
                                                static_cast<int>(
                                                    rng.NextU64(2)));
      IpAddress eip = *cloud.RequestEip(vm);
      live[eip.v4_bits()] = vm;
      if (rng.NextBool(0.5)) {
        permitted_values.insert(eip.v4_bits());
        reinstall();
      }
    } else if (coin < 0.7) {
      // Release a random live client WITHOUT touching the permit list —
      // the dangerous case: its address may be recycled to a stranger.
      auto it = live.begin();
      std::advance(it, sampler.Index(live.size()));
      ASSERT_TRUE(
          cloud.ReleaseEip(IpAddress::V4(static_cast<uint32_t>(it->first)))
              .ok());
      // Note: the permit list still (stale-ly) names the address. This is
      // tenant hygiene the system cannot do for them — but the *holder*
      // changed, and that is what we check below.
      live.erase(it);
    } else {
      // Probe: every live client must be admitted iff its address value is
      // currently on the list.
      for (const auto& [value, vm] : live) {
        auto result = cloud.Evaluate(vm, server_eip, 443, Protocol::kTcp);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result->delivered, permitted_values.count(value) > 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnConsistencyTest,
                         ::testing::ValuesIn(test_env::SeedList({7, 77,
                                                                 777})));

TEST(SipConsistencyTest, ResolutionAlwaysReturnsABoundHealthyEip) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);
  Rng rng(4242);

  IpAddress sip = *cloud.RequestSip(tw.tenant, tw.provider);
  test_env::PairSampler sampler(4242);
  std::set<IpAddress> bound;
  std::set<IpAddress> healthy;
  std::map<uint64_t, InstanceId> instance_of;

  for (int step = 0; step < 400; ++step) {
    double coin = rng.NextDouble();
    if (coin < 0.3) {
      InstanceId vm = *tw.world->LaunchInstance(tw.tenant, tw.provider,
                                                tw.east, 0);
      IpAddress eip = *cloud.RequestEip(vm);
      ASSERT_TRUE(cloud.Bind(eip, sip, 1.0 + rng.NextDouble()).ok());
      bound.insert(eip);
      healthy.insert(eip);
      instance_of[eip.v4_bits()] = vm;
    } else if (coin < 0.45 && !bound.empty()) {
      auto it = bound.begin();
      std::advance(it, sampler.Index(bound.size()));
      ASSERT_TRUE(cloud.Unbind(*it, sip).ok());
      healthy.erase(*it);
      bound.erase(it);
    } else if (coin < 0.6 && !bound.empty()) {
      auto it = bound.begin();
      std::advance(it, sampler.Index(bound.size()));
      bool up = rng.NextBool(0.5);
      cloud.NotifyInstanceDown(instance_of[it->v4_bits()]);
      if (up) {
        cloud.NotifyInstanceUp(instance_of[it->v4_bits()]);
        healthy.insert(*it);
      } else {
        healthy.erase(*it);
      }
    } else {
      auto backend = cloud.sip_lb().Resolve(sip);
      if (healthy.empty()) {
        EXPECT_FALSE(backend.ok());
      } else {
        ASSERT_TRUE(backend.ok());
        EXPECT_TRUE(healthy.count(*backend) > 0)
            << backend->ToString() << " is not a healthy bound backend";
      }
    }
  }
}

}  // namespace
}  // namespace tenantnet
