// Differential fuzz for the arena-backed path-compressed LPM trie.
//
// The oracle is a deliberately naive std::map<IpPrefix, int> with linear
// longest-match scans: trivially correct, hopelessly slow, and structurally
// nothing like a Patricia arena — exactly what you want on the other side
// of a differential test. Random insert / overwrite / remove / lookup
// streams (v4 + v6, seeded, honoring TN_SEED / TN_ITERS) must agree on
// every observable: LongestMatch, LongestMatchEntry, ExactMatch,
// ForEachMatch cover sets, entry_count, and full ForEach enumeration.
//
// Prefixes are drawn from a small pool of base addresses so streams are
// dense in ancestors, siblings, and re-inserts — the cases that force edge
// splits, valueless branch nodes, and slot recycling in the arena.
//
// The second half churns the trie's two production hosts (EdgeFilterBank,
// BgpMesh) with random state and asserts the warm-restart fixed point
// Checkpoint -> RestoreFromSnapshot -> Checkpoint on the result, so the
// restart_test fingerprints keep holding under states no hand-written test
// enumerates.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/edge_filter.h"
#include "src/net/ip.h"
#include "src/routing/bgp.h"
#include "src/routing/lpm_trie.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

// ---------------------------------------------------------------------------
// Naive reference LPM: ordered map + linear scans. The oracle.
// ---------------------------------------------------------------------------

class RefLpm {
 public:
  bool Insert(const IpPrefix& prefix, int value) {
    return entries_.insert_or_assign(prefix, value).second;
  }
  bool Remove(const IpPrefix& prefix) { return entries_.erase(prefix) != 0; }

  const int* ExactMatch(const IpPrefix& prefix) const {
    auto it = entries_.find(prefix);
    return it == entries_.end() ? nullptr : &it->second;
  }

  std::optional<std::pair<IpPrefix, int>> LongestMatch(IpAddress ip) const {
    std::optional<std::pair<IpPrefix, int>> best;
    for (const auto& [prefix, value] : entries_) {
      if (prefix.family() != ip.family() || !prefix.Contains(ip)) {
        continue;
      }
      if (!best || prefix.length() > best->first.length()) {
        best = {prefix, value};
      }
    }
    return best;
  }

  // Values of every prefix covering ip, shortest first (ForEachMatch order).
  std::vector<int> Covers(IpAddress ip) const {
    std::vector<std::pair<int, int>> hits;  // (length, value)
    for (const auto& [prefix, value] : entries_) {
      if (prefix.family() == ip.family() && prefix.Contains(ip)) {
        hits.emplace_back(prefix.length(), value);
      }
    }
    std::sort(hits.begin(), hits.end());
    std::vector<int> out;
    for (const auto& [len, value] : hits) {
      out.push_back(value);
    }
    return out;
  }

  size_t size() const { return entries_.size(); }
  const std::map<IpPrefix, int>& entries() const { return entries_; }

 private:
  std::map<IpPrefix, int> entries_;
};

// ---------------------------------------------------------------------------
// Random prefix/address generation, biased for structural collisions.
// ---------------------------------------------------------------------------

constexpr size_t kBasePool = 12;

IpAddress RandomAddr(Rng& rng, bool v6, const std::vector<IpAddress>& pool) {
  // Half the draws perturb a pooled base (stays inside populated subtrees),
  // half are uniform (exercises miss paths and far branches).
  if (!pool.empty() && rng.NextBool(0.5)) {
    const IpAddress& base = pool[rng.NextU64(pool.size())];
    if (!v6) {
      return IpAddress::V4(base.v4_bits() ^
                           static_cast<uint32_t>(rng.NextU64(1u << 12)));
    }
    return IpAddress::V6(base.hi(), base.lo() ^ rng.NextU64(1ull << 20));
  }
  if (!v6) {
    return IpAddress::V4(static_cast<uint32_t>(rng.NextU64()));
  }
  return IpAddress::V6(rng.NextU64(), rng.NextU64());
}

IpPrefix RandomPrefix(Rng& rng, bool v6, const std::vector<IpAddress>& pool) {
  const int width = v6 ? 128 : 32;
  // Bias toward deep prefixes (host routes are the E10 workload) but keep
  // the whole range reachable, /0 included.
  int len;
  switch (rng.NextU64(4)) {
    case 0:
      len = static_cast<int>(rng.NextU64(width + 1));
      break;
    case 1:
      len = width;  // host route
      break;
    default:
      len = width / 2 + static_cast<int>(rng.NextU64(width / 2 + 1));
      break;
  }
  return *IpPrefix::Create(RandomAddr(rng, v6, pool), len);
}

std::vector<int> CoversViaTrie(const LpmTrie<int>& trie, IpAddress ip) {
  std::vector<int> out;
  trie.ForEachMatch(ip, [&](const int& value) {
    out.push_back(value);
    return true;
  });
  return out;
}

class LpmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// ---------------------------------------------------------------------------
// The differential stream.
// ---------------------------------------------------------------------------

TEST_P(LpmFuzzTest, ArenaTrieMatchesNaiveMapReference) {
  const int iters = static_cast<int>(test_env::ItersOverride(3000));
  SCOPED_TRACE("reproduce with TN_SEED=" + std::to_string(GetParam()) +
               " TN_ITERS=" + std::to_string(iters));
  Rng rng(GetParam());

  std::vector<IpAddress> pool_v4, pool_v6;
  for (size_t i = 0; i < kBasePool; ++i) {
    pool_v4.push_back(IpAddress::V4(static_cast<uint32_t>(rng.NextU64())));
    pool_v6.push_back(IpAddress::V6(rng.NextU64(), rng.NextU64()));
  }

  LpmTrie<int> trie;
  RefLpm ref;
  std::vector<IpPrefix> inserted;  // may contain already-removed prefixes
  int next_value = 0;

  for (int step = 0; step < iters; ++step) {
    const bool v6 = rng.NextBool(0.4);
    const auto& pool = v6 ? pool_v6 : pool_v4;
    switch (rng.NextU64(4)) {
      case 0:
      case 1: {  // insert or overwrite
        IpPrefix prefix = RandomPrefix(rng, v6, pool);
        const int value = next_value++;
        EXPECT_EQ(trie.Insert(prefix, value), ref.Insert(prefix, value));
        inserted.push_back(prefix);
        break;
      }
      case 2: {  // remove (random known prefix, or a fresh likely-miss)
        IpPrefix prefix = !inserted.empty() && rng.NextBool(0.8)
                              ? inserted[rng.NextU64(inserted.size())]
                              : RandomPrefix(rng, v6, pool);
        EXPECT_EQ(trie.Remove(prefix), ref.Remove(prefix));
        break;
      }
      default: {  // probe a batch of lookups
        for (int probe = 0; probe < 4; ++probe) {
          const bool pv6 = rng.NextBool(0.4);
          IpAddress ip = RandomAddr(rng, pv6, pv6 ? pool_v6 : pool_v4);
          auto want = ref.LongestMatch(ip);
          const int* got = trie.LongestMatch(ip);
          ASSERT_EQ(got != nullptr, want.has_value()) << ip.ToString();
          if (want) {
            EXPECT_EQ(*got, want->second) << ip.ToString();
            auto entry = trie.LongestMatchEntry(ip);
            ASSERT_TRUE(entry.has_value()) << ip.ToString();
            EXPECT_EQ(entry->first, want->first) << ip.ToString();
          }
          EXPECT_EQ(CoversViaTrie(trie, ip), ref.Covers(ip)) << ip.ToString();
        }
        if (!inserted.empty()) {
          const IpPrefix& prefix = inserted[rng.NextU64(inserted.size())];
          const int* got = trie.ExactMatch(prefix);
          const int* want = ref.ExactMatch(prefix);
          ASSERT_EQ(got != nullptr, want != nullptr) << prefix.ToString();
          if (want != nullptr) {
            EXPECT_EQ(*got, *want) << prefix.ToString();
          }
        }
        break;
      }
    }
    ASSERT_EQ(trie.entry_count(), ref.size());
  }

  // Full enumeration must agree entry-for-entry.
  std::map<IpPrefix, int> walked;
  trie.ForEach([&](const IpPrefix& prefix, const int& value) {
    EXPECT_TRUE(walked.emplace(prefix, value).second)
        << "duplicate " << prefix.ToString();
  });
  EXPECT_EQ(walked, ref.entries());
}

// ---------------------------------------------------------------------------
// Fixed point under random churn: the trie's production hosts.
// ---------------------------------------------------------------------------

TEST_P(LpmFuzzTest, FilterBankCheckpointFixedPointUnderRandomChurn) {
  const int iters = static_cast<int>(test_env::ItersOverride(3000)) / 10;
  SCOPED_TRACE("reproduce with TN_SEED=" + std::to_string(GetParam()));
  Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ull);

  EdgeFilterBank bank("fuzz", nullptr, GetParam());
  bank.AddEdge("e0");
  bank.AddEdge("e1");

  std::vector<IpAddress> endpoints;
  for (int i = 0; i < 24; ++i) {
    endpoints.push_back(IpAddress::V4(0x05000000u + i));
  }
  std::vector<IpAddress> pool;
  for (size_t i = 0; i < kBasePool; ++i) {
    pool.push_back(IpAddress::V4(static_cast<uint32_t>(rng.NextU64())));
  }

  for (int step = 0; step < iters; ++step) {
    const IpAddress endpoint = endpoints[rng.NextU64(endpoints.size())];
    switch (rng.NextU64(4)) {
      case 0:
        bank.RemovePermitList(endpoint);
        break;
      case 1: {
        EndpointGroupId group(rng.NextU64(4) + 1);
        std::vector<IpAddress> members;
        for (uint64_t i = rng.NextU64(4); i > 0; --i) {
          members.push_back(RandomAddr(rng, false, pool));
        }
        bank.SetGroup(group, std::move(members));
        break;
      }
      default: {
        // Few distinct lists across many endpoints — the interning shape.
        Rng list_rng(rng.NextU64(6));
        std::vector<PermitEntry> entries;
        for (uint64_t i = list_rng.NextU64(5); i > 0; --i) {
          PermitEntry entry;
          entry.source = RandomPrefix(list_rng, false, {});
          if (list_rng.NextBool(0.25)) {
            entry.source_group = EndpointGroupId(list_rng.NextU64(4) + 1);
          }
          entries.push_back(entry);
        }
        bank.SetPermitList(endpoint, std::move(entries));
        break;
      }
    }
  }

  FilterBankSnapshot snap = bank.Checkpoint();
  bank.RestoreFromSnapshot(snap);
  EXPECT_TRUE(bank.Checkpoint() == snap);
  const std::string fingerprint = bank.StateFingerprint();
  bank.RestoreFromSnapshot(snap);
  EXPECT_EQ(bank.StateFingerprint(), fingerprint);
}

TEST_P(LpmFuzzTest, BgpMeshCheckpointFixedPointUnderRandomChurn) {
  const int iters = static_cast<int>(test_env::ItersOverride(3000)) / 30;
  SCOPED_TRACE("reproduce with TN_SEED=" + std::to_string(GetParam()));
  Rng rng(GetParam() ^ 0xda942042e4dd58b5ull);

  BgpMesh mesh;
  std::vector<SpeakerId> speakers;
  for (int i = 0; i < 6; ++i) {
    speakers.push_back(
        mesh.AddSpeaker(100 + i, "s" + std::to_string(i)));
  }
  // Random connected-ish mesh: a ring plus random chords.
  for (size_t i = 0; i < speakers.size(); ++i) {
    ASSERT_TRUE(
        mesh.AddSession(speakers[i], speakers[(i + 1) % speakers.size()])
            .ok());
  }
  for (int i = 0; i < 4; ++i) {
    (void)mesh.AddSession(speakers[rng.NextU64(speakers.size())],
                          speakers[rng.NextU64(speakers.size())]);
  }

  std::vector<std::pair<SpeakerId, IpPrefix>> origins;
  for (int step = 0; step < iters; ++step) {
    if (!origins.empty() && rng.NextBool(0.3)) {
      const size_t pick = rng.NextU64(origins.size());
      (void)mesh.WithdrawOrigin(origins[pick].first, origins[pick].second);
      origins.erase(origins.begin() + pick);
    } else {
      SpeakerId s = speakers[rng.NextU64(speakers.size())];
      IpPrefix prefix = RandomPrefix(rng, rng.NextBool(0.3), {});
      if (mesh.Originate(s, prefix).ok()) {
        origins.emplace_back(s, prefix);
      }
    }
    if (rng.NextBool(0.3)) {
      mesh.Converge();
    }
  }
  mesh.Converge();

  BgpMeshSnapshot snap = mesh.Checkpoint();
  mesh.RestoreFromSnapshot(snap);
  EXPECT_TRUE(mesh.Checkpoint() == snap);
}

// TN_SEED narrows the sweep to one seed; nightly lanes can raise TN_ITERS.
INSTANTIATE_TEST_SUITE_P(Seeds, LpmFuzzTest,
                         ::testing::ValuesIn(test_env::SeedList(
                             {1, 2, 3, 5, 8, 13})));

}  // namespace
}  // namespace tenantnet
