// Tests for the LPM trie, including a brute-force equivalence property.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/routing/lpm_trie.h"

namespace tenantnet {
namespace {

TEST(LpmTrieTest, EmptyMatchesNothing) {
  LpmTrie<int> trie;
  EXPECT_EQ(trie.LongestMatch(IpAddress::V4(1, 2, 3, 4)), nullptr);
  EXPECT_EQ(trie.entry_count(), 0u);
}

TEST(LpmTrieTest, InsertAndExactMatch) {
  LpmTrie<int> trie;
  EXPECT_TRUE(trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 2));  // overwrite
  ASSERT_NE(trie.ExactMatch(*IpPrefix::Parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.ExactMatch(*IpPrefix::Parse("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.ExactMatch(*IpPrefix::Parse("10.0.0.0/9")), nullptr);
  EXPECT_EQ(trie.entry_count(), 1u);
}

TEST(LpmTrieTest, LongestPrefixWins) {
  LpmTrie<int> trie;
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*IpPrefix::Parse("10.1.0.0/16"), 16);
  trie.Insert(*IpPrefix::Parse("10.1.2.0/24"), 24);
  EXPECT_EQ(*trie.LongestMatch(IpAddress::V4(10, 1, 2, 3)), 24);
  EXPECT_EQ(*trie.LongestMatch(IpAddress::V4(10, 1, 9, 9)), 16);
  EXPECT_EQ(*trie.LongestMatch(IpAddress::V4(10, 9, 9, 9)), 8);
  EXPECT_EQ(trie.LongestMatch(IpAddress::V4(11, 0, 0, 1)), nullptr);
}

TEST(LpmTrieTest, DefaultRouteAtLengthZero) {
  LpmTrie<int> trie;
  trie.Insert(IpPrefix::Any(IpFamily::kIpv4), 0);
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 8);
  EXPECT_EQ(*trie.LongestMatch(IpAddress::V4(99, 0, 0, 1)), 0);
  EXPECT_EQ(*trie.LongestMatch(IpAddress::V4(10, 0, 0, 1)), 8);
}

TEST(LpmTrieTest, RemoveRestoresShorterMatch) {
  LpmTrie<int> trie;
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*IpPrefix::Parse("10.1.0.0/16"), 16);
  EXPECT_TRUE(trie.Remove(*IpPrefix::Parse("10.1.0.0/16")));
  EXPECT_EQ(*trie.LongestMatch(IpAddress::V4(10, 1, 0, 1)), 8);
  EXPECT_FALSE(trie.Remove(*IpPrefix::Parse("10.1.0.0/16")));  // gone
  EXPECT_EQ(trie.entry_count(), 1u);
}

TEST(LpmTrieTest, FamiliesAreIndependent) {
  LpmTrie<int> trie;
  trie.Insert(IpPrefix::Any(IpFamily::kIpv4), 4);
  trie.Insert(IpPrefix::Any(IpFamily::kIpv6), 6);
  EXPECT_EQ(*trie.LongestMatch(IpAddress::V4(1, 1, 1, 1)), 4);
  EXPECT_EQ(*trie.LongestMatch(*IpAddress::Parse("2001:db8::1")), 6);
  EXPECT_EQ(trie.entry_count(), 2u);
}

TEST(LpmTrieTest, V6HostRoutes) {
  LpmTrie<int> trie;
  IpAddress a = *IpAddress::Parse("2001:db8::1");
  IpAddress b = *IpAddress::Parse("2001:db8::2");
  trie.Insert(IpPrefix::Host(a), 1);
  trie.Insert(IpPrefix::Host(b), 2);
  EXPECT_EQ(*trie.LongestMatch(a), 1);
  EXPECT_EQ(*trie.LongestMatch(b), 2);
  EXPECT_EQ(trie.LongestMatch(*IpAddress::Parse("2001:db8::3")), nullptr);
}

TEST(LpmTrieTest, LongestMatchEntryReportsPrefix) {
  LpmTrie<int> trie;
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*IpPrefix::Parse("10.1.0.0/16"), 16);
  auto entry = trie.LongestMatchEntry(IpAddress::V4(10, 1, 5, 5));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first.ToString(), "10.1.0.0/16");
  EXPECT_EQ(*entry->second, 16);
}

TEST(LpmTrieTest, ForEachVisitsAllEntries) {
  LpmTrie<int> trie;
  std::vector<std::string> want = {"10.0.0.0/8", "10.1.0.0/16",
                                   "192.168.0.0/24"};
  int value = 0;
  for (const auto& s : want) {
    trie.Insert(*IpPrefix::Parse(s), value++);
  }
  std::vector<std::string> got;
  trie.ForEach([&](const IpPrefix& p, int) { got.push_back(p.ToString()); });
  ASSERT_EQ(got.size(), want.size());
  for (const auto& s : want) {
    EXPECT_NE(std::find(got.begin(), got.end(), s), got.end()) << s;
  }
}

TEST(LpmTrieTest, ClearResets) {
  LpmTrie<int> trie;
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 1);
  trie.Clear();
  EXPECT_EQ(trie.entry_count(), 0u);
  EXPECT_EQ(trie.LongestMatch(IpAddress::V4(10, 0, 0, 1)), nullptr);
}

TEST(LpmTrieTest, NodeCountIsPathCompressed) {
  LpmTrie<int> trie;
  size_t before = trie.node_count();
  EXPECT_EQ(before, 2u);  // the two family roots always exist
  // A lone /8 is one arena node regardless of depth.
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 1);
  size_t after_one = trie.node_count();
  EXPECT_EQ(after_one, before + 1);
  // A descendant on the same path adds exactly one more node.
  trie.Insert(*IpPrefix::Parse("10.0.0.0/16"), 2);
  EXPECT_EQ(trie.node_count(), after_one + 1);
  // A sibling hanging off an empty branch of the /8 is one leaf.
  trie.Insert(*IpPrefix::Parse("10.128.0.0/16"), 3);
  EXPECT_EQ(trie.node_count(), after_one + 2);
  // Divergence mid-segment (inside the /8->/16 edge) costs leaf + split.
  trie.Insert(*IpPrefix::Parse("10.64.0.0/16"), 4);
  EXPECT_EQ(trie.node_count(), after_one + 4);
  // Remove never prunes: node_count reports high-water structure.
  trie.Remove(*IpPrefix::Parse("10.64.0.0/16"));
  EXPECT_EQ(trie.node_count(), after_one + 4);
}

TEST(LpmTrieTest, DeepV6LadderIsIterative) {
  // /1../128 nested prefixes down one all-ones spine: the worst case for a
  // recursive walker (128+ frames). Every traversal must stay iterative and
  // exact. Also the worst case for path compression (no skippable runs).
  LpmTrie<int> trie;
  IpAddress ones = IpAddress::V6(~0ull, ~0ull);
  for (int len = 1; len <= 128; ++len) {
    EXPECT_TRUE(trie.Insert(*IpPrefix::Create(ones, len), len));
  }
  EXPECT_EQ(trie.entry_count(), 128u);
  EXPECT_EQ(*trie.LongestMatch(ones), 128);
  // An address diverging at bit 100 matches the /100.
  IpAddress diverge = IpAddress::V6(~0ull, ~0ull ^ (1ull << 27));
  EXPECT_EQ(*trie.LongestMatch(diverge), 100);
  // ForEachMatch sees the whole ladder shortest-first.
  std::vector<int> seen;
  trie.ForEachMatch(ones, [&](int v) {
    seen.push_back(v);
    return true;
  });
  ASSERT_EQ(seen.size(), 128u);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(seen[i], i + 1);
  }
  // ForEach enumerates all 128 prefixes (iterative preorder).
  size_t count = 0;
  trie.ForEach([&](const IpPrefix&, int) { ++count; });
  EXPECT_EQ(count, 128u);
  // Exact removal down the ladder stays consistent.
  for (int len = 128; len >= 1; --len) {
    EXPECT_TRUE(trie.Remove(*IpPrefix::Create(ones, len)));
  }
  EXPECT_EQ(trie.entry_count(), 0u);
  EXPECT_EQ(trie.LongestMatch(ones), nullptr);
}

TEST(LpmTrieTest, ApproxBytesTracksArena) {
  LpmTrie<int> trie;
  size_t empty = trie.ApproxBytes();
  for (int i = 0; i < 1000; ++i) {
    trie.Insert(IpPrefix::Host(IpAddress::V4(10, 0, i / 256, i % 256)), i);
  }
  trie.ShrinkToFit();
  size_t full = trie.ApproxBytes();
  EXPECT_GT(full, empty);
  // Path-compressed host routes: at most ~2 nodes per entry, and each v4
  // node is tens of bytes — 1000 host routes must stay well under 64 KiB
  // (the old node-per-bit trie paid ~32 heap nodes per /32).
  EXPECT_LT(full, 64u * 1024);
  EXPECT_LE(trie.node_count(), 2u * 1000 + 2);
}

// Property: trie lookups agree with brute-force longest-prefix search over
// random rule sets.
class LpmEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LpmEquivalenceTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  LpmTrie<size_t> trie;
  std::vector<IpPrefix> rules;
  for (int i = 0; i < 300; ++i) {
    int len = static_cast<int>(rng.NextU64(33));
    IpAddress base = IpAddress::V4(static_cast<uint32_t>(rng.NextU64()));
    IpPrefix prefix = *IpPrefix::Create(base, len);
    // Skip duplicates (overwrite would desync the index invariant below).
    if (std::find(rules.begin(), rules.end(), prefix) != rules.end()) {
      continue;
    }
    trie.Insert(prefix, rules.size());
    rules.push_back(prefix);
  }
  for (int i = 0; i < 2000; ++i) {
    IpAddress probe = IpAddress::V4(static_cast<uint32_t>(rng.NextU64()));
    // Brute force.
    std::optional<size_t> best;
    int best_len = -1;
    for (size_t r = 0; r < rules.size(); ++r) {
      if (rules[r].Contains(probe) && rules[r].length() > best_len) {
        best = r;
        best_len = rules[r].length();
      }
    }
    const size_t* got = trie.LongestMatch(probe);
    if (best.has_value()) {
      ASSERT_NE(got, nullptr) << probe.ToString();
      EXPECT_EQ(*got, *best) << probe.ToString();
    } else {
      EXPECT_EQ(got, nullptr) << probe.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmEquivalenceTest,
                         ::testing::Values(3, 17, 99, 2024));

TEST(LpmTrieTest, ForEachMatchVisitsAllCoveringPrefixesShortestFirst) {
  LpmTrie<int> trie;
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*IpPrefix::Parse("10.1.0.0/16"), 16);
  trie.Insert(*IpPrefix::Parse("10.1.2.0/24"), 24);
  trie.Insert(*IpPrefix::Parse("11.0.0.0/8"), -1);  // not covering

  std::vector<int> seen;
  bool cut = trie.ForEachMatch(IpAddress::V4(10, 1, 2, 3), [&](int v) {
    seen.push_back(v);
    return true;  // keep walking
  });
  EXPECT_FALSE(cut);
  EXPECT_EQ(seen, (std::vector<int>{8, 16, 24}));

  // Off-path address only sees the /8.
  seen.clear();
  trie.ForEachMatch(IpAddress::V4(10, 9, 9, 9), [&](int v) {
    seen.push_back(v);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{8}));

  // No covering prefix: fn never runs, walk not cut short.
  seen.clear();
  EXPECT_FALSE(trie.ForEachMatch(IpAddress::V4(12, 0, 0, 1), [&](int v) {
    seen.push_back(v);
    return true;
  }));
  EXPECT_TRUE(seen.empty());
}

TEST(LpmTrieTest, ForEachMatchEarlyExitReportsCutShort) {
  LpmTrie<int> trie;
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 8);
  trie.Insert(*IpPrefix::Parse("10.1.0.0/16"), 16);
  int visits = 0;
  bool cut = trie.ForEachMatch(IpAddress::V4(10, 1, 0, 1), [&](int) {
    ++visits;
    return false;  // found what we wanted — stop
  });
  EXPECT_TRUE(cut);
  EXPECT_EQ(visits, 1);  // shortest (the /8) visited first, then stop
}

TEST(LpmTrieTest, ForEachMatchIncludesDefaultRoute) {
  LpmTrie<int> trie;
  trie.Insert(IpPrefix::Any(IpFamily::kIpv4), 0);
  trie.Insert(*IpPrefix::Parse("10.0.0.0/8"), 8);
  std::vector<int> seen;
  trie.ForEachMatch(IpAddress::V4(10, 0, 0, 1), [&](int v) {
    seen.push_back(v);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 8}));
}

}  // namespace
}  // namespace tenantnet
