// Tests for security groups and network ACLs.

#include <gtest/gtest.h>

#include "src/vnet/security.h"

namespace tenantnet {
namespace {

FiveTuple Flow(const char* src, const char* dst, uint16_t dport,
               Protocol proto = Protocol::kTcp) {
  FiveTuple t;
  t.src = *IpAddress::Parse(src);
  t.dst = *IpAddress::Parse(dst);
  t.src_port = 44444;
  t.dst_port = dport;
  t.proto = proto;
  return t;
}

TEST(SecurityGroupTest, EmptyGroupDeniesAll) {
  SecurityGroup sg(SecurityGroupId(1), "empty");
  EXPECT_FALSE(sg.Allows(TrafficDirection::kIngress,
                         Flow("10.0.0.1", "10.0.0.2", 443), nullptr));
}

TEST(SecurityGroupTest, PrefixRuleMatchesDirectionally) {
  SecurityGroup sg(SecurityGroupId(1), "web");
  SgRule rule;
  rule.direction = TrafficDirection::kIngress;
  rule.proto = Protocol::kTcp;
  rule.ports = PortRange::Single(443);
  rule.peer = *IpPrefix::Parse("10.0.0.0/16");
  sg.AddRule(rule);

  EXPECT_TRUE(sg.Allows(TrafficDirection::kIngress,
                        Flow("10.0.1.1", "10.9.0.2", 443), nullptr));
  // Wrong port.
  EXPECT_FALSE(sg.Allows(TrafficDirection::kIngress,
                         Flow("10.0.1.1", "10.9.0.2", 80), nullptr));
  // Wrong direction.
  EXPECT_FALSE(sg.Allows(TrafficDirection::kEgress,
                         Flow("10.0.1.1", "10.9.0.2", 443), nullptr));
  // Source outside the peer prefix.
  EXPECT_FALSE(sg.Allows(TrafficDirection::kIngress,
                         Flow("11.0.1.1", "10.9.0.2", 443), nullptr));
  // Wrong protocol.
  EXPECT_FALSE(sg.Allows(TrafficDirection::kIngress,
                         Flow("10.0.1.1", "10.9.0.2", 443, Protocol::kUdp),
                         nullptr));
}

TEST(SecurityGroupTest, EgressRuleMatchesDestination) {
  SecurityGroup sg(SecurityGroupId(1), "db-clients");
  SgRule rule;
  rule.direction = TrafficDirection::kEgress;
  rule.proto = Protocol::kTcp;
  rule.ports = PortRange::Single(5432);
  rule.peer = *IpPrefix::Parse("10.4.0.0/16");
  sg.AddRule(rule);
  EXPECT_TRUE(sg.Allows(TrafficDirection::kEgress,
                        Flow("10.0.0.1", "10.4.3.3", 5432), nullptr));
  EXPECT_FALSE(sg.Allows(TrafficDirection::kEgress,
                         Flow("10.0.0.1", "10.5.3.3", 5432), nullptr));
}

TEST(SecurityGroupTest, GroupReferenceUsesMembershipResolver) {
  SecurityGroup sg(SecurityGroupId(1), "app");
  SgRule rule;
  rule.direction = TrafficDirection::kIngress;
  rule.ports = PortRange::Single(8080);
  rule.peer = SecurityGroupId(7);
  sg.AddRule(rule);

  auto membership = [](SecurityGroupId group, IpAddress ip) {
    return group == SecurityGroupId(7) && ip == IpAddress::V4(10, 0, 0, 5);
  };
  EXPECT_TRUE(sg.Allows(TrafficDirection::kIngress,
                        Flow("10.0.0.5", "10.0.0.9", 8080), membership));
  EXPECT_FALSE(sg.Allows(TrafficDirection::kIngress,
                         Flow("10.0.0.6", "10.0.0.9", 8080), membership));
  // Without a resolver, group references never match.
  EXPECT_FALSE(sg.Allows(TrafficDirection::kIngress,
                         Flow("10.0.0.5", "10.0.0.9", 8080), nullptr));
}

TEST(NetworkAclTest, ImplicitFinalDeny) {
  NetworkAcl acl(NetworkAclId(1), "empty");
  EXPECT_FALSE(acl.Allows(TrafficDirection::kIngress,
                          Flow("1.1.1.1", "2.2.2.2", 80)));
}

TEST(NetworkAclTest, LowestRuleNumberWins) {
  NetworkAcl acl(NetworkAclId(1), "ordered");
  AclEntry deny;
  deny.rule_number = 50;
  deny.allow = false;
  deny.direction = TrafficDirection::kIngress;
  deny.match = FlowMatch::FromSource(*IpPrefix::Parse("10.0.0.0/8"));
  AclEntry allow;
  allow.rule_number = 100;
  allow.allow = true;
  allow.direction = TrafficDirection::kIngress;
  allow.match = FlowMatch::Any();
  // Insert out of order: AddEntry must keep rule-number order.
  acl.AddEntry(allow);
  acl.AddEntry(deny);

  EXPECT_FALSE(acl.Allows(TrafficDirection::kIngress,
                          Flow("10.1.1.1", "2.2.2.2", 80)));
  EXPECT_TRUE(acl.Allows(TrafficDirection::kIngress,
                         Flow("11.1.1.1", "2.2.2.2", 80)));
}

TEST(NetworkAclTest, DirectionsAreIndependent) {
  NetworkAcl acl(NetworkAclId(1), "oneway");
  AclEntry ingress;
  ingress.rule_number = 100;
  ingress.allow = true;
  ingress.direction = TrafficDirection::kIngress;
  ingress.match = FlowMatch::Any();
  acl.AddEntry(ingress);
  EXPECT_TRUE(acl.Allows(TrafficDirection::kIngress,
                         Flow("1.1.1.1", "2.2.2.2", 80)));
  // The egress direction has no entries: deny — the stateless trap.
  EXPECT_FALSE(acl.Allows(TrafficDirection::kEgress,
                          Flow("2.2.2.2", "1.1.1.1", 44444)));
}

TEST(NetworkAclTest, PortScopedEntries) {
  NetworkAcl acl(NetworkAclId(1), "ports");
  AclEntry web;
  web.rule_number = 100;
  web.allow = true;
  web.direction = TrafficDirection::kIngress;
  web.match = FlowMatch::Any();
  web.match.dst_ports = PortRange::Single(443);
  acl.AddEntry(web);
  EXPECT_TRUE(acl.Allows(TrafficDirection::kIngress,
                         Flow("1.1.1.1", "2.2.2.2", 443)));
  EXPECT_FALSE(acl.Allows(TrafficDirection::kIngress,
                          Flow("1.1.1.1", "2.2.2.2", 22)));
}

}  // namespace
}  // namespace tenantnet
