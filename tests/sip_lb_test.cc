// Tests for provider-managed SIP load balancing.

#include <gtest/gtest.h>

#include <map>

#include "src/core/sip_lb.h"

namespace tenantnet {
namespace {

IpAddress Ip(const char* s) { return *IpAddress::Parse(s); }

TEST(SipLbTest, SipLifecycle) {
  SipLoadBalancer lb;
  ASSERT_TRUE(lb.AddSip(Ip("5.128.0.1")).ok());
  EXPECT_EQ(lb.AddSip(Ip("5.128.0.1")).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(lb.IsSip(Ip("5.128.0.1")));
  ASSERT_TRUE(lb.RemoveSip(Ip("5.128.0.1")).ok());
  EXPECT_FALSE(lb.IsSip(Ip("5.128.0.1")));
  EXPECT_EQ(lb.RemoveSip(Ip("5.128.0.1")).code(), StatusCode::kNotFound);
}

TEST(SipLbTest, ResolveRequiresHealthyBackends) {
  SipLoadBalancer lb;
  ASSERT_TRUE(lb.AddSip(Ip("5.128.0.1")).ok());
  EXPECT_EQ(lb.Resolve(Ip("5.128.0.1")).status().code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(lb.Bind(Ip("5.0.0.1"), Ip("5.128.0.1")).ok());
  EXPECT_EQ(*lb.Resolve(Ip("5.128.0.1")), Ip("5.0.0.1"));
  lb.SetHealth(Ip("5.0.0.1"), false);
  EXPECT_FALSE(lb.Resolve(Ip("5.128.0.1")).ok());
  lb.SetHealth(Ip("5.0.0.1"), true);
  EXPECT_TRUE(lb.Resolve(Ip("5.128.0.1")).ok());
}

TEST(SipLbTest, WeightedSpreading) {
  SipLoadBalancer lb;
  ASSERT_TRUE(lb.AddSip(Ip("5.128.0.1")).ok());
  ASSERT_TRUE(lb.Bind(Ip("5.0.0.1"), Ip("5.128.0.1"), 3.0).ok());
  ASSERT_TRUE(lb.Bind(Ip("5.0.0.2"), Ip("5.128.0.1"), 1.0).ok());
  std::map<std::string, int> counts;
  for (int i = 0; i < 4000; ++i) {
    counts[lb.Resolve(Ip("5.128.0.1"))->ToString()]++;
  }
  EXPECT_NEAR(counts["5.0.0.1"], 3000, 120);
  EXPECT_NEAR(counts["5.0.0.2"], 1000, 120);
}

TEST(SipLbTest, RebindAdjustsWeight) {
  SipLoadBalancer lb;
  ASSERT_TRUE(lb.AddSip(Ip("5.128.0.1")).ok());
  ASSERT_TRUE(lb.Bind(Ip("5.0.0.1"), Ip("5.128.0.1"), 1.0).ok());
  ASSERT_TRUE(lb.Bind(Ip("5.0.0.2"), Ip("5.128.0.1"), 1.0).ok());
  // Re-bind with a new weight rather than duplicating the binding.
  ASSERT_TRUE(lb.Bind(Ip("5.0.0.1"), Ip("5.128.0.1"), 9.0).ok());
  auto bindings = lb.Bindings(Ip("5.128.0.1"));
  ASSERT_TRUE(bindings.ok());
  ASSERT_EQ(bindings->size(), 2u);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5000; ++i) {
    counts[lb.Resolve(Ip("5.128.0.1"))->ToString()]++;
  }
  EXPECT_NEAR(counts["5.0.0.1"], 4500, 150);
}

TEST(SipLbTest, InvalidBindings) {
  SipLoadBalancer lb;
  ASSERT_TRUE(lb.AddSip(Ip("5.128.0.1")).ok());
  EXPECT_EQ(lb.Bind(Ip("5.0.0.1"), Ip("9.9.9.9")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(lb.Bind(Ip("5.0.0.1"), Ip("5.128.0.1"), 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(lb.Unbind(Ip("5.0.0.1"), Ip("5.128.0.1")).code(),
            StatusCode::kNotFound);
}

TEST(SipLbTest, UnbindEverywhereClearsAllSips) {
  SipLoadBalancer lb;
  ASSERT_TRUE(lb.AddSip(Ip("5.128.0.1")).ok());
  ASSERT_TRUE(lb.AddSip(Ip("5.128.0.2")).ok());
  ASSERT_TRUE(lb.Bind(Ip("5.0.0.1"), Ip("5.128.0.1")).ok());
  ASSERT_TRUE(lb.Bind(Ip("5.0.0.1"), Ip("5.128.0.2")).ok());
  lb.UnbindEverywhere(Ip("5.0.0.1"));
  EXPECT_TRUE(lb.Bindings(Ip("5.128.0.1"))->empty());
  EXPECT_TRUE(lb.Bindings(Ip("5.128.0.2"))->empty());
}

TEST(SipLbTest, FailoverKeepsServing) {
  // The provider-managed failover story of E8a: kill one of three backends
  // and every subsequent resolution lands on a survivor.
  SipLoadBalancer lb;
  ASSERT_TRUE(lb.AddSip(Ip("5.128.0.1")).ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(lb.Bind(IpAddress::V4(5, 0, 0, static_cast<uint8_t>(i)),
                        Ip("5.128.0.1")).ok());
  }
  lb.SetHealth(Ip("5.0.0.2"), false);
  for (int i = 0; i < 200; ++i) {
    IpAddress backend = *lb.Resolve(Ip("5.128.0.1"));
    EXPECT_NE(backend, Ip("5.0.0.2"));
  }
}

}  // namespace
}  // namespace tenantnet
