// Tests for FiveTuple / FlowMatch / PortRange.

#include <gtest/gtest.h>

#include "src/net/flow.h"

namespace tenantnet {
namespace {

FiveTuple MakeFlow(const char* src, const char* dst, uint16_t sport,
                   uint16_t dport, Protocol proto = Protocol::kTcp) {
  FiveTuple t;
  t.src = *IpAddress::Parse(src);
  t.dst = *IpAddress::Parse(dst);
  t.src_port = sport;
  t.dst_port = dport;
  t.proto = proto;
  return t;
}

TEST(PortRangeTest, Semantics) {
  EXPECT_TRUE(PortRange::Any().Contains(0));
  EXPECT_TRUE(PortRange::Any().Contains(65535));
  EXPECT_TRUE(PortRange::Any().IsAny());
  PortRange r{100, 200};
  EXPECT_TRUE(r.Contains(100));
  EXPECT_TRUE(r.Contains(200));
  EXPECT_FALSE(r.Contains(99));
  EXPECT_FALSE(r.Contains(201));
  EXPECT_FALSE(r.IsAny());
  EXPECT_TRUE(PortRange::Single(443).Contains(443));
  EXPECT_FALSE(PortRange::Single(443).Contains(444));
}

TEST(FiveTupleTest, EqualityAndToString) {
  FiveTuple a = MakeFlow("10.0.0.1", "10.0.0.2", 1234, 443);
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 80;
  EXPECT_NE(a, b);
  EXPECT_EQ(a.ToString(), "tcp 10.0.0.1:1234 -> 10.0.0.2:443");
}

TEST(FiveTupleTest, HashDiffersAcrossFields) {
  std::hash<FiveTuple> h;
  FiveTuple a = MakeFlow("10.0.0.1", "10.0.0.2", 1234, 443);
  FiveTuple b = MakeFlow("10.0.0.1", "10.0.0.2", 1234, 444);
  EXPECT_NE(h(a), h(b));
}

TEST(FlowMatchTest, AnyMatchesFamilyOnly) {
  FlowMatch any = FlowMatch::Any(IpFamily::kIpv4);
  EXPECT_TRUE(any.Matches(MakeFlow("1.2.3.4", "5.6.7.8", 1, 2)));
  EXPECT_TRUE(
      any.Matches(MakeFlow("1.2.3.4", "5.6.7.8", 1, 2, Protocol::kUdp)));
}

TEST(FlowMatchTest, SourcePrefixFilters) {
  FlowMatch m = FlowMatch::FromSource(*IpPrefix::Parse("10.0.0.0/16"));
  EXPECT_TRUE(m.Matches(MakeFlow("10.0.9.9", "99.0.0.1", 5, 443)));
  EXPECT_FALSE(m.Matches(MakeFlow("10.1.0.1", "99.0.0.1", 5, 443)));
}

TEST(FlowMatchTest, ProtocolAndPortFilters) {
  FlowMatch m = FlowMatch::Any();
  m.proto = Protocol::kTcp;
  m.dst_ports = PortRange::Single(443);
  EXPECT_TRUE(m.Matches(MakeFlow("1.1.1.1", "2.2.2.2", 9, 443)));
  EXPECT_FALSE(m.Matches(MakeFlow("1.1.1.1", "2.2.2.2", 9, 80)));
  EXPECT_FALSE(
      m.Matches(MakeFlow("1.1.1.1", "2.2.2.2", 9, 443, Protocol::kUdp)));
}

TEST(FlowMatchTest, DstPrefixAndSrcPorts) {
  FlowMatch m = FlowMatch::Any();
  m.dst_prefix = *IpPrefix::Parse("2.2.0.0/16");
  m.src_ports = PortRange{1000, 2000};
  EXPECT_TRUE(m.Matches(MakeFlow("1.1.1.1", "2.2.3.4", 1500, 80)));
  EXPECT_FALSE(m.Matches(MakeFlow("1.1.1.1", "2.3.3.4", 1500, 80)));
  EXPECT_FALSE(m.Matches(MakeFlow("1.1.1.1", "2.2.3.4", 999, 80)));
}

TEST(ProtocolTest, Names) {
  EXPECT_EQ(ProtocolName(Protocol::kTcp), "tcp");
  EXPECT_EQ(ProtocolName(Protocol::kUdp), "udp");
  EXPECT_EQ(ProtocolName(Protocol::kIcmp), "icmp");
  EXPECT_EQ(ProtocolName(Protocol::kAny), "any");
}

}  // namespace
}  // namespace tenantnet
