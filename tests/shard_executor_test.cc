// Differential determinism tests for ShardExecutor.
//
// The executor's contract is byte-identical results for any thread count:
// shard assignment, per-shard event order, outbox drain order, and the
// epoch schedule depend only on the topology and the call sequence. These
// tests drive three scenarios (storm, churn, migration) over a
// multi-component topology at 1/2/4/8 threads and compare replay
// fingerprints — a hash of the full observable callback stream plus every
// aggregate counter printed at maximum precision — against the 1-thread
// run. A fingerprint mismatch of even one bit fails.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/shard_executor.h"
#include "src/sim/topology.h"

namespace tenantnet {
namespace {

constexpr int kIslands = 8;
constexpr int kNodesPerIsland = 5;  // 4 forward links per island chain

// Disjoint island chains: island i is n0-n1-...-n4 with duplex links.
// Returns the forward link chain of each island.
Topology BuildIslands(std::vector<std::vector<LinkId>>* island_links) {
  Topology topo;
  island_links->clear();
  for (int island = 0; island < kIslands; ++island) {
    std::vector<NodeId> nodes;
    for (int n = 0; n < kNodesPerIsland; ++n) {
      NodeInfo info;
      info.name = "i" + std::to_string(island) + "n" + std::to_string(n);
      info.domain = "island" + std::to_string(island);
      nodes.push_back(topo.AddNode(info));
    }
    std::vector<LinkId> forward;
    for (int n = 0; n + 1 < kNodesPerIsland; ++n) {
      LinkInfo link;
      link.src = nodes[n];
      link.dst = nodes[n + 1];
      link.capacity_bps = 10e9;
      link.delay = SimDuration::Millis(1);
      forward.push_back(topo.AddDuplexLink(link).first);
    }
    island_links->push_back(std::move(forward));
  }
  return topo;
}

// FNV-1a over 64-bit words; doubles are hashed by bit pattern, so any
// floating-point divergence (even in the last ulp) changes the hash.
class EventLog {
 public:
  void Mix(uint64_t word) {
    hash_ ^= word;
    hash_ *= 1099511628211ull;
    ++events_;
  }
  void Mix(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
  void MixEvent(uint64_t tag, FlowId id, SimTime when) {
    Mix(tag);
    Mix(id.value());
    Mix(static_cast<uint64_t>(when.nanos()));
  }
  uint64_t hash() const { return hash_; }
  uint64_t events() const { return events_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
  uint64_t events_ = 0;
};

enum EventTag : uint64_t {
  kComplete = 1,
  kAbort = 2,
  kCancelStatus = 3,
  kProbe = 4,
  kFault = 5,
};

struct Driver {
  EventQueue control;
  Topology topo;
  std::vector<std::vector<LinkId>> islands;
  std::unique_ptr<ShardExecutor> exec;
  EventLog log;
  std::vector<FlowId> live;  // flows started and not yet seen finishing

  explicit Driver(int num_threads) {
    topo = BuildIslands(&islands);
    ShardExecutor::Options opts;
    opts.num_threads = num_threads;
    opts.epoch_quantum = SimDuration::Millis(5);
    exec = std::make_unique<ShardExecutor>(control, topo, opts);
  }

  // A sub-path of `island`'s forward chain.
  std::vector<LinkId> Path(Rng& rng, int island) {
    const std::vector<LinkId>& chain = islands[island];
    size_t first = rng.NextU64(chain.size());
    size_t last = first + rng.NextU64(chain.size() - first);
    return std::vector<LinkId>(chain.begin() + first,
                               chain.begin() + last + 1);
  }

  FlowId StartLogged(std::vector<LinkId> path, double bytes, double weight,
                     bool with_abort) {
    FlowControlSurface::AbortFn on_abort;
    if (with_abort) {
      on_abort = [this](FlowId id, SimTime when) {
        log.MixEvent(kAbort, id, when);
      };
    }
    FlowId id = exec->StartFlow(
        std::move(path), bytes,
        [this](FlowId fid, SimTime when) { log.MixEvent(kComplete, fid, when); },
        weight, std::numeric_limits<double>::infinity(), std::move(on_abort));
    live.push_back(id);
    return id;
  }

  void Probe() {
    log.Mix(kProbe);
    log.Mix(static_cast<uint64_t>(exec->active_flow_count()));
    log.Mix(exec->total_bytes_delivered());
    log.Mix(static_cast<uint64_t>(exec->stalled_flow_count()));
    log.Mix(exec->bytes_blackholed());
  }

  std::string Fingerprint() {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "events=%llu hash=%016llx active=%llu bytes=%.17g aborted=%llu "
        "blackholed=%llu bytes_bh=%.17g stalled=%llu reallocs=%llu "
        "resched=%llu epochs=%llu deferred=%llu",
        static_cast<unsigned long long>(log.events()),
        static_cast<unsigned long long>(log.hash()),
        static_cast<unsigned long long>(exec->active_flow_count()),
        exec->total_bytes_delivered(),
        static_cast<unsigned long long>(exec->flows_aborted()),
        static_cast<unsigned long long>(exec->flows_blackholed()),
        exec->bytes_blackholed(),
        static_cast<unsigned long long>(exec->stalled_flow_count()),
        static_cast<unsigned long long>(exec->reallocation_count()),
        static_cast<unsigned long long>(exec->flows_rescheduled()),
        static_cast<unsigned long long>(exec->epochs_run()),
        static_cast<unsigned long long>(exec->callbacks_deferred()));
    return buf;
  }
};

// Storm: a burst of finite flows racing link faults. Half the flows carry
// abort handlers (killed by faults), half blackhole and recover.
std::string RunStorm(uint64_t seed, int num_threads) {
  Driver d(num_threads);
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    double at_ms = rng.NextDouble(0.0, 2000.0);
    int island = static_cast<int>(rng.NextU64(kIslands));
    auto path = d.Path(rng, island);
    double bytes = rng.NextDouble(1e5, 5e7);
    double weight = rng.NextDouble(0.5, 4.0);
    bool with_abort = rng.NextBool(0.5);
    d.control.ScheduleAt(
        SimTime::FromSeconds(at_ms / 1e3),
        [&d, path, bytes, weight, with_abort]() mutable {
          d.StartLogged(std::move(path), bytes, weight, with_abort);
        });
  }
  for (int i = 0; i < 40; ++i) {
    double down_ms = rng.NextDouble(100.0, 1500.0);
    double up_ms = down_ms + rng.NextDouble(20.0, 400.0);
    int island = static_cast<int>(rng.NextU64(kIslands));
    LinkId link =
        d.islands[island][rng.NextU64(d.islands[island].size())];
    d.control.ScheduleAt(SimTime::FromSeconds(down_ms / 1e3), [&d, link] {
      d.log.Mix(kFault);
      d.log.Mix(link.value());
      (void)d.exec->SetLinkUp(link, false);
    });
    d.control.ScheduleAt(SimTime::FromSeconds(up_ms / 1e3), [&d, link] {
      (void)d.exec->SetLinkUp(link, true);
    });
  }
  for (int ms = 250; ms <= 4000; ms += 250) {
    d.control.ScheduleAt(SimTime::FromSeconds(ms / 1e3), [&d] { d.Probe(); });
  }
  d.exec->RunUntil(SimTime::FromSeconds(60.0));
  return d.Fingerprint();
}

// Churn: persistent + finite flows with random cancels and cap changes.
std::string RunChurn(uint64_t seed, int num_threads) {
  Driver d(num_threads);
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    double at_ms = rng.NextDouble(0.0, 1000.0);
    int island = static_cast<int>(rng.NextU64(kIslands));
    auto path = d.Path(rng, island);
    bool persistent = rng.NextBool(0.4);
    double bytes = persistent ? std::numeric_limits<double>::infinity()
                              : rng.NextDouble(1e6, 1e8);
    double weight = rng.NextDouble(0.5, 2.0);
    d.control.ScheduleAt(SimTime::FromSeconds(at_ms / 1e3),
                         [&d, path, bytes, weight]() mutable {
                           d.StartLogged(std::move(path), bytes, weight,
                                         /*with_abort=*/false);
                         });
  }
  for (int i = 0; i < 120; ++i) {
    double at_ms = rng.NextDouble(1000.0, 3000.0);
    uint64_t pick = rng.NextU64();
    bool cancel = rng.NextBool(0.5);
    double cap = rng.NextDouble(1e8, 5e9);
    d.control.ScheduleAt(
        SimTime::FromSeconds(at_ms / 1e3), [&d, pick, cancel, cap] {
          if (d.live.empty()) {
            return;
          }
          FlowId target = d.live[pick % d.live.size()];
          if (cancel) {
            Status st = d.exec->CancelFlow(target);
            d.log.MixEvent(kCancelStatus, target,
                           d.control.now());
            d.log.Mix(static_cast<uint64_t>(st.ok() ? 1 : 0));
          } else {
            (void)d.exec->SetRateCap(target, cap);
          }
        });
  }
  for (int ms = 500; ms <= 5000; ms += 500) {
    d.control.ScheduleAt(SimTime::FromSeconds(ms / 1e3), [&d] { d.Probe(); });
  }
  d.exec->RunUntil(SimTime::FromSeconds(60.0));
  return d.Fingerprint();
}

// Migration: persistent flows hop island to island (cancel + restart on the
// next island), exercising cross-shard flow lifecycle on one global id
// space while each hop lands on a different shard.
std::string RunMigration(uint64_t seed, int num_threads) {
  Driver d(num_threads);
  Rng rng(seed);
  struct Hop {
    double at_ms;
    int island;
    double weight;
    uint64_t path_salt;
  };
  // 40 tenants × 6 hops each.
  for (int tenant = 0; tenant < 40; ++tenant) {
    int island = static_cast<int>(rng.NextU64(kIslands));
    double weight = rng.NextDouble(0.5, 3.0);
    auto slot = std::make_shared<FlowId>();
    double at_ms = rng.NextDouble(0.0, 200.0);
    for (int hop = 0; hop < 6; ++hop) {
      Rng hop_rng(rng.NextU64());
      auto path = d.Path(hop_rng, island);
      d.control.ScheduleAt(
          SimTime::FromSeconds(at_ms / 1e3), [&d, slot, path, weight] {
            if (slot->valid()) {
              Status st = d.exec->CancelFlow(*slot);
              d.log.MixEvent(kCancelStatus, *slot, d.control.now());
              d.log.Mix(static_cast<uint64_t>(st.ok() ? 1 : 0));
            }
            *slot = d.exec->StartPersistentFlow(path, weight);
            d.live.push_back(*slot);
          });
      island = (island + 1) % kIslands;
      at_ms += rng.NextDouble(100.0, 600.0);
    }
  }
  // Rate probes between hops: CurrentRate feeds the hash, so the max-min
  // allocation itself must match bit-for-bit across thread counts.
  for (int ms = 100; ms <= 4000; ms += 100) {
    uint64_t pick = rng.NextU64();
    d.control.ScheduleAt(SimTime::FromSeconds(ms / 1e3), [&d, pick] {
      d.Probe();
      if (!d.live.empty()) {
        FlowId target = d.live[pick % d.live.size()];
        auto rate = d.exec->CurrentRate(target);
        d.log.Mix(rate.ok() ? *rate : -1.0);
      }
    });
  }
  d.exec->RunUntil(SimTime::FromSeconds(30.0));
  return d.Fingerprint();
}

using ScenarioFn = std::string (*)(uint64_t, int);

struct Scenario {
  const char* name;
  ScenarioFn run;
};

constexpr Scenario kScenarios[] = {
    {"storm", RunStorm},
    {"churn", RunChurn},
    {"migration", RunMigration},
};

TEST(ShardExecutorDifferentialTest, ThreadCountNeverChangesTheFingerprint) {
  for (const Scenario& scenario : kScenarios) {
    for (uint64_t seed : {11ull, 42ull, 1337ull}) {
      SCOPED_TRACE(std::string(scenario.name) + " seed=" +
                   std::to_string(seed));
      std::string base = scenario.run(seed, 1);
      for (int threads : {2, 4, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(base, scenario.run(seed, threads));
      }
    }
  }
}

TEST(ShardExecutorDifferentialTest, RerunningTheSameConfigIsStable) {
  for (const Scenario& scenario : kScenarios) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(scenario.name) + " threads=" +
                   std::to_string(threads));
      EXPECT_EQ(scenario.run(7, threads), scenario.run(7, threads));
    }
  }
}

TEST(ShardExecutorTest, ComponentsArePartitionedDeterministically) {
  std::vector<std::vector<LinkId>> islands;
  Topology topo = BuildIslands(&islands);
  TopologyComponents comp = ComputeTopologyComponents(topo);
  EXPECT_EQ(comp.count, static_cast<uint32_t>(kIslands));
  // Component numbering follows ascending smallest node index: island i's
  // nodes were added i-th, so its component number is exactly i.
  for (int island = 0; island < kIslands; ++island) {
    for (int n = 0; n < kNodesPerIsland; ++n) {
      EXPECT_EQ(comp.node_component[island * kNodesPerIsland + n],
                static_cast<uint32_t>(island));
    }
    for (LinkId link : islands[island]) {
      EXPECT_EQ(comp.link_component[Topology::DenseLinkIndex(link)],
                static_cast<uint32_t>(island));
    }
  }
}

TEST(ShardExecutorTest, SingleFlowBehavesLikeFlowSim) {
  EventQueue control;
  std::vector<std::vector<LinkId>> islands;
  Topology topo = BuildIslands(&islands);
  ShardExecutor::Options opts;
  opts.num_threads = 4;
  ShardExecutor exec(control, topo, opts);

  // 10 Gb/s chain, 1 GB transfer => 0.8 s.
  SimTime done = SimTime::Epoch();
  FlowId id = exec.StartFlow(
      {islands[0][0]}, 1e9,
      [&done](FlowId, SimTime when) { done = when; });
  ASSERT_NE(exec.FindFlow(id), nullptr);
  auto rate = exec.CurrentRate(id);
  ASSERT_TRUE(rate.ok());
  EXPECT_DOUBLE_EQ(*rate, 10e9);
  exec.RunUntil(SimTime::FromSeconds(10));
  EXPECT_DOUBLE_EQ(done.ToSeconds(), 0.8);
  EXPECT_EQ(exec.FindFlow(id), nullptr);
  EXPECT_DOUBLE_EQ(exec.total_bytes_delivered(), 1e9);
  EXPECT_EQ(exec.active_flow_count(), 0u);
}

TEST(ShardExecutorTest, FaultsLandOnTheOwningShard) {
  EventQueue control;
  std::vector<std::vector<LinkId>> islands;
  Topology topo = BuildIslands(&islands);
  ShardExecutor::Options opts;
  opts.num_threads = 2;
  ShardExecutor exec(control, topo, opts);

  bool aborted = false;
  exec.StartFlow(
      {islands[2][0]}, 1e12, [](FlowId, SimTime) {}, 1.0,
      std::numeric_limits<double>::infinity(),
      [&aborted](FlowId, SimTime) { aborted = true; });
  FlowId stalls = exec.StartFlow({islands[3][0]}, 1e12, [](FlowId, SimTime) {});

  control.ScheduleAt(SimTime::FromSeconds(1), [&exec, &islands] {
    (void)exec.SetLinkUp(islands[2][0], false);
    (void)exec.SetLinkUp(islands[3][0], false);
  });
  exec.RunUntil(SimTime::FromSeconds(2));
  EXPECT_TRUE(aborted);
  EXPECT_EQ(exec.flows_aborted(), 1u);
  EXPECT_EQ(exec.flows_blackholed(), 1u);
  EXPECT_EQ(exec.stalled_flow_count(), 1u);
  EXPECT_FALSE(exec.IsLinkUp(islands[2][0]));

  control.ScheduleAt(SimTime::FromSeconds(3), [&exec, &islands] {
    (void)exec.SetLinkUp(islands[3][0], true);
  });
  exec.RunUntil(SimTime::FromSeconds(4));
  EXPECT_EQ(exec.stalled_flow_count(), 0u);
  auto rate = exec.CurrentRate(stalls);
  ASSERT_TRUE(rate.ok());
  EXPECT_GT(*rate, 0.0);
}

// Regression: RunAll() (an infinite deadline) must terminate once every
// shard queue and the control queue are drained — the epoch loop's deadline
// comparison alone never fires when both sides are Infinite.
TEST(ShardExecutorTest, RunAllTerminatesWhenQueuesDrain) {
  EventQueue control;
  std::vector<std::vector<LinkId>> islands;
  Topology topo = BuildIslands(&islands);
  ShardExecutor::Options opts;
  opts.num_threads = 4;
  ShardExecutor exec(control, topo, opts);

  SimTime done = SimTime::Epoch();
  exec.StartFlow({islands[1][0]}, 1e9,
                 [&done](FlowId, SimTime when) { done = when; });
  control.ScheduleAt(SimTime::FromSeconds(5), [] {});
  exec.RunAll();
  EXPECT_DOUBLE_EQ(done.ToSeconds(), 0.8);
  EXPECT_EQ(exec.active_flow_count(), 0u);
  EXPECT_EQ(exec.now().ToSeconds(), 5.0);
  // And again with nothing pending at all.
  EXPECT_EQ(exec.RunAll(), 0u);
}

}  // namespace
}  // namespace tenantnet
