// Differential determinism tests for ShardExecutor.
//
// The executor's contract is byte-identical results for any thread count:
// shard assignment, per-shard event order, outbox drain order, and the
// epoch schedule depend only on the topology and the call sequence. These
// tests drive three scenarios (storm, churn, migration) over a
// multi-component topology at 1/2/4/8 threads and compare replay
// fingerprints — a hash of the full observable callback stream plus every
// aggregate counter printed at maximum precision — against the 1-thread
// run. A fingerprint mismatch of even one bit fails.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <algorithm>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/flow_sim.h"
#include "src/sim/shard_executor.h"
#include "src/sim/topology.h"

namespace tenantnet {
namespace {

constexpr int kIslands = 8;
constexpr int kNodesPerIsland = 5;  // 4 forward links per island chain

// Disjoint island chains: island i is n0-n1-...-n4 with duplex links.
// Returns the forward link chain of each island.
Topology BuildIslands(std::vector<std::vector<LinkId>>* island_links) {
  Topology topo;
  island_links->clear();
  for (int island = 0; island < kIslands; ++island) {
    std::vector<NodeId> nodes;
    for (int n = 0; n < kNodesPerIsland; ++n) {
      NodeInfo info;
      info.name = "i" + std::to_string(island) + "n" + std::to_string(n);
      info.domain = "island" + std::to_string(island);
      nodes.push_back(topo.AddNode(info));
    }
    std::vector<LinkId> forward;
    for (int n = 0; n + 1 < kNodesPerIsland; ++n) {
      LinkInfo link;
      link.src = nodes[n];
      link.dst = nodes[n + 1];
      link.capacity_bps = 10e9;
      link.delay = SimDuration::Millis(1);
      forward.push_back(topo.AddDuplexLink(link).first);
    }
    island_links->push_back(std::move(forward));
  }
  return topo;
}

// FNV-1a over 64-bit words; doubles are hashed by bit pattern, so any
// floating-point divergence (even in the last ulp) changes the hash.
class EventLog {
 public:
  void Mix(uint64_t word) {
    hash_ ^= word;
    hash_ *= 1099511628211ull;
    ++events_;
  }
  void Mix(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
  void MixEvent(uint64_t tag, FlowId id, SimTime when) {
    Mix(tag);
    Mix(id.value());
    Mix(static_cast<uint64_t>(when.nanos()));
  }
  uint64_t hash() const { return hash_; }
  uint64_t events() const { return events_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
  uint64_t events_ = 0;
};

enum EventTag : uint64_t {
  kComplete = 1,
  kAbort = 2,
  kCancelStatus = 3,
  kProbe = 4,
  kFault = 5,
};

struct Driver {
  EventQueue control;
  Topology topo;
  std::vector<std::vector<LinkId>> islands;
  std::unique_ptr<ShardExecutor> exec;
  EventLog log;
  std::vector<FlowId> live;  // flows started and not yet seen finishing

  explicit Driver(int num_threads) {
    topo = BuildIslands(&islands);
    ShardExecutor::Options opts;
    opts.num_threads = num_threads;
    opts.epoch_quantum = SimDuration::Millis(5);
    exec = std::make_unique<ShardExecutor>(control, topo, opts);
  }

  // A sub-path of `island`'s forward chain.
  std::vector<LinkId> Path(Rng& rng, int island) {
    const std::vector<LinkId>& chain = islands[island];
    size_t first = rng.NextU64(chain.size());
    size_t last = first + rng.NextU64(chain.size() - first);
    return std::vector<LinkId>(chain.begin() + first,
                               chain.begin() + last + 1);
  }

  FlowId StartLogged(std::vector<LinkId> path, double bytes, double weight,
                     bool with_abort) {
    FlowControlSurface::AbortFn on_abort;
    if (with_abort) {
      on_abort = [this](FlowId id, SimTime when) {
        log.MixEvent(kAbort, id, when);
      };
    }
    FlowId id = exec->StartFlow(
        std::move(path), bytes,
        [this](FlowId fid, SimTime when) { log.MixEvent(kComplete, fid, when); },
        weight, std::numeric_limits<double>::infinity(), std::move(on_abort));
    live.push_back(id);
    return id;
  }

  void Probe() {
    log.Mix(kProbe);
    log.Mix(static_cast<uint64_t>(exec->active_flow_count()));
    log.Mix(exec->total_bytes_delivered());
    log.Mix(static_cast<uint64_t>(exec->stalled_flow_count()));
    log.Mix(exec->bytes_blackholed());
  }

  std::string Fingerprint() {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "events=%llu hash=%016llx active=%llu bytes=%.17g aborted=%llu "
        "blackholed=%llu bytes_bh=%.17g stalled=%llu reallocs=%llu "
        "resched=%llu epochs=%llu deferred=%llu",
        static_cast<unsigned long long>(log.events()),
        static_cast<unsigned long long>(log.hash()),
        static_cast<unsigned long long>(exec->active_flow_count()),
        exec->total_bytes_delivered(),
        static_cast<unsigned long long>(exec->flows_aborted()),
        static_cast<unsigned long long>(exec->flows_blackholed()),
        exec->bytes_blackholed(),
        static_cast<unsigned long long>(exec->stalled_flow_count()),
        static_cast<unsigned long long>(exec->reallocation_count()),
        static_cast<unsigned long long>(exec->flows_rescheduled()),
        static_cast<unsigned long long>(exec->epochs_run()),
        static_cast<unsigned long long>(exec->callbacks_deferred()));
    return buf;
  }
};

// Storm: a burst of finite flows racing link faults. Half the flows carry
// abort handlers (killed by faults), half blackhole and recover.
std::string RunStorm(uint64_t seed, int num_threads) {
  Driver d(num_threads);
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    double at_ms = rng.NextDouble(0.0, 2000.0);
    int island = static_cast<int>(rng.NextU64(kIslands));
    auto path = d.Path(rng, island);
    double bytes = rng.NextDouble(1e5, 5e7);
    double weight = rng.NextDouble(0.5, 4.0);
    bool with_abort = rng.NextBool(0.5);
    d.control.ScheduleAt(
        SimTime::FromSeconds(at_ms / 1e3),
        [&d, path, bytes, weight, with_abort]() mutable {
          d.StartLogged(std::move(path), bytes, weight, with_abort);
        });
  }
  for (int i = 0; i < 40; ++i) {
    double down_ms = rng.NextDouble(100.0, 1500.0);
    double up_ms = down_ms + rng.NextDouble(20.0, 400.0);
    int island = static_cast<int>(rng.NextU64(kIslands));
    LinkId link =
        d.islands[island][rng.NextU64(d.islands[island].size())];
    d.control.ScheduleAt(SimTime::FromSeconds(down_ms / 1e3), [&d, link] {
      d.log.Mix(kFault);
      d.log.Mix(link.value());
      (void)d.exec->SetLinkUp(link, false);
    });
    d.control.ScheduleAt(SimTime::FromSeconds(up_ms / 1e3), [&d, link] {
      (void)d.exec->SetLinkUp(link, true);
    });
  }
  for (int ms = 250; ms <= 4000; ms += 250) {
    d.control.ScheduleAt(SimTime::FromSeconds(ms / 1e3), [&d] { d.Probe(); });
  }
  d.exec->RunUntil(SimTime::FromSeconds(60.0));
  return d.Fingerprint();
}

// Churn: persistent + finite flows with random cancels and cap changes.
std::string RunChurn(uint64_t seed, int num_threads) {
  Driver d(num_threads);
  Rng rng(seed);
  for (int i = 0; i < 150; ++i) {
    double at_ms = rng.NextDouble(0.0, 1000.0);
    int island = static_cast<int>(rng.NextU64(kIslands));
    auto path = d.Path(rng, island);
    bool persistent = rng.NextBool(0.4);
    double bytes = persistent ? std::numeric_limits<double>::infinity()
                              : rng.NextDouble(1e6, 1e8);
    double weight = rng.NextDouble(0.5, 2.0);
    d.control.ScheduleAt(SimTime::FromSeconds(at_ms / 1e3),
                         [&d, path, bytes, weight]() mutable {
                           d.StartLogged(std::move(path), bytes, weight,
                                         /*with_abort=*/false);
                         });
  }
  for (int i = 0; i < 120; ++i) {
    double at_ms = rng.NextDouble(1000.0, 3000.0);
    uint64_t pick = rng.NextU64();
    bool cancel = rng.NextBool(0.5);
    double cap = rng.NextDouble(1e8, 5e9);
    d.control.ScheduleAt(
        SimTime::FromSeconds(at_ms / 1e3), [&d, pick, cancel, cap] {
          if (d.live.empty()) {
            return;
          }
          FlowId target = d.live[pick % d.live.size()];
          if (cancel) {
            Status st = d.exec->CancelFlow(target);
            d.log.MixEvent(kCancelStatus, target,
                           d.control.now());
            d.log.Mix(static_cast<uint64_t>(st.ok() ? 1 : 0));
          } else {
            (void)d.exec->SetRateCap(target, cap);
          }
        });
  }
  for (int ms = 500; ms <= 5000; ms += 500) {
    d.control.ScheduleAt(SimTime::FromSeconds(ms / 1e3), [&d] { d.Probe(); });
  }
  d.exec->RunUntil(SimTime::FromSeconds(60.0));
  return d.Fingerprint();
}

// Migration: persistent flows hop island to island (cancel + restart on the
// next island), exercising cross-shard flow lifecycle on one global id
// space while each hop lands on a different shard.
std::string RunMigration(uint64_t seed, int num_threads) {
  Driver d(num_threads);
  Rng rng(seed);
  struct Hop {
    double at_ms;
    int island;
    double weight;
    uint64_t path_salt;
  };
  // 40 tenants × 6 hops each.
  for (int tenant = 0; tenant < 40; ++tenant) {
    int island = static_cast<int>(rng.NextU64(kIslands));
    double weight = rng.NextDouble(0.5, 3.0);
    auto slot = std::make_shared<FlowId>();
    double at_ms = rng.NextDouble(0.0, 200.0);
    for (int hop = 0; hop < 6; ++hop) {
      Rng hop_rng(rng.NextU64());
      auto path = d.Path(hop_rng, island);
      d.control.ScheduleAt(
          SimTime::FromSeconds(at_ms / 1e3), [&d, slot, path, weight] {
            if (slot->valid()) {
              Status st = d.exec->CancelFlow(*slot);
              d.log.MixEvent(kCancelStatus, *slot, d.control.now());
              d.log.Mix(static_cast<uint64_t>(st.ok() ? 1 : 0));
            }
            *slot = d.exec->StartPersistentFlow(path, weight);
            d.live.push_back(*slot);
          });
      island = (island + 1) % kIslands;
      at_ms += rng.NextDouble(100.0, 600.0);
    }
  }
  // Rate probes between hops: CurrentRate feeds the hash, so the max-min
  // allocation itself must match bit-for-bit across thread counts.
  for (int ms = 100; ms <= 4000; ms += 100) {
    uint64_t pick = rng.NextU64();
    d.control.ScheduleAt(SimTime::FromSeconds(ms / 1e3), [&d, pick] {
      d.Probe();
      if (!d.live.empty()) {
        FlowId target = d.live[pick % d.live.size()];
        auto rate = d.exec->CurrentRate(target);
        d.log.Mix(rate.ok() ? *rate : -1.0);
      }
    });
  }
  d.exec->RunUntil(SimTime::FromSeconds(30.0));
  return d.Fingerprint();
}

using ScenarioFn = std::string (*)(uint64_t, int);

struct Scenario {
  const char* name;
  ScenarioFn run;
};

constexpr Scenario kScenarios[] = {
    {"storm", RunStorm},
    {"churn", RunChurn},
    {"migration", RunMigration},
};

TEST(ShardExecutorDifferentialTest, ThreadCountNeverChangesTheFingerprint) {
  for (const Scenario& scenario : kScenarios) {
    for (uint64_t seed : {11ull, 42ull, 1337ull}) {
      SCOPED_TRACE(std::string(scenario.name) + " seed=" +
                   std::to_string(seed));
      std::string base = scenario.run(seed, 1);
      for (int threads : {2, 4, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(base, scenario.run(seed, threads));
      }
    }
  }
}

TEST(ShardExecutorDifferentialTest, RerunningTheSameConfigIsStable) {
  for (const Scenario& scenario : kScenarios) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(scenario.name) + " threads=" +
                   std::to_string(threads));
      EXPECT_EQ(scenario.run(7, threads), scenario.run(7, threads));
    }
  }
}

TEST(ShardExecutorTest, ComponentsArePartitionedDeterministically) {
  std::vector<std::vector<LinkId>> islands;
  Topology topo = BuildIslands(&islands);
  TopologyComponents comp = ComputeTopologyComponents(topo);
  EXPECT_EQ(comp.count, static_cast<uint32_t>(kIslands));
  // Component numbering follows ascending smallest node index: island i's
  // nodes were added i-th, so its component number is exactly i.
  for (int island = 0; island < kIslands; ++island) {
    for (int n = 0; n < kNodesPerIsland; ++n) {
      EXPECT_EQ(comp.node_component[island * kNodesPerIsland + n],
                static_cast<uint32_t>(island));
    }
    for (LinkId link : islands[island]) {
      EXPECT_EQ(comp.link_component[Topology::DenseLinkIndex(link)],
                static_cast<uint32_t>(island));
    }
  }
}

TEST(ShardExecutorTest, SingleFlowBehavesLikeFlowSim) {
  EventQueue control;
  std::vector<std::vector<LinkId>> islands;
  Topology topo = BuildIslands(&islands);
  ShardExecutor::Options opts;
  opts.num_threads = 4;
  ShardExecutor exec(control, topo, opts);

  // 10 Gb/s chain, 1 GB transfer => 0.8 s.
  SimTime done = SimTime::Epoch();
  FlowId id = exec.StartFlow(
      {islands[0][0]}, 1e9,
      [&done](FlowId, SimTime when) { done = when; });
  ASSERT_NE(exec.FindFlow(id), nullptr);
  auto rate = exec.CurrentRate(id);
  ASSERT_TRUE(rate.ok());
  EXPECT_DOUBLE_EQ(*rate, 10e9);
  exec.RunUntil(SimTime::FromSeconds(10));
  EXPECT_DOUBLE_EQ(done.ToSeconds(), 0.8);
  EXPECT_EQ(exec.FindFlow(id), nullptr);
  EXPECT_DOUBLE_EQ(exec.total_bytes_delivered(), 1e9);
  EXPECT_EQ(exec.active_flow_count(), 0u);
}

TEST(ShardExecutorTest, FaultsLandOnTheOwningShard) {
  EventQueue control;
  std::vector<std::vector<LinkId>> islands;
  Topology topo = BuildIslands(&islands);
  ShardExecutor::Options opts;
  opts.num_threads = 2;
  ShardExecutor exec(control, topo, opts);

  bool aborted = false;
  exec.StartFlow(
      {islands[2][0]}, 1e12, [](FlowId, SimTime) {}, 1.0,
      std::numeric_limits<double>::infinity(),
      [&aborted](FlowId, SimTime) { aborted = true; });
  FlowId stalls = exec.StartFlow({islands[3][0]}, 1e12, [](FlowId, SimTime) {});

  control.ScheduleAt(SimTime::FromSeconds(1), [&exec, &islands] {
    (void)exec.SetLinkUp(islands[2][0], false);
    (void)exec.SetLinkUp(islands[3][0], false);
  });
  exec.RunUntil(SimTime::FromSeconds(2));
  EXPECT_TRUE(aborted);
  EXPECT_EQ(exec.flows_aborted(), 1u);
  EXPECT_EQ(exec.flows_blackholed(), 1u);
  EXPECT_EQ(exec.stalled_flow_count(), 1u);
  EXPECT_FALSE(exec.IsLinkUp(islands[2][0]));

  control.ScheduleAt(SimTime::FromSeconds(3), [&exec, &islands] {
    (void)exec.SetLinkUp(islands[3][0], true);
  });
  exec.RunUntil(SimTime::FromSeconds(4));
  EXPECT_EQ(exec.stalled_flow_count(), 0u);
  auto rate = exec.CurrentRate(stalls);
  ASSERT_TRUE(rate.ok());
  EXPECT_GT(*rate, 0.0);
}

// --- Cross-shard (giant-component) scenarios --------------------------------
//
// One WAN-stitched component: R regions of `hosts` hosts behind a hub, hubs
// chained into a ring of backbone links. A link-cut partition splits this
// at the WAN links, so intra-region flows stay inside one shard while
// region-to-region flows *cross* shards and exercise the capacity-lease
// machinery. The differential contract is the same as for islands:
// byte-identical fingerprints for any thread count.

constexpr int kRegions = 6;
constexpr int kHostsPerRegion = 6;

struct WanRegions {
  Topology topo;
  // Per region: up[h] = host h -> hub, down[h] = hub -> host h.
  std::vector<std::vector<LinkId>> up, down;
  // wan_fwd[r] = hub r -> hub r+1 (mod R); wan_back[r] the reverse.
  std::vector<LinkId> wan_fwd, wan_back;
};

WanRegions BuildWanRegions() {
  WanRegions w;
  std::vector<NodeId> hubs;
  for (int r = 0; r < kRegions; ++r) {
    NodeInfo hub_info;
    hub_info.name = "hub" + std::to_string(r);
    hub_info.domain = "region" + std::to_string(r);
    NodeId hub = w.topo.AddNode(hub_info);
    hubs.push_back(hub);
    w.up.emplace_back();
    w.down.emplace_back();
    for (int h = 0; h < kHostsPerRegion; ++h) {
      NodeInfo info;
      info.name = "r" + std::to_string(r) + "h" + std::to_string(h);
      info.domain = hub_info.domain;
      NodeId host = w.topo.AddNode(info);
      LinkInfo link;
      link.src = hub;
      link.dst = host;
      link.capacity_bps = 10e9;
      link.delay = SimDuration::Micros(50);
      auto pair = w.topo.AddDuplexLink(link);
      w.down[r].push_back(pair.first);
      w.up[r].push_back(pair.second);
    }
  }
  for (int r = 0; r < kRegions; ++r) {
    LinkInfo link;
    link.src = hubs[r];
    link.dst = hubs[(r + 1) % kRegions];
    link.capacity_bps = 40e9;  // WAN trunk: fat but contended by crossings
    link.delay = SimDuration::Millis(10);
    auto pair = w.topo.AddDuplexLink(link);
    w.wan_fwd.push_back(pair.first);
    w.wan_back.push_back(pair.second);
  }
  return w;
}

struct CrossDriver {
  EventQueue control;
  WanRegions wan;
  std::unique_ptr<ShardExecutor> exec;
  EventLog log;
  std::vector<FlowId> live;

  explicit CrossDriver(int num_threads) : wan(BuildWanRegions()) {
    ShardExecutor::Options opts;
    opts.num_threads = num_threads;
    opts.num_shards = kRegions;  // cut at the WAN ring
    opts.epoch_quantum = SimDuration::Millis(5);
    exec = std::make_unique<ShardExecutor>(control, wan.topo, opts);
  }

  // Intra-region: host a -> hub -> host b. One shard, no leases.
  std::vector<LinkId> IntraPath(Rng& rng) {
    int r = static_cast<int>(rng.NextU64(kRegions));
    int a = static_cast<int>(rng.NextU64(kHostsPerRegion));
    int b = static_cast<int>(rng.NextU64(kHostsPerRegion));
    return {wan.up[r][a], wan.down[r][b]};
  }

  // Crossing: host -> hub_r -> (1 or 2 WAN hops) -> hub_r' -> host. The WAN
  // links are border links; with flows homed on several shards they become
  // epoch-synchronized shared resources.
  std::vector<LinkId> CrossPath(Rng& rng) {
    int r = static_cast<int>(rng.NextU64(kRegions));
    int hops = rng.NextBool(0.3) ? 2 : 1;
    int a = static_cast<int>(rng.NextU64(kHostsPerRegion));
    int b = static_cast<int>(rng.NextU64(kHostsPerRegion));
    std::vector<LinkId> path{wan.up[r][a]};
    int at = r;
    for (int hop = 0; hop < hops; ++hop) {
      path.push_back(wan.wan_fwd[at]);
      at = (at + 1) % kRegions;
    }
    path.push_back(wan.down[at][b]);
    return path;
  }

  FlowId StartLogged(std::vector<LinkId> path, double bytes, double weight,
                     bool with_abort) {
    FlowControlSurface::AbortFn on_abort;
    if (with_abort) {
      on_abort = [this](FlowId id, SimTime when) {
        log.MixEvent(kAbort, id, when);
      };
    }
    FlowId id = exec->StartFlow(
        std::move(path), bytes,
        [this](FlowId fid, SimTime when) { log.MixEvent(kComplete, fid, when); },
        weight, std::numeric_limits<double>::infinity(), std::move(on_abort));
    live.push_back(id);
    return id;
  }

  void Probe() {
    log.Mix(kProbe);
    log.Mix(static_cast<uint64_t>(exec->active_flow_count()));
    log.Mix(exec->total_bytes_delivered());
    log.Mix(static_cast<uint64_t>(exec->stalled_flow_count()));
    log.Mix(exec->bytes_blackholed());
    log.Mix(static_cast<uint64_t>(exec->crossing_flow_count()));
    log.Mix(static_cast<uint64_t>(exec->shared_link_count()));
    // Utilization of a WAN trunk folds every shard's allocation into the
    // hash, so lease splits themselves must be bit-identical.
    log.Mix(exec->LinkUtilization(wan.wan_fwd[0]));
  }

  std::string Fingerprint() {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "events=%llu hash=%016llx active=%llu bytes=%.17g aborted=%llu "
        "blackholed=%llu bytes_bh=%.17g stalled=%llu reallocs=%llu "
        "resched=%llu epochs=%llu deferred=%llu leases=%llu splits=%llu",
        static_cast<unsigned long long>(log.events()),
        static_cast<unsigned long long>(log.hash()),
        static_cast<unsigned long long>(exec->active_flow_count()),
        exec->total_bytes_delivered(),
        static_cast<unsigned long long>(exec->flows_aborted()),
        static_cast<unsigned long long>(exec->flows_blackholed()),
        exec->bytes_blackholed(),
        static_cast<unsigned long long>(exec->stalled_flow_count()),
        static_cast<unsigned long long>(exec->reallocation_count()),
        static_cast<unsigned long long>(exec->flows_rescheduled()),
        static_cast<unsigned long long>(exec->epochs_run()),
        static_cast<unsigned long long>(exec->callbacks_deferred()),
        static_cast<unsigned long long>(exec->lease_reconciliations()),
        static_cast<unsigned long long>(exec->leases_applied()));
    return buf;
  }
};

// Crossing storm: intra + crossing flows racing faults on border (WAN) and
// host links. Crossing flows with abort handlers get killed mid-epoch when
// their WAN hop goes down; the rest blackhole and recover.
std::string RunCrossStorm(uint64_t seed, int num_threads) {
  CrossDriver d(num_threads);
  Rng rng(seed);
  for (int i = 0; i < 160; ++i) {
    double at_ms = rng.NextDouble(0.0, 1500.0);
    bool crossing = rng.NextBool(0.4);
    auto path = crossing ? d.CrossPath(rng) : d.IntraPath(rng);
    double bytes = rng.NextDouble(1e5, 5e7);
    double weight = rng.NextDouble(0.5, 4.0);
    bool with_abort = rng.NextBool(0.5);
    d.control.ScheduleAt(SimTime::FromSeconds(at_ms / 1e3),
                         [&d, path, bytes, weight, with_abort]() mutable {
                           d.StartLogged(std::move(path), bytes, weight,
                                         with_abort);
                         });
  }
  // Faults: 2/3 on WAN trunks (border links), 1/3 on host links.
  for (int i = 0; i < 30; ++i) {
    double down_ms = rng.NextDouble(100.0, 1200.0);
    double up_ms = down_ms + rng.NextDouble(20.0, 300.0);
    LinkId link;
    if (rng.NextBool(0.67)) {
      link = d.wan.wan_fwd[rng.NextU64(kRegions)];
    } else {
      int r = static_cast<int>(rng.NextU64(kRegions));
      link = d.wan.up[r][rng.NextU64(kHostsPerRegion)];
    }
    d.control.ScheduleAt(SimTime::FromSeconds(down_ms / 1e3), [&d, link] {
      d.log.Mix(kFault);
      d.log.Mix(link.value());
      (void)d.exec->SetLinkUp(link, false);
    });
    d.control.ScheduleAt(SimTime::FromSeconds(up_ms / 1e3), [&d, link] {
      (void)d.exec->SetLinkUp(link, true);
    });
  }
  for (int ms = 200; ms <= 3000; ms += 200) {
    d.control.ScheduleAt(SimTime::FromSeconds(ms / 1e3), [&d] { d.Probe(); });
  }
  d.exec->RunUntil(SimTime::FromSeconds(60.0));
  return d.Fingerprint();
}

// Crossing churn: persistent + finite crossing flows with cancels and cap
// changes, so shared-link demand (weights, finite-cap sums, uncapped
// counts) churns every epoch.
std::string RunCrossChurn(uint64_t seed, int num_threads) {
  CrossDriver d(num_threads);
  Rng rng(seed);
  for (int i = 0; i < 120; ++i) {
    double at_ms = rng.NextDouble(0.0, 800.0);
    bool crossing = rng.NextBool(0.5);
    auto path = crossing ? d.CrossPath(rng) : d.IntraPath(rng);
    bool persistent = rng.NextBool(0.35);
    double bytes = persistent ? std::numeric_limits<double>::infinity()
                              : rng.NextDouble(1e6, 1e8);
    double weight = rng.NextDouble(0.5, 2.0);
    d.control.ScheduleAt(SimTime::FromSeconds(at_ms / 1e3),
                         [&d, path, bytes, weight]() mutable {
                           d.StartLogged(std::move(path), bytes, weight,
                                         /*with_abort=*/false);
                         });
  }
  for (int i = 0; i < 100; ++i) {
    double at_ms = rng.NextDouble(800.0, 2500.0);
    uint64_t pick = rng.NextU64();
    bool cancel = rng.NextBool(0.5);
    double cap = rng.NextDouble(1e8, 5e9);
    d.control.ScheduleAt(
        SimTime::FromSeconds(at_ms / 1e3), [&d, pick, cancel, cap] {
          if (d.live.empty()) {
            return;
          }
          FlowId target = d.live[pick % d.live.size()];
          if (cancel) {
            Status st = d.exec->CancelFlow(target);
            d.log.MixEvent(kCancelStatus, target, d.control.now());
            d.log.Mix(static_cast<uint64_t>(st.ok() ? 1 : 0));
          } else {
            (void)d.exec->SetRateCap(target, cap);
          }
        });
  }
  for (int ms = 400; ms <= 4000; ms += 400) {
    uint64_t pick = rng.NextU64();
    d.control.ScheduleAt(SimTime::FromSeconds(ms / 1e3), [&d, pick] {
      d.Probe();
      if (!d.live.empty()) {
        FlowId target = d.live[pick % d.live.size()];
        auto rate = d.exec->CurrentRate(target);
        d.log.Mix(rate.ok() ? *rate : -1.0);
      }
    });
  }
  d.exec->RunUntil(SimTime::FromSeconds(60.0));
  return d.Fingerprint();
}

constexpr Scenario kCrossScenarios[] = {
    {"cross_storm", RunCrossStorm},
    {"cross_churn", RunCrossChurn},
};

TEST(CrossShardDifferentialTest, ThreadCountNeverChangesTheFingerprint) {
  for (const Scenario& scenario : kCrossScenarios) {
    for (uint64_t seed : {11ull, 42ull, 1337ull}) {
      SCOPED_TRACE(std::string(scenario.name) + " seed=" +
                   std::to_string(seed));
      std::string base = scenario.run(seed, 1);
      for (int threads : {2, 4, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(base, scenario.run(seed, threads));
      }
    }
  }
}

// The partition cuts the WAN ring: every shard is a region, the border
// links are exactly the WAN trunks, and crossing flows are tracked.
TEST(CrossShardTest, WanRingIsCutAtTheTrunks) {
  CrossDriver d(2);
  EXPECT_EQ(d.exec->shard_count(), static_cast<size_t>(kRegions));
  const LinkCutPartition& part = d.exec->partition();
  EXPECT_GT(part.border_link_count, 0u);
  // Host fan-out links never cross a part boundary (a host has exactly one
  // neighbor, its hub, so refinement keeps them together).
  for (int r = 0; r < kRegions; ++r) {
    for (int h = 0; h < kHostsPerRegion; ++h) {
      EXPECT_FALSE(part.link_is_border[Topology::DenseLinkIndex(d.wan.up[r][h])]);
      EXPECT_FALSE(
          part.link_is_border[Topology::DenseLinkIndex(d.wan.down[r][h])]);
    }
  }
  // A crossing flow is homed on exactly one shard and counted.
  FlowId id = d.exec->StartPersistentFlow(
      {d.wan.up[0][0], d.wan.wan_fwd[0], d.wan.down[1][0]});
  EXPECT_EQ(d.exec->crossing_flow_count(), 1u);
  ASSERT_NE(d.exec->FindFlow(id), nullptr);
  (void)d.exec->CancelFlow(id);
  EXPECT_EQ(d.exec->crossing_flow_count(), 0u);
}

// A crossing flow whose WAN hop faults mid-epoch: the abort handler fires
// (deferred to the barrier), the flow is reclaimed, and the shared link's
// lease is released so the surviving shard gets the full trunk back.
TEST(CrossShardTest, BorderFaultAbortsCrossingFlowMidEpoch) {
  CrossDriver d(4);
  bool aborted = false;
  SimTime abort_when = SimTime::Epoch();
  d.exec->StartFlow(
      {d.wan.up[0][0], d.wan.wan_fwd[0], d.wan.down[1][0]}, 1e12,
      [](FlowId, SimTime) {}, 1.0, std::numeric_limits<double>::infinity(),
      [&](FlowId, SimTime when) {
        aborted = true;
        abort_when = when;
      });
  // A second crossing flow homed on another shard keeps the trunk shared.
  FlowId survivor = d.exec->StartFlow(
      {d.wan.up[1][1], d.wan.wan_back[0], d.wan.down[0][1]}, 1e12,
      [](FlowId, SimTime) {});
  d.control.ScheduleAt(SimTime::FromSeconds(1), [&d] {
    (void)d.exec->SetLinkUp(d.wan.wan_fwd[0], false);
  });
  d.exec->RunUntil(SimTime::FromSeconds(2));
  EXPECT_TRUE(aborted);
  EXPECT_EQ(abort_when.ToSeconds(), 1.0);
  EXPECT_EQ(d.exec->flows_aborted(), 1u);
  EXPECT_EQ(d.exec->crossing_flow_count(), 1u);
  // The survivor (on wan_back, unaffected by the wan_fwd fault) still runs.
  auto rate = d.exec->CurrentRate(survivor);
  ASSERT_TRUE(rate.ok());
  EXPECT_GT(*rate, 0.0);
}

// Satellite: a single giant component must not collapse to one shard (the
// old component-modulo placement left num_threads-1 workers idle). The
// default heuristic sizes shards from the partitioner target.
TEST(CrossShardTest, GiantComponentStillGetsMultipleShards) {
  WanRegions wan = BuildWanRegions();
  ASSERT_EQ(ComputeTopologyComponents(wan.topo).count, 1u);
  EventQueue control;
  ShardExecutor::Options opts;
  opts.num_threads = 4;
  opts.num_shards = 0;  // heuristic: min(32, max(1, ceil(42/32))) = 2
  ShardExecutor exec(control, wan.topo, opts);
  EXPECT_GE(exec.shard_count(), 2u);
  EXPECT_EQ(exec.shard_count(), static_cast<size_t>(exec.partition().count));

  // And the executor still simulates correctly: one flow per region pair,
  // all complete.
  int completions = 0;
  for (int r = 0; r < kRegions; ++r) {
    exec.StartFlow({wan.up[r][0], wan.wan_fwd[r], wan.down[(r + 1) % kRegions][0]},
                   1e9, [&completions](FlowId, SimTime) { ++completions; });
  }
  exec.RunUntil(SimTime::FromSeconds(30));
  EXPECT_EQ(completions, kRegions);
  EXPECT_EQ(exec.active_flow_count(), 0u);
}

// Semantic differential vs the unsharded FlowSim. Sharded results are NOT
// byte-identical to FlowSim (leases quantize shared capacity per epoch) but
// must be (a) feasible — summing every live flow's rate over each link
// never exceeds its capacity — and (b) complete: with the same finite
// workload run to quiescence, both engines deliver exactly the same bytes,
// and the executor's makespan stays within a small factor of FlowSim's.
TEST(CrossShardTest, LeasedCapacityIsFeasibleAndWorkConserving) {
  struct Planned {
    double at_ms;
    std::vector<LinkId> path;
    double bytes;
    double weight;
  };
  WanRegions wan = BuildWanRegions();
  std::vector<Planned> plan;
  Rng rng(99);
  for (int i = 0; i < 80; ++i) {
    Planned p;
    p.at_ms = rng.NextDouble(0.0, 500.0);
    int r = static_cast<int>(rng.NextU64(kRegions));
    int a = static_cast<int>(rng.NextU64(kHostsPerRegion));
    int b = static_cast<int>(rng.NextU64(kHostsPerRegion));
    if (rng.NextBool(0.5)) {
      p.path = {wan.up[r][a], wan.wan_fwd[r], wan.down[(r + 1) % kRegions][b]};
    } else {
      p.path = {wan.up[r][a], wan.down[r][b]};
    }
    p.bytes = rng.NextDouble(1e6, 5e7);
    p.weight = rng.NextDouble(0.5, 2.0);
    plan.push_back(std::move(p));
  }

  struct Outcome {
    double makespan_s = 0;
    int completions = 0;
    std::unordered_map<uint64_t, const Planned*> live;
  };
  // `out` must outlive the queue run: the scheduled callbacks reference it.
  auto schedule = [&plan, &wan](FlowControlSurface& surface,
                                EventQueue& control, Outcome& out,
                                bool check_feasibility) {
    for (const Planned& p : plan) {
      control.ScheduleAt(
          SimTime::FromSeconds(p.at_ms / 1e3), [&surface, &out, &p] {
            FlowId id = surface.StartFlow(
                p.path, p.bytes,
                [&out](FlowId fid, SimTime when) {
                  ++out.completions;
                  out.makespan_s = std::max(out.makespan_s, when.ToSeconds());
                  out.live.erase(fid.value());
                },
                p.weight);
            out.live.emplace(id.value(), &p);
          });
    }
    if (check_feasibility) {
      for (int ms = 50; ms <= 2000; ms += 50) {
        control.ScheduleAt(
            SimTime::FromSeconds(ms / 1e3), [&surface, &out, &wan] {
              std::unordered_map<uint64_t, double> per_link;
              for (const auto& [fid, planned] : out.live) {
                auto rate = surface.CurrentRate(FlowId(fid));
                if (!rate.ok()) {
                  continue;
                }
                for (LinkId link : planned->path) {
                  per_link[link.value()] += *rate;
                }
              }
              for (const auto& [link_value, bps] : per_link) {
                double cap = wan.topo.link(LinkId(link_value)).capacity_bps;
                EXPECT_LE(bps, cap * (1.0 + 1e-6))
                    << "link " << link_value << " oversubscribed";
              }
            });
      }
    }
  };

  EventQueue plain_q;
  FlowSim plain(plain_q, wan.topo);
  Outcome plain_out;
  schedule(plain, plain_q, plain_out, /*check_feasibility=*/false);
  plain_q.RunUntil(SimTime::FromSeconds(120));

  EventQueue exec_q;
  ShardExecutor::Options opts;
  opts.num_threads = 4;
  opts.num_shards = kRegions;
  ShardExecutor exec(exec_q, wan.topo, opts);
  Outcome exec_out;
  schedule(exec, exec_q, exec_out, /*check_feasibility=*/true);
  exec.RunUntil(SimTime::FromSeconds(120));

  EXPECT_EQ(plain_out.completions, static_cast<int>(plan.size()));
  EXPECT_EQ(exec_out.completions, static_cast<int>(plan.size()));
  // Conservative splits waste idle leased capacity within an epoch, so the
  // sharded makespan may trail the global water-fill — but must stay close.
  EXPECT_GT(exec_out.makespan_s, 0.0);
  EXPECT_LE(exec_out.makespan_s, plain_out.makespan_s * 2.0 + 0.1);
}

// Regression: RunAll() (an infinite deadline) must terminate once every
// shard queue and the control queue are drained — the epoch loop's deadline
// comparison alone never fires when both sides are Infinite.
TEST(ShardExecutorTest, RunAllTerminatesWhenQueuesDrain) {
  EventQueue control;
  std::vector<std::vector<LinkId>> islands;
  Topology topo = BuildIslands(&islands);
  ShardExecutor::Options opts;
  opts.num_threads = 4;
  ShardExecutor exec(control, topo, opts);

  SimTime done = SimTime::Epoch();
  exec.StartFlow({islands[1][0]}, 1e9,
                 [&done](FlowId, SimTime when) { done = when; });
  control.ScheduleAt(SimTime::FromSeconds(5), [] {});
  exec.RunAll();
  EXPECT_DOUBLE_EQ(done.ToSeconds(), 0.8);
  EXPECT_EQ(exec.active_flow_count(), 0u);
  EXPECT_EQ(exec.now().ToSeconds(), 5.0);
  // And again with nothing pending at all.
  EXPECT_EQ(exec.RunAll(), 0u);
}

}  // namespace
}  // namespace tenantnet
