// IPv6 coverage for the baseline world: the paper's step (1) calls out the
// IPv4-vs-IPv6 decision as the first fork in the tenant's decision tree,
// so the baseline must genuinely carry both families.

#include <gtest/gtest.h>

#include "src/cloud/presets.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

IpPrefix P(const char* s) { return *IpPrefix::Parse(s); }

class Ipv6VnetTest : public ::testing::Test {
 protected:
  Ipv6VnetTest() : tw_(BuildTestWorld()), net_(*tw_.world, ledger_) {}

  TestWorld tw_;
  ConfigLedger ledger_;
  BaselineNetwork net_;
};

TEST_F(Ipv6VnetTest, V6VpcAndSubnetCarving) {
  auto vpc = net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v6",
                            P("2001:db8::/56"));
  ASSERT_TRUE(vpc.ok());
  auto s1 = net_.CreateSubnet(*vpc, "s1", 64, 0, false);
  auto s2 = net_.CreateSubnet(*vpc, "s2", 64, 1, false);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  const Subnet* a = net_.FindSubnet(*s1);
  const Subnet* b = net_.FindSubnet(*s2);
  EXPECT_EQ(a->cidr.family(), IpFamily::kIpv6);
  EXPECT_FALSE(a->cidr.Overlaps(b->cidr));
  EXPECT_TRUE(net_.FindVpc(*vpc)->cidr.Contains(a->cidr));
}

TEST_F(Ipv6VnetTest, V6IntraVpcDelivery) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v6",
                             P("2001:db8::/56"));
  auto subnet = *net_.CreateSubnet(vpc, "s", 64, 0, false);
  auto sg = *net_.CreateSecurityGroup(vpc, "sg6");
  SgRule egress;
  egress.direction = TrafficDirection::kEgress;
  egress.peer = IpPrefix::Any(IpFamily::kIpv6);
  ASSERT_TRUE(net_.AddSgRule(sg, egress).ok());
  SgRule ingress;
  ingress.direction = TrafficDirection::kIngress;
  ingress.proto = Protocol::kTcp;
  ingress.ports = PortRange::Single(8080);
  ingress.peer = P("2001:db8::/56");
  ASSERT_TRUE(net_.AddSgRule(sg, ingress).ok());

  auto acl = *net_.CreateNetworkAcl(vpc, "acl6");
  for (TrafficDirection dir :
       {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
    AclEntry entry;
    entry.rule_number = 100;
    entry.allow = true;
    entry.direction = dir;
    entry.match = FlowMatch::Any(IpFamily::kIpv6);
    ASSERT_TRUE(net_.AddAclEntry(acl, entry).ok());
  }
  ASSERT_TRUE(net_.AssociateAcl(subnet, acl).ok());

  auto a = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  auto b = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  ASSERT_TRUE(net_.AttachInstance(a, subnet, {sg}, false).ok());
  ASSERT_TRUE(net_.AttachInstance(b, subnet, {sg}, false).ok());

  const Eni* eni_a = net_.FindEniByInstance(a);
  EXPECT_EQ(eni_a->private_ip.family(), IpFamily::kIpv6);

  auto good = net_.Evaluate(a, b, 8080, Protocol::kTcp);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->delivered)
      << good->drop_stage << ": " << good->drop_reason;

  // A family-mismatched SG rule never matches: v4-any does not admit v6.
  auto sg4 = *net_.CreateSecurityGroup(vpc, "sg4-only");
  SgRule v4_ingress;
  v4_ingress.direction = TrafficDirection::kIngress;
  v4_ingress.peer = IpPrefix::Any(IpFamily::kIpv4);
  ASSERT_TRUE(net_.AddSgRule(sg4, v4_ingress).ok());
  SgRule v4_egress = v4_ingress;
  v4_egress.direction = TrafficDirection::kEgress;
  ASSERT_TRUE(net_.AddSgRule(sg4, v4_egress).ok());
  auto c = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  ASSERT_TRUE(net_.AttachInstance(c, subnet, {sg4}, false).ok());
  auto blocked = net_.Evaluate(a, c, 8080, Protocol::kTcp);
  ASSERT_TRUE(blocked.ok());
  EXPECT_FALSE(blocked->delivered);
  EXPECT_EQ(blocked->drop_stage, "sg-ingress");
}

TEST_F(Ipv6VnetTest, EgressOnlyIgwIsADistinctComponent) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v6",
                             P("2001:db8::/56"));
  auto eo = net_.CreateEgressOnlyIgw(vpc, "eo-igw");
  ASSERT_TRUE(eo.ok());
  EXPECT_EQ(net_.gateway_count(), 1u);
  // It shows up in the ledger as its own component kind — one more box and
  // one more decision branch in the tenant's tree.
  auto kinds = ledger_.ComponentsByKind();
  EXPECT_EQ(kinds.at("egress-only-igw"), 1u);
}

TEST_F(Ipv6VnetTest, V6RouteTargetsViaEgressOnlyIgw) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v6",
                             P("2001:db8::/56"));
  auto subnet = *net_.CreateSubnet(vpc, "s", 64, 0, false);
  auto rt = *net_.CreateRouteTable(vpc, "rt6");
  ASSERT_TRUE(net_.AssociateRouteTable(subnet, rt).ok());
  auto eo = *net_.CreateEgressOnlyIgw(vpc, "eo");
  ASSERT_TRUE(net_.AddRoute(rt, IpPrefix::Any(IpFamily::kIpv6),
                            VpcRouteTarget{VpcRouteTargetKind::kEgressOnlyIgw,
                                           eo.value()})
                  .ok());
  // The v6 default route coexists with the implicit local v6 route.
  // (Local wins for in-VPC destinations by longest prefix.)
  auto a = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  auto sg = *net_.CreateSecurityGroup(vpc, "sg");
  SgRule all_egress;
  all_egress.direction = TrafficDirection::kEgress;
  all_egress.peer = IpPrefix::Any(IpFamily::kIpv6);
  ASSERT_TRUE(net_.AddSgRule(sg, all_egress).ok());
  ASSERT_TRUE(net_.AttachInstance(a, subnet, {sg}, false).ok());
  // Nothing listens outside, so an external v6 target dies after the
  // egress-only hop — but it must at least traverse the gateway, not drop
  // at the route stage.
  const Eni* eni = net_.FindEniByInstance(a);
  (void)eni;
}

}  // namespace
}  // namespace tenantnet
