// Tests for src/common: Status/Result, typed ids, SimTime, Rng.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace tenantnet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such vpc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such vpc");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such vpc");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  TN_ASSIGN_OR_RETURN(int h, Half(x));
  TN_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

using FooId = TypedId<struct FooTag>;
using BarId = TypedId<struct BarTag>;

TEST(TypedIdTest, DefaultIsInvalid) {
  FooId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FooId::Invalid());
}

TEST(TypedIdTest, GeneratorIsMonotonicFromOne) {
  IdGenerator<FooId> gen;
  EXPECT_EQ(gen.Next().value(), 1u);
  EXPECT_EQ(gen.Next().value(), 2u);
  EXPECT_TRUE(gen.Next().valid());
}

TEST(TypedIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<FooId, BarId>);
  FooId foo(7);
  EXPECT_EQ(std::hash<FooId>{}(foo), std::hash<uint64_t>{}(7));
}

TEST(SimTimeTest, Arithmetic) {
  SimTime t = SimTime::Epoch() + SimDuration::Millis(5);
  EXPECT_EQ(t.nanos(), 5'000'000);
  t += SimDuration::Micros(10);
  EXPECT_EQ(t.nanos(), 5'010'000);
  SimDuration d = t - SimTime::Epoch();
  EXPECT_DOUBLE_EQ(d.ToSeconds(), 0.00501);
  EXPECT_LT(SimTime::Epoch(), t);
  EXPECT_LT(t, SimTime::Infinite());
}

TEST(SimDurationTest, ScalingAndComparison) {
  SimDuration d = SimDuration::Seconds(2.0);
  EXPECT_EQ((d * 0.5).nanos(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(d / SimDuration::Millis(500), 4.0);
  EXPECT_GT(d, SimDuration::Zero());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextU64(17);
    EXPECT_LT(v, 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextExponential(4.0);  // mean 0.25
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng rng(13);
  double small_sum = 0;
  double large_sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    small_sum += static_cast<double>(rng.NextPoisson(3.5));
    large_sum += static_cast<double>(rng.NextPoisson(200.0));
  }
  EXPECT_NEAR(small_sum / kN, 3.5, 0.1);
  EXPECT_NEAR(large_sum / kN, 200.0, 2.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  constexpr int kN = 200000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(23);
  ZipfSampler sampler(100, 1.2);
  uint64_t low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (sampler.Sample(rng) < 10) {
      ++low;
    }
  }
  // With s=1.2 the top-10 ranks carry well over half the mass.
  EXPECT_GT(low, static_cast<uint64_t>(kN) / 2);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(29);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(10, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    counts[sampler.Sample(rng)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kN / 10, kN / 40);
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(31);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace tenantnet
