// Tests for the fault-injection subsystem: schedule determinism, link /
// instance / gateway / control-plane faults against both worlds, and the
// headline resilience invariant — a 100-event storm leaves zero permanently
// blackholed flows once every fault has recovered.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/faults/fault_injector.h"
#include "src/sim/flow_sim.h"
#include "src/vnet/builder.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

// ---------------------------------------------------------------------------
// Storm generator.
// ---------------------------------------------------------------------------

StormParams SmallStorm() {
  StormParams p;
  p.event_count = 20;
  p.window = SimDuration::Seconds(10);
  p.links = {LinkId(1), LinkId(2), LinkId(3)};
  p.instances = {InstanceId(1), InstanceId(2)};
  p.gateways = {NodeId(1)};
  return p;
}

TEST(FaultScheduleTest, StormIsAPureFunctionOfSeed) {
  FaultSchedule a = FaultSchedule::Storm(11, SmallStorm());
  FaultSchedule b = FaultSchedule::Storm(11, SmallStorm());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
    EXPECT_EQ(a.events[i].link, b.events[i].link);
    EXPECT_EQ(a.events[i].instance, b.events[i].instance);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
  }
  FaultSchedule c = FaultSchedule::Storm(12, SmallStorm());
  bool differs = false;
  for (size_t i = 0; i < a.events.size(); ++i) {
    differs = differs || a.events[i].at != c.events[i].at ||
              a.events[i].kind != c.events[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultScheduleTest, StormIsSortedAndBounded) {
  StormParams p = SmallStorm();
  p.event_count = 100;
  FaultSchedule s = FaultSchedule::Storm(3, p);
  ASSERT_EQ(s.events.size(), 100u);
  for (size_t i = 1; i < s.events.size(); ++i) {
    EXPECT_LE(s.events[i - 1].at, s.events[i].at);
  }
  for (const FaultSpec& e : s.events) {
    EXPECT_GE(e.at, SimDuration::Zero());
    EXPECT_LT(e.at, p.window);
    EXPECT_GE(e.duration, p.min_duration);
    EXPECT_LE(e.duration, p.max_duration);
  }
}

TEST(FaultScheduleTest, KindsWithoutTargetsAreNeverDrawn) {
  StormParams p;
  p.event_count = 50;
  p.links = {LinkId(1)};
  p.include_control_plane = false;
  FaultSchedule s = FaultSchedule::Storm(5, p);
  for (const FaultSpec& e : s.events) {
    EXPECT_EQ(e.kind, FaultKind::kLinkDown);
  }
}

// ---------------------------------------------------------------------------
// Single-fault mechanics on a small world.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, LinkFaultDownsAndRestoresBothViews) {
  TestWorld tw = BuildTestWorld();
  Topology& topo = tw.world->topology();
  EventQueue queue;
  FlowSim sim(queue, topo);
  MetricRegistry metrics;
  FaultInjector injector(queue, topo, sim, tw.world.get(), metrics, {});

  LinkId victim(1);
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDown;
  spec.duration = SimDuration::Seconds(1);
  spec.link = victim;
  injector.InjectNow(spec);
  EXPECT_FALSE(topo.IsLinkUp(victim));
  EXPECT_FALSE(sim.IsLinkUp(victim));
  EXPECT_EQ(topo.down_link_count(), 1u);

  queue.RunAll();
  EXPECT_TRUE(topo.IsLinkUp(victim));
  EXPECT_TRUE(sim.IsLinkUp(victim));
  EXPECT_EQ(injector.faults_injected(), 1u);
  EXPECT_EQ(injector.faults_reconverged(), 1u);
  EXPECT_TRUE(injector.AllRecovered());
  EXPECT_EQ(injector.reconverge_ms(FaultKind::kLinkDown).count(), 1u);
}

TEST(FaultInjectorTest, OverlappingFaultsOnOneLinkRestoreOnlyAtLastRecovery) {
  TestWorld tw = BuildTestWorld();
  Topology& topo = tw.world->topology();
  EventQueue queue;
  FlowSim sim(queue, topo);
  MetricRegistry metrics;
  FaultInjector injector(queue, topo, sim, tw.world.get(), metrics, {});

  LinkId victim(1);
  FaultSpec first;
  first.kind = FaultKind::kLinkDown;
  first.link = victim;
  first.duration = SimDuration::Seconds(1);
  FaultSpec second = first;
  second.at = SimDuration::Millis(500);
  second.duration = SimDuration::Seconds(2);  // recovers at t=2.5s

  FaultSchedule schedule;
  schedule.events = {first, second};
  injector.Schedule(schedule);
  queue.RunUntil(SimTime::FromSeconds(1.5));
  // First fault recovered at t=1s, but the second still holds the link.
  EXPECT_FALSE(topo.IsLinkUp(victim));
  queue.RunAll();
  EXPECT_TRUE(topo.IsLinkUp(victim));
  EXPECT_TRUE(injector.AllRecovered());
}

TEST(FaultInjectorTest, GatewayRestartDownsEveryIncidentLink) {
  TestWorld tw = BuildTestWorld();
  Topology& topo = tw.world->topology();
  EventQueue queue;
  FlowSim sim(queue, topo);
  MetricRegistry metrics;
  FaultInjector injector(queue, topo, sim, tw.world.get(), metrics, {});

  NodeId gateway = tw.world->region(tw.east).edge_node;
  std::vector<LinkId> incident = topo.IncidentLinks(gateway);
  ASSERT_GT(incident.size(), 2u);

  FaultSpec spec;
  spec.kind = FaultKind::kGatewayRestart;
  spec.node = gateway;
  spec.duration = SimDuration::Seconds(1);
  injector.InjectNow(spec);
  EXPECT_EQ(topo.down_link_count(), incident.size());
  for (LinkId link : incident) {
    EXPECT_FALSE(topo.IsLinkUp(link));
  }
  queue.RunAll();
  EXPECT_EQ(topo.down_link_count(), 0u);
  EXPECT_TRUE(injector.AllRecovered());
}

TEST(FaultInjectorTest, InstanceCrashFlipsRunningAndFiresHooks) {
  TestWorld tw = BuildTestWorld();
  Topology& topo = tw.world->topology();
  EventQueue queue;
  FlowSim sim(queue, topo);
  MetricRegistry metrics;
  InstanceId vm =
      *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);

  std::vector<std::string> events;
  FaultHooks hooks;
  hooks.on_inject = [&](const FaultSpec& spec) {
    events.push_back(std::string("inject:") +
                     std::string(FaultKindName(spec.kind)));
  };
  hooks.on_recover = [&](const FaultSpec& spec) {
    events.push_back(std::string("recover:") +
                     std::string(FaultKindName(spec.kind)));
  };
  FaultInjector injector(queue, topo, sim, tw.world.get(), metrics,
                         std::move(hooks));

  FaultSpec spec;
  spec.kind = FaultKind::kInstanceCrash;
  spec.instance = vm;
  spec.duration = SimDuration::Seconds(1);
  injector.InjectNow(spec);
  EXPECT_FALSE(tw.world->FindInstance(vm)->running);
  queue.RunAll();
  EXPECT_TRUE(tw.world->FindInstance(vm)->running);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "inject:instance-crash");
  EXPECT_EQ(events[1], "recover:instance-crash");
}

// ---------------------------------------------------------------------------
// Declarative-world reactions: EIP route withdrawal + SIP re-binding.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DeclarativeInstanceCrashRebindsSipAndDropsEndpoint) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);
  EventQueue queue;
  FlowSim sim(queue, tw.world->topology());
  MetricRegistry metrics;

  InstanceId client =
      *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0);
  IpAddress client_eip = *cloud.RequestEip(client);
  std::vector<InstanceId> backends;
  std::vector<IpAddress> eips;
  IpAddress sip = *cloud.RequestSip(tw.tenant, tw.provider);
  for (int i = 0; i < 2; ++i) {
    InstanceId id =
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, i);
    backends.push_back(id);
    IpAddress eip = *cloud.RequestEip(id);
    eips.push_back(eip);
    ASSERT_TRUE(cloud.Bind(eip, sip).ok());
    PermitEntry e;
    e.source = IpPrefix::Host(client_eip);
    ASSERT_TRUE(cloud.SetPermitList(eip, {e}).ok());
  }

  FaultHooks hooks;
  hooks.on_inject = [&](const FaultSpec& spec) {
    if (spec.kind == FaultKind::kInstanceCrash) {
      cloud.NotifyInstanceDown(spec.instance);
    }
  };
  hooks.on_recover = [&](const FaultSpec& spec) {
    if (spec.kind == FaultKind::kInstanceCrash) {
      cloud.NotifyInstanceUp(spec.instance);
    }
  };
  FaultInjector injector(queue, tw.world->topology(), sim, tw.world.get(),
                         metrics, std::move(hooks));

  FaultSpec spec;
  spec.kind = FaultKind::kInstanceCrash;
  spec.instance = backends[0];
  spec.duration = SimDuration::Seconds(2);
  injector.InjectNow(spec);

  // SIP re-binding: the dead backend never resolves while down.
  for (int i = 0; i < 20; ++i) {
    auto d = cloud.Evaluate(client, sip, 443, Protocol::kTcp);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(d->delivered) << d->drop_stage << ": " << d->drop_reason;
    EXPECT_NE(d->effective_dst, eips[0]);
  }
  // Direct-to-EIP traffic sees the endpoint gone, not a silent blackhole.
  auto direct = cloud.Evaluate(client, eips[0], 443, Protocol::kTcp);
  ASSERT_TRUE(direct.ok());
  EXPECT_FALSE(direct->delivered);
  EXPECT_EQ(direct->drop_stage, "instance-down");

  queue.RunAll();
  // Recovered: the EIP answers again and the SIP pool is whole.
  auto after = cloud.Evaluate(client, eips[0], 443, Protocol::kTcp);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->delivered) << after->drop_stage << ": "
                                << after->drop_reason;
}

// ---------------------------------------------------------------------------
// Control-plane faults: degraded replication + permit staleness.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DegradedReplicationWidensPermitStalenessWindow) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  EventQueue queue;
  DeclarativeParams dparams;
  dparams.filter.degraded_drop_prob = 0.9;
  dparams.filter.degraded_retransmit = SimDuration::Millis(50);
  DeclarativeCloud cloud(*tw.world, ledger, &queue, dparams);
  FlowSim sim(queue, tw.world->topology());
  MetricRegistry metrics;

  InstanceId client =
      *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0);
  IpAddress client_eip = *cloud.RequestEip(client);
  InstanceId server =
      *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  IpAddress server_eip = *cloud.RequestEip(server);
  PermitEntry permit;
  permit.source = IpPrefix::Host(client_eip);
  ASSERT_TRUE(cloud.SetPermitList(server_eip, {permit}).ok());
  queue.RunAll();  // let the initial install converge

  EdgeFilterBank& bank = cloud.provider_filters(tw.provider);
  ASSERT_TRUE(bank.IsConverged(server_eip));
  FiveTuple flow;
  flow.src = client_eip;
  flow.dst = server_eip;
  flow.dst_port = 443;
  flow.proto = Protocol::kTcp;
  auto any_edge_admits = [&] {
    for (size_t e = 0; e < bank.edge_count(); ++e) {
      if (bank.Admits(e, flow)) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(any_edge_admits());

  FaultHooks hooks;
  hooks.set_control_degraded = [&](bool degraded) {
    bank.SetReplicationDegraded(degraded);
  };
  FaultInjector injector(queue, tw.world->topology(), sim, tw.world.get(),
                         metrics, std::move(hooks));
  FaultSpec fault;
  fault.kind = FaultKind::kControlPlaneDegrade;
  fault.duration = SimDuration::Seconds(30);
  injector.InjectNow(fault);
  ASSERT_TRUE(bank.replication_degraded());

  // Revoke the client mid-degrade and measure how long a revoked peer still
  // gets through somewhere (the E8b staleness window).
  SimTime revoked_at = queue.now();
  ASSERT_TRUE(cloud.SetPermitList(server_eip, {}).ok());
  bool recorded = false;
  std::function<void()> probe = [&] {
    if (recorded) {
      return;
    }
    if (!any_edge_admits()) {
      recorded = true;
      injector.RecordPermitStaleness(queue.now() - revoked_at);
      return;
    }
    queue.ScheduleAfter(SimDuration::Millis(1), probe);
  };
  probe();
  queue.RunAll();

  ASSERT_TRUE(recorded);
  EXPECT_TRUE(bank.IsConverged(server_eip));
  EXPECT_FALSE(bank.replication_degraded());
  EXPECT_GT(bank.messages_dropped(), 0u);
  // The degraded window includes at least one retransmit round on top of
  // the base install latency.
  EXPECT_GT(injector.permit_staleness_ms().max(),
            dparams.filter.install_base.ToMillis());
}

// ---------------------------------------------------------------------------
// Both worlds under an identical 100-event storm.
// ---------------------------------------------------------------------------

struct StormOutcome {
  std::string fingerprint;
  uint64_t completed = 0;
  uint64_t aborted = 0;
  uint64_t retries = 0;
  uint64_t gave_up = 0;
  uint64_t denied = 0;
  size_t stalled_after = 0;
  uint64_t unconverged = 0;
  bool all_recovered = false;
  uint64_t reconverged = 0;
  double bytes_blackholed = 0;
};

// Deploys a flat permit-everyone-in-the-app declarative app (the resilience
// tests exercise recovery, not the security matrix — that's
// parity_integration_test's job).
std::map<uint64_t, IpAddress> DeployDeclarativeApp(DeclarativeCloud& cloud,
                                                   const Fig1World& fig) {
  std::map<uint64_t, IpAddress> eip;
  std::vector<InstanceId> all = fig.AllInstances();
  for (InstanceId id : all) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  for (InstanceId dst : all) {
    std::vector<PermitEntry> permits;
    for (InstanceId src : all) {
      if (src != dst) {
        PermitEntry e;
        e.source = IpPrefix::Host(eip[src.value()]);
        permits.push_back(e);
      }
    }
    EXPECT_TRUE(cloud.SetPermitList(eip[dst.value()], permits).ok());
  }
  return eip;
}

StormParams Fig1Storm(const Fig1World& fig) {
  StormParams p;
  p.event_count = 100;
  p.window = SimDuration::Seconds(20);
  p.min_duration = SimDuration::Millis(100);
  p.max_duration = SimDuration::Seconds(2);
  const Topology& topo = fig.world->topology();
  for (size_t i = 0; i < topo.link_count(); ++i) {
    LinkId id(i + 1);
    LinkClass cls = topo.link(id).cls;
    if (cls == LinkClass::kBackbone || cls == LinkClass::kPublicInternet) {
      p.links.push_back(id);
    }
  }
  for (InstanceId id : fig.spark) {
    p.instances.push_back(id);
  }
  for (InstanceId id : fig.database) {
    p.instances.push_back(id);
  }
  p.gateways = {fig.world->region(fig.a_us_east).edge_node,
                fig.world->region(fig.b_us_east).edge_node};
  return p;
}

StormOutcome RunStorm(bool declarative, uint64_t storm_seed) {
  Fig1World fig = BuildFig1World();
  CloudWorld& world = *fig.world;
  EventQueue queue;
  FlowSim sim(queue, world.topology());
  MetricRegistry metrics;

  ConfigLedger ledger;
  std::unique_ptr<BaselineNetwork> baseline;
  std::unique_ptr<DeclarativeCloud> decl;
  std::map<uint64_t, IpAddress> eip;
  ConnectorFn connector;
  FaultHooks hooks;
  if (declarative) {
    decl = std::make_unique<DeclarativeCloud>(world, ledger);
    eip = DeployDeclarativeApp(*decl, fig);
    DeclarativeCloud* cloud = decl.get();
    auto* eips = &eip;
    connector = [cloud, eips](InstanceId src, InstanceId dst) {
      ResolvedRoute route;
      auto it = eips->find(dst.value());
      if (it == eips->end()) {
        route.deny_stage = DenyStage("no-eip");
        return route;
      }
      auto d = cloud->Evaluate(src, it->second, 443, Protocol::kTcp);
      if (!d.ok() || !d->delivered) {
        route.deny_stage = DenyStage(
            d.ok() ? (d->drop_stage.empty() ? "denied" : d->drop_stage)
                   : "instance-down");
        return route;
      }
      route.allowed = true;
      route.src_node = d->src_node;
      route.dst_node = d->dst_node;
      route.policy = d->egress_policy;
      return route;
    };
    // Declarative reaction: the provider's hypervisor signal repairs SIP
    // bindings and withdraws the EIP host route immediately.
    hooks.on_inject = [cloud](const FaultSpec& spec) {
      if (spec.kind == FaultKind::kInstanceCrash) {
        cloud->NotifyInstanceDown(spec.instance);
      }
    };
    hooks.on_recover = [cloud](const FaultSpec& spec) {
      if (spec.kind == FaultKind::kInstanceCrash) {
        cloud->NotifyInstanceUp(spec.instance);
      }
    };
  } else {
    baseline = std::make_unique<BaselineNetwork>(world, ledger);
    auto built = BuildFig1Baseline(*baseline, fig);
    EXPECT_TRUE(built.ok()) << built.status();
    BaselineNetwork* net = baseline.get();
    connector = [net](InstanceId src, InstanceId dst) {
      ResolvedRoute route;
      auto d = net->Evaluate(src, dst, Fig1Baseline::kDbPort, Protocol::kTcp);
      if (!d.ok() || !d->delivered) {
        route.deny_stage = DenyStage(
            d.ok() ? (d->drop_stage.empty() ? "denied" : d->drop_stage)
                   : "instance-down");
        return route;
      }
      route.allowed = true;
      route.src_node = d->src_node;
      route.dst_node = d->dst_node;
      route.policy = d->egress_policy;
      return route;
    };
  }

  WorkloadParams wparams;
  wparams.seed = 17;
  wparams.max_retries = 6;
  wparams.mean_response_bytes = 128 * 1024;
  RequestWorkload workload(queue, sim, world, wparams);
  size_t pattern = workload.AddPattern("spark->db", fig.spark, fig.database,
                                       80.0, connector);
  workload.Start(SimDuration::Seconds(25));

  FaultInjector injector(queue, world.topology(), sim, &world, metrics,
                         std::move(hooks));
  injector.Schedule(FaultSchedule::Storm(storm_seed, Fig1Storm(fig)));
  queue.RunAll();

  StormOutcome out;
  const PatternStats& stats = workload.stats(pattern);
  out.completed = stats.completed;
  out.aborted = stats.aborted;
  out.retries = stats.retries;
  out.gave_up = stats.gave_up;
  out.denied = stats.denied;
  out.stalled_after = sim.stalled_flow_count();
  out.unconverged = injector.faults_unconverged();
  out.reconverged = injector.faults_reconverged();
  out.all_recovered = injector.AllRecovered();
  out.bytes_blackholed = sim.bytes_blackholed();

  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "attempted=%llu completed=%llu denied=%llu aborted=%llu retries=%llu "
      "gave_up=%llu inflight=%llu lat_n=%llu lat_sum=%.17g bytes=%.17g "
      "sim_aborted=%llu sim_blackholed=%llu bytes_blackholed=%.17g "
      "reallocs=%llu injected=%llu reconverged=%llu reconv_sum=%.17g",
      static_cast<unsigned long long>(stats.attempted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.denied),
      static_cast<unsigned long long>(stats.aborted),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.gave_up),
      static_cast<unsigned long long>(workload.inflight()),
      static_cast<unsigned long long>(stats.latency_ms.count()),
      stats.latency_ms.sum(), stats.bytes_transferred,
      static_cast<unsigned long long>(sim.flows_aborted()),
      static_cast<unsigned long long>(sim.flows_blackholed()),
      sim.bytes_blackholed(),
      static_cast<unsigned long long>(sim.reallocation_count()),
      static_cast<unsigned long long>(injector.faults_injected()),
      static_cast<unsigned long long>(injector.faults_reconverged()),
      injector.reconverge_ms(FaultKind::kLinkDown).sum() +
          injector.reconverge_ms(FaultKind::kInstanceCrash).sum() +
          injector.reconverge_ms(FaultKind::kGatewayRestart).sum() +
          injector.reconverge_ms(FaultKind::kControlPlaneDegrade).sum());
  out.fingerprint = buf;
  return out;
}

TEST(FaultStormTest, ReplayingTheSameScheduleIsByteIdentical) {
  StormOutcome first = RunStorm(/*declarative=*/true, /*storm_seed=*/99);
  StormOutcome second = RunStorm(/*declarative=*/true, /*storm_seed=*/99);
  EXPECT_EQ(first.fingerprint, second.fingerprint);

  StormOutcome base_first = RunStorm(/*declarative=*/false, 99);
  StormOutcome base_second = RunStorm(/*declarative=*/false, 99);
  EXPECT_EQ(base_first.fingerprint, base_second.fingerprint);
}

TEST(FaultStormTest, BothWorldsSurviveHundredEventStorm) {
  for (bool declarative : {false, true}) {
    StormOutcome out = RunStorm(declarative, /*storm_seed=*/7);
    SCOPED_TRACE(declarative ? "declarative" : "baseline");
    // The storm actually injected and fully drained.
    EXPECT_GT(out.reconverged, 0u);
    EXPECT_TRUE(out.all_recovered);
    EXPECT_EQ(out.unconverged, 0u);
    // Zero permanently blackholed flows after recovery.
    EXPECT_EQ(out.stalled_after, 0u);
    // Faults really bit (flows were torn down and rerouted/retried)...
    EXPECT_GT(out.aborted + out.denied, 0u);
    // ...and the bulk of the traffic still completed.
    EXPECT_GT(out.completed, 0u);
    EXPECT_GT(out.completed, out.gave_up * 10);
  }
}

}  // namespace
}  // namespace tenantnet
