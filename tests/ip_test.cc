// Tests for IpAddress / IpPrefix.

#include <gtest/gtest.h>

#include "src/net/ip.h"

namespace tenantnet {
namespace {

TEST(IpAddressTest, V4RoundTrip) {
  IpAddress ip = IpAddress::V4(10, 1, 2, 3);
  EXPECT_TRUE(ip.is_v4());
  EXPECT_EQ(ip.ToString(), "10.1.2.3");
  auto parsed = IpAddress::Parse("10.1.2.3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ip);
}

TEST(IpAddressTest, V4ParseRejectsGarbage) {
  EXPECT_FALSE(IpAddress::Parse("10.1.2").ok());
  EXPECT_FALSE(IpAddress::Parse("10.1.2.256").ok());
  EXPECT_FALSE(IpAddress::Parse("10.1.2.3.4").ok());
  EXPECT_FALSE(IpAddress::Parse("a.b.c.d").ok());
  EXPECT_FALSE(IpAddress::Parse("").ok());
}

TEST(IpAddressTest, V6RoundTrip) {
  auto parsed = IpAddress::Parse("2001:db8::1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->is_v4());
  EXPECT_EQ(parsed->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(parsed->lo(), 1u);
  EXPECT_EQ(parsed->ToString(), "2001:db8::1");
}

TEST(IpAddressTest, V6FullForm) {
  auto parsed = IpAddress::Parse("1:2:3:4:5:6:7:8");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), "1:2:3:4:5:6:7:8");
}

TEST(IpAddressTest, V6AllZeros) {
  auto parsed = IpAddress::Parse("::");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), "::");
  EXPECT_EQ(parsed->hi(), 0u);
  EXPECT_EQ(parsed->lo(), 0u);
}

TEST(IpAddressTest, V6ParseRejectsGarbage) {
  EXPECT_FALSE(IpAddress::Parse("1:2:3").ok());
  EXPECT_FALSE(IpAddress::Parse("1::2::3").ok());
  EXPECT_FALSE(IpAddress::Parse("12345::").ok());
}

TEST(IpAddressTest, PlusWrapsWithinFamily) {
  IpAddress ip = IpAddress::V4(10, 0, 0, 255);
  EXPECT_EQ(ip.Plus(1).ToString(), "10.0.1.0");
  IpAddress v6 = IpAddress::V6(1, ~0ULL);
  IpAddress bumped = v6.Plus(1);
  EXPECT_EQ(bumped.hi(), 2u);
  EXPECT_EQ(bumped.lo(), 0u);
}

TEST(IpAddressTest, OrderingV4BeforeV6) {
  IpAddress v4 = IpAddress::V4(255, 255, 255, 255);
  IpAddress v6 = IpAddress::V6(0, 0);
  EXPECT_LT(v4, v6);
}

TEST(IpAddressTest, BitFromMsb) {
  IpAddress ip = IpAddress::V4(0x80000001u);
  EXPECT_TRUE(ip.BitFromMsb(0));
  EXPECT_FALSE(ip.BitFromMsb(1));
  EXPECT_TRUE(ip.BitFromMsb(31));
  IpAddress v6 = IpAddress::V6(1ULL << 63, 1);
  EXPECT_TRUE(v6.BitFromMsb(0));
  EXPECT_TRUE(v6.BitFromMsb(127));
  EXPECT_FALSE(v6.BitFromMsb(64));
}

TEST(IpPrefixTest, ParseAndCanonicalize) {
  auto p = IpPrefix::Parse("10.1.2.3/16");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "10.1.0.0/16");  // host bits masked
  EXPECT_EQ(p->length(), 16);
}

TEST(IpPrefixTest, ParseRejectsBadLength) {
  EXPECT_FALSE(IpPrefix::Parse("10.0.0.0/33").ok());
  EXPECT_FALSE(IpPrefix::Parse("10.0.0.0/-1").ok());
  EXPECT_FALSE(IpPrefix::Parse("10.0.0.0").ok());
  EXPECT_TRUE(IpPrefix::Parse("2001:db8::/129").status().code() ==
              StatusCode::kInvalidArgument);
}

TEST(IpPrefixTest, ContainsAddress) {
  auto p = *IpPrefix::Parse("10.1.0.0/16");
  EXPECT_TRUE(p.Contains(IpAddress::V4(10, 1, 200, 3)));
  EXPECT_FALSE(p.Contains(IpAddress::V4(10, 2, 0, 0)));
  EXPECT_FALSE(p.Contains(*IpAddress::Parse("2001:db8::1")));  // family
}

TEST(IpPrefixTest, ContainsPrefixAndOverlap) {
  auto big = *IpPrefix::Parse("10.0.0.0/8");
  auto small = *IpPrefix::Parse("10.3.0.0/16");
  auto other = *IpPrefix::Parse("11.0.0.0/8");
  EXPECT_TRUE(big.Contains(small));
  EXPECT_FALSE(small.Contains(big));
  EXPECT_TRUE(big.Overlaps(small));
  EXPECT_TRUE(small.Overlaps(big));
  EXPECT_FALSE(big.Overlaps(other));
}

TEST(IpPrefixTest, AnyContainsEverythingInFamily) {
  auto any = IpPrefix::Any(IpFamily::kIpv4);
  EXPECT_TRUE(any.Contains(IpAddress::V4(1, 2, 3, 4)));
  EXPECT_TRUE(any.Contains(IpAddress::V4(255, 0, 0, 1)));
  EXPECT_FALSE(any.Contains(*IpAddress::Parse("::1")));
}

TEST(IpPrefixTest, AddressCount) {
  EXPECT_EQ(IpPrefix::Parse("10.0.0.0/24")->AddressCount(), 256u);
  EXPECT_EQ(IpPrefix::Parse("10.0.0.0/32")->AddressCount(), 1u);
  EXPECT_EQ(IpPrefix::Parse("2001:db8::/32")->AddressCount(), UINT64_MAX);
}

TEST(IpPrefixTest, SplitProducesBuddies) {
  auto p = *IpPrefix::Parse("10.0.0.0/16");
  auto halves = p.Split();
  ASSERT_TRUE(halves.ok());
  EXPECT_EQ(halves->first.ToString(), "10.0.0.0/17");
  EXPECT_EQ(halves->second.ToString(), "10.0.128.0/17");
  EXPECT_TRUE(p.Contains(halves->first));
  EXPECT_TRUE(p.Contains(halves->second));
  EXPECT_FALSE(halves->first.Overlaps(halves->second));
}

TEST(IpPrefixTest, SplitV6HighBits) {
  auto p = *IpPrefix::Parse("2001:db8::/32");
  auto halves = p.Split();
  ASSERT_TRUE(halves.ok());
  EXPECT_EQ(halves->first.ToString(), "2001:db8::/33");
  EXPECT_EQ(halves->second.ToString(), "2001:db8:8000::/33");
}

TEST(IpPrefixTest, SplitHostPrefixFails) {
  auto p = *IpPrefix::Parse("10.0.0.1/32");
  EXPECT_FALSE(p.Split().ok());
}

TEST(IpPrefixTest, HostPrefix) {
  IpAddress ip = IpAddress::V4(10, 0, 0, 7);
  IpPrefix host = IpPrefix::Host(ip);
  EXPECT_EQ(host.length(), 32);
  EXPECT_TRUE(host.Contains(ip));
  EXPECT_EQ(host.AddressCount(), 1u);
}

TEST(IpPrefixTest, AddressAtOffset) {
  auto p = *IpPrefix::Parse("10.0.0.0/24");
  EXPECT_EQ(p.AddressAt(0).ToString(), "10.0.0.0");
  EXPECT_EQ(p.AddressAt(255).ToString(), "10.0.0.255");
}

// Parameterized: Split recursion keeps producing disjoint covering pairs at
// every depth.
class SplitDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitDepthTest, RecursiveSplitInvariant) {
  IpPrefix p = *IpPrefix::Parse("10.0.0.0/8");
  for (int depth = 0; depth < GetParam(); ++depth) {
    auto halves = p.Split();
    ASSERT_TRUE(halves.ok());
    EXPECT_EQ(halves->first.length(), p.length() + 1);
    EXPECT_FALSE(halves->first.Overlaps(halves->second));
    EXPECT_EQ(halves->first.AddressCount() + halves->second.AddressCount(),
              p.AddressCount());
    p = (depth % 2 == 0) ? halves->second : halves->first;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, SplitDepthTest,
                         ::testing::Values(4, 10, 16, 23));

}  // namespace
}  // namespace tenantnet
