// Unit tests for the generational verdict cache: hit/miss accounting, the
// two-tier validation (fast validated_gen compare, slow epoch re-check),
// scoped self-invalidation, eviction, and Clear.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/net/verdict_cache.h"

namespace tenantnet {
namespace {

using Cache = VerdictCache<uint64_t, int>;

// Epochs a test controls by hand: the cache only ever *reads* them.
struct Epochs {
  uint64_t gen = 0;
  uint64_t global = 0;
  uint64_t scope = 0;
};

const int* Lookup(Cache& cache, uint64_t key, const Epochs& e) {
  return cache.Lookup(key, e.gen, e.global, [&] { return e.scope; });
}

void Insert(Cache& cache, uint64_t key, const Epochs& e, int verdict) {
  cache.Insert(key, e.gen, e.global, e.scope, verdict);
}

TEST(VerdictCacheTest, MissThenHit) {
  Cache cache(64);
  Epochs e;
  EXPECT_EQ(Lookup(cache, 1, e), nullptr);
  Insert(cache, 1, e, 42);
  const int* got = Lookup(cache, 1, e);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 42);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(VerdictCacheTest, GenMoveWithUnchangedEpochsRevalidates) {
  Cache cache(64);
  Epochs e;
  Insert(cache, 1, e, 7);
  // Some unrelated scope mutated: gen moved, but this entry's global and
  // scope epochs did not — the entry must survive via revalidation.
  e.gen = 5;
  const int* got = Lookup(cache, 1, e);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 7);
  EXPECT_EQ(cache.stats().revalidations, 1u);
  // Second lookup at the same gen takes the fast path (no revalidation).
  got = Lookup(cache, 1, e);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(cache.stats().revalidations, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(VerdictCacheTest, ScopeEpochBumpInvalidates) {
  Cache cache(64);
  Epochs e;
  Insert(cache, 1, e, 7);
  e.gen = 1;
  e.scope = 1;  // this entry's own scope mutated
  EXPECT_EQ(Lookup(cache, 1, e), nullptr);
  EXPECT_EQ(cache.stats().stale, 1u);
  // The slot was freed: reinsert under the new epochs and hit again.
  Insert(cache, 1, e, 8);
  const int* got = Lookup(cache, 1, e);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 8);
}

TEST(VerdictCacheTest, GlobalEpochBumpInvalidates) {
  Cache cache(64);
  Epochs e;
  Insert(cache, 1, e, 7);
  e.gen = 1;
  e.global = 1;
  EXPECT_EQ(Lookup(cache, 1, e), nullptr);
  EXPECT_EQ(cache.stats().stale, 1u);
}

TEST(VerdictCacheTest, InsertRefreshesExistingKey) {
  Cache cache(64);
  Epochs e;
  Insert(cache, 1, e, 1);
  Insert(cache, 1, e, 2);  // same key: refresh in place, no eviction
  EXPECT_EQ(cache.stats().evictions, 0u);
  const int* got = Lookup(cache, 1, e);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 2);
}

TEST(VerdictCacheTest, SetOverflowEvicts) {
  // Minimal cache: kWays slots = one set; the (kWays+1)-th distinct key
  // must evict.
  Cache cache(1);
  ASSERT_EQ(cache.capacity(), Cache::kWays);
  Epochs e;
  for (uint64_t k = 0; k < Cache::kWays + 1; ++k) {
    Insert(cache, k, e, static_cast<int>(k));
  }
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Still at most kWays entries alive; the newest one is present.
  const int* got = Lookup(cache, Cache::kWays, e);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, static_cast<int>(Cache::kWays));
}

TEST(VerdictCacheTest, ClearDropsEverything) {
  Cache cache(64);
  Epochs e;
  Insert(cache, 1, e, 7);
  cache.Clear();
  EXPECT_EQ(Lookup(cache, 1, e), nullptr);
  // Insert after Clear works (storage re-allocates lazily).
  Insert(cache, 1, e, 9);
  const int* got = Lookup(cache, 1, e);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 9);
}

TEST(VerdictCacheTest, CapacityRoundsUpToPowerOfTwo) {
  Cache cache(100);
  EXPECT_EQ(cache.capacity(), 128u);
}

TEST(VerdictCacheTest, HitRate) {
  Cache cache(64);
  Epochs e;
  Insert(cache, 1, e, 1);
  Lookup(cache, 1, e);  // hit
  Lookup(cache, 2, e);  // miss
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().lookups, 0u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

}  // namespace
}  // namespace tenantnet
