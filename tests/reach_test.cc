// tn_reach unit + differential tests.
//
// The query engines must agree with the data plane they summarize: for EIP
// destinations the declarative CanReach is EXACTLY Evaluate (same verdict,
// same deny-stage name), and the baseline CanReach is EXACTLY the staged
// evaluator. SIP destinations get the ∃/∀ sandwich (all_backends ⇒
// Evaluate delivers ⇒ reachable). Queries must be side-effect-free — no
// pick counter advance, no verdict-cache traffic. And the incremental
// verifiers must land byte-identical to a from-scratch verify while
// recomputing only what the revision hooks dirtied.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/reach/reach.h"
#include "src/routing/route_table.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

std::string DenyName(const ReachVerdict& v) {
  return DenyStages().Name(v.deny_stage);
}

std::string StageNames(const ReachVerdict& v) {
  std::string out;
  for (uint32_t id : v.stages) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += RouteLabels().Name(id);
  }
  return out;
}

// A small declarative deployment: 4 EIP'd instances in two regions, with a
// permit matrix installed, plus one stopped instance and one without an EIP.
struct DeclFixture {
  TestWorld tw;
  ConfigLedger ledger;
  std::unique_ptr<DeclarativeCloud> cloud;
  std::vector<InstanceId> vms;
  std::vector<IpAddress> eips;
  InstanceId stopped;     // running=false, has an EIP
  IpAddress stopped_eip;
  InstanceId bare;        // running, no EIP

  DeclFixture() : tw(BuildTestWorld()) {
    cloud = std::make_unique<DeclarativeCloud>(*tw.world, ledger);
    for (int i = 0; i < 4; ++i) {
      InstanceId vm = *tw.world->LaunchInstance(
          tw.tenant, tw.provider, i % 2 == 0 ? tw.east : tw.west, 0);
      vms.push_back(vm);
      eips.push_back(*cloud->RequestEip(vm));
    }
    stopped = *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
    stopped_eip = *cloud->RequestEip(stopped);
    EXPECT_TRUE(tw.world->SetInstanceRunning(stopped, false).ok());
    bare = *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0);

    // Permit matrix: vm0 -> everyone on 443; vm1 -> vm2 only; vm3 -> nobody.
    for (int dst = 0; dst < 4; ++dst) {
      std::vector<PermitEntry> permits;
      PermitEntry from0;
      from0.source = IpPrefix::Host(eips[0]);
      from0.dst_ports = PortRange::Single(443);
      permits.push_back(from0);
      if (dst == 2) {
        PermitEntry from1;
        from1.source = IpPrefix::Host(eips[1]);
        permits.push_back(from1);
      }
      EXPECT_TRUE(cloud->SetPermitList(eips[dst], permits).ok());
    }
  }
};

// ---------------------------------------------------------------------------
// Declarative engine: exact agreement with Evaluate for EIP destinations.
// ---------------------------------------------------------------------------

TEST(DeclarativeReachTest, EipVerdictsMatchEvaluateExactly) {
  DeclFixture fx;
  DeclarativeReachEngine engine(*fx.tw.world, *fx.cloud);

  for (size_t s = 0; s < fx.vms.size(); ++s) {
    for (size_t d = 0; d < fx.eips.size(); ++d) {
      if (s == d) {
        continue;
      }
      for (uint16_t port : {uint16_t{443}, uint16_t{80}}) {
        SCOPED_TRACE("src=" + std::to_string(s) + " dst=" + std::to_string(d) +
                     " port=" + std::to_string(port));
        ReachVerdict v =
            engine.CanReach(fx.vms[s], fx.eips[d], port, Protocol::kTcp);
        auto e = fx.cloud->Evaluate(fx.vms[s], fx.eips[d], port,
                                    Protocol::kTcp);
        ASSERT_TRUE(e.ok());
        EXPECT_EQ(v.reachable, e->delivered) << v.ToString();
        // EIP destinations are exact: the ∀-bound collapses.
        EXPECT_EQ(v.all_backends, v.reachable);
        if (!v.reachable) {
          EXPECT_EQ(DenyName(v), e->drop_stage) << v.ToString();
          EXPECT_FALSE(v.remediation.empty());
        } else {
          EXPECT_TRUE(v.remediation.empty());
        }
      }
    }
  }
}

TEST(DeclarativeReachTest, ErrorStatusesBecomeEngineDenials) {
  DeclFixture fx;
  DeclarativeReachEngine engine(*fx.tw.world, *fx.cloud);

  // Stopped source: Evaluate errors; the engine denies at "src-down".
  ReachVerdict v =
      engine.CanReach(fx.stopped, fx.eips[0], 443, Protocol::kTcp);
  EXPECT_FALSE(v.reachable);
  EXPECT_EQ(DenyName(v), "src-down");
  EXPECT_FALSE(fx.cloud->Evaluate(fx.stopped, fx.eips[0], 443,
                                  Protocol::kTcp).ok());

  // Source without an EIP.
  v = engine.CanReach(fx.bare, fx.eips[0], 443, Protocol::kTcp);
  EXPECT_FALSE(v.reachable);
  EXPECT_EQ(DenyName(v), "no-eip");

  // Unallocated destination address.
  IpAddress nowhere = IpAddress::V4(0xC0A80001);
  v = engine.CanReach(fx.vms[0], nowhere, 443, Protocol::kTcp);
  EXPECT_FALSE(v.reachable);
  EXPECT_EQ(DenyName(v), "no-such-endpoint");
  auto e = fx.cloud->Evaluate(fx.vms[0], nowhere, 443, Protocol::kTcp);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->drop_stage, "no-such-endpoint");

  // Stopped destination.
  v = engine.CanReach(fx.vms[0], fx.stopped_eip, 443, Protocol::kTcp);
  EXPECT_FALSE(v.reachable);
  EXPECT_EQ(DenyName(v), "instance-down");
  e = fx.cloud->Evaluate(fx.vms[0], fx.stopped_eip, 443, Protocol::kTcp);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->drop_stage, "instance-down");
}

TEST(DeclarativeReachTest, StageTraceNamesTheWalk) {
  DeclFixture fx;
  DeclarativeReachEngine engine(*fx.tw.world, *fx.cloud);

  ReachVerdict ok =
      engine.CanReach(fx.vms[0], fx.eips[1], 443, Protocol::kTcp);
  ASSERT_TRUE(ok.reachable);
  std::string trace = StageNames(ok);
  EXPECT_TRUE(trace.find("src-eip") != std::string::npos) << trace;
  EXPECT_TRUE(trace.find("edge-filter@") != std::string::npos) << trace;
  EXPECT_TRUE(trace.find("deliver") != std::string::npos) << trace;

  ReachVerdict denied =
      engine.CanReach(fx.vms[3], fx.eips[1], 443, Protocol::kTcp);
  ASSERT_FALSE(denied.reachable);
  // The trace ends at the denying stage.
  EXPECT_EQ(RouteLabels().Name(denied.stages.back()), "edge-filter");
}

TEST(DeclarativeReachTest, QueriesLeaveNoDataPlaneTrace) {
  DeclFixture fx;
  IpAddress sip = *fx.cloud->RequestSip(fx.tw.tenant, fx.tw.provider);
  ASSERT_TRUE(fx.cloud->Bind(fx.eips[1], sip).ok());
  ASSERT_TRUE(fx.cloud->Bind(fx.eips[2], sip).ok());
  DeclarativeReachEngine engine(*fx.tw.world, *fx.cloud);

  // Warm up lazily created domains, then pin the counters.
  (void)engine.CanReach(fx.vms[0], sip, 443, Protocol::kTcp);
  EdgeFilterBank& bank = fx.cloud->provider_filters(fx.tw.provider);
  const uint64_t lookups_before = bank.verdict_cache_stats().lookups;
  const uint64_t resolutions_before = fx.cloud->sip_lb().resolutions();

  for (size_t s = 0; s < fx.vms.size(); ++s) {
    for (const IpAddress& dst : fx.eips) {
      (void)engine.CanReach(fx.vms[s], dst, 443, Protocol::kTcp);
    }
    (void)engine.CanReach(fx.vms[s], sip, 443, Protocol::kTcp);
  }

  // Nothing moved: the queries never touched the verdict cache and never
  // advanced the SIP pick counter.
  EXPECT_EQ(bank.verdict_cache_stats().lookups, lookups_before);
  EXPECT_EQ(fx.cloud->sip_lb().resolutions(), resolutions_before);
}

// ---------------------------------------------------------------------------
// SIP semantics: ∃ over healthy backends, ∀-bound in all_backends.
// ---------------------------------------------------------------------------

TEST(DeclarativeReachTest, SipExistentialWithUniversalBound) {
  DeclFixture fx;
  IpAddress sip = *fx.cloud->RequestSip(fx.tw.tenant, fx.tw.provider);
  ASSERT_TRUE(fx.cloud->Bind(fx.eips[1], sip).ok());
  ASSERT_TRUE(fx.cloud->Bind(fx.eips[2], sip).ok());
  DeclarativeReachEngine engine(*fx.tw.world, *fx.cloud);

  // vm1 is permitted at eip2 (any port) but not at eip1 on port 80: some
  // backends admit, not all.
  ReachVerdict v = engine.CanReach(fx.vms[1], sip, 80, Protocol::kTcp);
  EXPECT_TRUE(v.reachable);
  EXPECT_FALSE(v.all_backends);

  // vm0 is permitted on 443 everywhere: all backends admit.
  v = engine.CanReach(fx.vms[0], sip, 443, Protocol::kTcp);
  EXPECT_TRUE(v.reachable);
  EXPECT_TRUE(v.all_backends);
  // The sandwich: all_backends ⇒ the data plane delivers whichever backend
  // the balancer picks.
  auto e = fx.cloud->Evaluate(fx.vms[0], sip, 443, Protocol::kTcp);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->delivered);

  // vm3 is permitted nowhere: no backend admits.
  v = engine.CanReach(fx.vms[3], sip, 443, Protocol::kTcp);
  EXPECT_FALSE(v.reachable);
  EXPECT_EQ(DenyName(v), "edge-filter");

  // All backends down: deny at the balancer.
  fx.cloud->NotifyInstanceDown(fx.vms[1]);
  fx.cloud->NotifyInstanceDown(fx.vms[2]);
  v = engine.CanReach(fx.vms[0], sip, 443, Protocol::kTcp);
  EXPECT_FALSE(v.reachable);
  EXPECT_EQ(DenyName(v), "sip");
  EXPECT_TRUE(v.remediation.find("bind a healthy backend") !=
              std::string::npos)
      << v.remediation;
}

// ---------------------------------------------------------------------------
// Triage tree: each denial class maps to its remediation.
// ---------------------------------------------------------------------------

TEST(ReachTriageTest, TreeShapeIsSane) {
  auto tree = BuildReachTriageTree();
  EXPECT_GE(tree->MaxDepth(), 4u);
  EXPECT_GE(tree->LeafCount(), 7u);
}

TEST(ReachTriageTest, RemediationsNameTheFix) {
  DeclFixture fx;
  DeclarativeReachEngine engine(*fx.tw.world, *fx.cloud);

  auto remediation_of = [&](InstanceId src, IpAddress dst) {
    return engine.CanReach(src, dst, 443, Protocol::kTcp).remediation;
  };

  EXPECT_TRUE(remediation_of(fx.stopped, fx.eips[0])
                  .find("start the source instance") != std::string::npos);
  EXPECT_TRUE(remediation_of(fx.bare, fx.eips[0]).find("request_eip") !=
              std::string::npos);
  EXPECT_TRUE(remediation_of(fx.vms[0], IpAddress::V4(0xC0A80001))
                  .find("unallocated") != std::string::npos);
  EXPECT_TRUE(remediation_of(fx.vms[0], fx.stopped_eip)
                  .find("start the destination instance") !=
              std::string::npos);
  EXPECT_TRUE(remediation_of(fx.vms[3], fx.eips[1])
                  .find("permit list") != std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline engine: exact agreement with the staged evaluator.
// ---------------------------------------------------------------------------

struct BaselineFixture {
  TestWorld tw;
  ConfigLedger ledger;
  std::unique_ptr<BaselineNetwork> net;
  std::vector<InstanceId> instances;
  SecurityGroupId sg;

  BaselineFixture() : tw(BuildTestWorld()) {
    net = std::make_unique<BaselineNetwork>(*tw.world, ledger);
    auto vpc = *net->CreateVpc(tw.tenant, tw.provider, tw.east, "v1",
                               *IpPrefix::Parse("10.0.0.0/16"));
    auto subnet = *net->CreateSubnet(vpc, "s1", 20, 0, false);
    sg = *net->CreateSecurityGroup(vpc, "sg");
    SgRule rule;
    rule.direction = TrafficDirection::kIngress;
    rule.proto = Protocol::kTcp;
    rule.ports = PortRange::Single(443);
    rule.peer = *IpPrefix::Parse("10.0.0.0/16");
    EXPECT_TRUE(net->AddSgRule(sg, rule).ok());
    for (int i = 0; i < 4; ++i) {
      InstanceId id =
          *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
      EXPECT_TRUE(net->AttachInstance(id, subnet, {sg}, false).ok());
      instances.push_back(id);
    }
  }
};

TEST(BaselineReachTest, VerdictsMatchEvaluateExactly) {
  BaselineFixture fx;
  BaselineReachEngine engine(*fx.net);

  for (InstanceId a : fx.instances) {
    for (InstanceId b : fx.instances) {
      if (a == b) {
        continue;
      }
      for (uint16_t port : {uint16_t{443}, uint16_t{80}}) {
        SCOPED_TRACE("src=" + std::to_string(a.value()) +
                     " dst=" + std::to_string(b.value()) +
                     " port=" + std::to_string(port));
        ReachVerdict v = engine.CanReach(a, b, port, Protocol::kTcp);
        auto e = fx.net->Evaluate(a, b, port, Protocol::kTcp);
        ASSERT_TRUE(e.ok());
        EXPECT_EQ(v.reachable, e->delivered) << v.ToString();
        if (!v.reachable) {
          EXPECT_EQ(DenyName(v), e->drop_stage) << v.ToString();
          EXPECT_FALSE(v.remediation.empty());
        } else {
          // The stage trace is the evaluator's hop walk plus "deliver".
          ASSERT_EQ(v.stages.size(), e->logical_hops.size() + 1);
          for (size_t i = 0; i < e->logical_hops.size(); ++i) {
            EXPECT_EQ(RouteLabels().Name(v.stages[i]), e->logical_hops[i]);
          }
          EXPECT_EQ(RouteLabels().Name(v.stages.back()), "deliver");
        }
      }
    }
  }
}

TEST(BaselineReachTest, RefusalsBecomeDenials) {
  BaselineFixture fx;
  BaselineReachEngine engine(*fx.net);

  // Unknown instance.
  ReachVerdict v = engine.CanReach(InstanceId(999999), fx.instances[0], 443,
                                   Protocol::kTcp);
  EXPECT_FALSE(v.reachable);
  EXPECT_EQ(DenyName(v), "no-such-endpoint");

  // Crashed destination.
  ASSERT_TRUE(fx.tw.world->SetInstanceRunning(fx.instances[1], false).ok());
  v = engine.CanReach(fx.instances[0], fx.instances[1], 443, Protocol::kTcp);
  EXPECT_FALSE(v.reachable);
  EXPECT_EQ(DenyName(v), "instance-down");
  EXPECT_TRUE(v.remediation.find("start the destination instance") !=
              std::string::npos)
      << v.remediation;
}

// ---------------------------------------------------------------------------
// Declarative incremental verifier.
// ---------------------------------------------------------------------------

std::vector<DeclarativeReachVerifier::Pair> AllPairs(
    const DeclFixture& fx, const std::vector<IpAddress>& extra_dsts = {}) {
  std::vector<DeclarativeReachVerifier::Pair> pairs;
  for (InstanceId src : fx.tw.world->AllInstances()) {
    for (const IpAddress& dst : fx.eips) {
      pairs.push_back({src, dst, 443, Protocol::kTcp});
    }
    for (const IpAddress& dst : extra_dsts) {
      pairs.push_back({src, dst, 443, Protocol::kTcp});
    }
  }
  return pairs;
}

TEST(DeclarativeVerifierTest, RevalidateRecomputesOnlyDirtyDestinations) {
  DeclFixture fx;
  DeclarativeReachVerifier verifier(*fx.tw.world, *fx.cloud);
  verifier.SetPairs(AllPairs(fx));

  ReachSweepStats stats = verifier.VerifyAll();
  EXPECT_EQ(stats.recomputed, verifier.pairs().size());
  const std::string baseline_fp = verifier.Fingerprint();

  // No mutation: everything reuses.
  stats = verifier.Revalidate();
  EXPECT_EQ(stats.reused, verifier.pairs().size());
  EXPECT_EQ(stats.recomputed, 0u);
  EXPECT_EQ(verifier.Fingerprint(), baseline_fp);

  // Permit churn on one destination dirties exactly that destination's
  // column of the pair matrix.
  PermitEntry extra;
  extra.source = IpPrefix::Host(fx.eips[3]);
  ASSERT_TRUE(fx.cloud->UpdatePermitList(fx.eips[1], {extra}, {}).ok());
  size_t col = 0;
  for (const auto& p : verifier.pairs()) {
    if (p.dst == fx.eips[1]) {
      ++col;
    }
  }
  stats = verifier.Revalidate();
  EXPECT_EQ(stats.recomputed, col);
  EXPECT_EQ(stats.reused, verifier.pairs().size() - col);

  // Byte-identity against a from-scratch verifier.
  DeclarativeReachVerifier fresh(*fx.tw.world, *fx.cloud);
  fresh.SetPairs(AllPairs(fx));
  fresh.VerifyAll();
  EXPECT_EQ(verifier.Fingerprint(), fresh.Fingerprint());

  // vm3 is now permitted at eip1: the verdict actually changed.
  EXPECT_NE(verifier.Fingerprint(), baseline_fp);
}

TEST(DeclarativeVerifierTest, InstanceFlipDirtiesEverything) {
  DeclFixture fx;
  DeclarativeReachVerifier verifier(*fx.tw.world, *fx.cloud);
  verifier.SetPairs(AllPairs(fx));
  verifier.VerifyAll();

  ASSERT_TRUE(fx.tw.world->SetInstanceRunning(fx.vms[2], false).ok());
  ReachSweepStats stats = verifier.Revalidate();
  EXPECT_EQ(stats.recomputed, verifier.pairs().size());

  DeclarativeReachVerifier fresh(*fx.tw.world, *fx.cloud);
  fresh.SetPairs(AllPairs(fx));
  fresh.VerifyAll();
  EXPECT_EQ(verifier.Fingerprint(), fresh.Fingerprint());
}

TEST(DeclarativeVerifierTest, SipPairsTrackBindingAndHealthChurn) {
  DeclFixture fx;
  IpAddress sip = *fx.cloud->RequestSip(fx.tw.tenant, fx.tw.provider);
  ASSERT_TRUE(fx.cloud->Bind(fx.eips[1], sip).ok());
  DeclarativeReachVerifier verifier(*fx.tw.world, *fx.cloud);
  verifier.SetPairs(AllPairs(fx, {sip}));
  verifier.VerifyAll();

  // Binding churn moves the balancer's config revision: SIP-destination
  // pairs recompute, EIP-destination pairs reuse.
  ASSERT_TRUE(fx.cloud->Bind(fx.eips[2], sip).ok());
  size_t sip_pairs = 0;
  for (const auto& p : verifier.pairs()) {
    if (p.dst == sip) {
      ++sip_pairs;
    }
  }
  ReachSweepStats stats = verifier.Revalidate();
  EXPECT_EQ(stats.recomputed, sip_pairs);

  DeclarativeReachVerifier fresh(*fx.tw.world, *fx.cloud);
  fresh.SetPairs(AllPairs(fx, {sip}));
  fresh.VerifyAll();
  EXPECT_EQ(verifier.Fingerprint(), fresh.Fingerprint());
}

// ---------------------------------------------------------------------------
// Baseline incremental verifier: deliberately all-or-nothing.
// ---------------------------------------------------------------------------

TEST(BaselineVerifierTest, AnyChangeRecomputesEverything) {
  BaselineFixture fx;
  BaselineReachVerifier verifier(*fx.net);
  std::vector<BaselineReachVerifier::Pair> pairs;
  for (InstanceId a : fx.instances) {
    for (InstanceId b : fx.instances) {
      if (a != b) {
        pairs.push_back({a, b, 443, Protocol::kTcp});
      }
    }
  }
  verifier.SetPairs(pairs);
  verifier.VerifyAll();

  // Quiet: full reuse.
  ReachSweepStats stats = verifier.Revalidate();
  EXPECT_EQ(stats.reused, pairs.size());

  // One SG rule anywhere: the coarse generation moves and every pair
  // recomputes — the baseline verdict has no per-pair scoping to key on.
  SgRule rule;
  rule.direction = TrafficDirection::kIngress;
  rule.proto = Protocol::kTcp;
  rule.ports = PortRange::Single(80);
  rule.peer = *IpPrefix::Parse("10.0.0.0/16");
  ASSERT_TRUE(fx.net->AddSgRule(fx.sg, rule).ok());
  stats = verifier.Revalidate();
  EXPECT_EQ(stats.recomputed, pairs.size());
  EXPECT_EQ(stats.reused, 0u);

  BaselineReachVerifier fresh(*fx.net);
  fresh.SetPairs(pairs);
  fresh.VerifyAll();
  EXPECT_EQ(verifier.Fingerprint(), fresh.Fingerprint());
}

}  // namespace
}  // namespace tenantnet
