// Differential tests for the incremental route-propagation engine.
//
// The contract under test: an incrementally maintained BgpMesh (Adj-RIB-In
// retention + dirty-queue convergence + delta FIB apply) is byte-identical
// to a from-scratch rebuild of the same configuration — after any mutation
// sequence, including session churn interleaved with fault storms. The
// reference is the same engine run from zero (ConvergeFull /
// PropagateRoutesFull), so equivalence is exact, not approximate.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/cloud/presets.h"
#include "src/common/rng.h"
#include "src/faults/fault_injector.h"
#include "src/routing/bgp.h"
#include "src/sim/flow_sim.h"
#include "src/vnet/builder.h"
#include "src/vnet/fabric.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

IpPrefix P(const char* s) { return *IpPrefix::Parse(s); }

// All Loc-RIBs of a mesh, indexed by speaker, for equality checks.
std::vector<std::map<IpPrefix, BgpRoute>> Snapshot(const BgpMesh& mesh) {
  std::vector<std::map<IpPrefix, BgpRoute>> out;
  for (size_t i = 1; i <= mesh.speaker_count(); ++i) {
    out.push_back(*mesh.LocRib(SpeakerId(i)));
  }
  return out;
}

// The from-scratch reference: copy the mesh's configuration+state, clear
// every RIB, re-flood. Returns the reference Loc-RIBs.
std::vector<std::map<IpPrefix, BgpRoute>> FullReference(const BgpMesh& mesh) {
  BgpMesh reference = mesh;  // same speakers/sessions/origins/policies
  reference.ConvergeFull();
  return Snapshot(reference);
}

void ExpectMatchesFullReference(const BgpMesh& mesh, const std::string& at) {
  SCOPED_TRACE(at);
  std::vector<std::map<IpPrefix, BgpRoute>> incremental = Snapshot(mesh);
  std::vector<std::map<IpPrefix, BgpRoute>> reference = FullReference(mesh);
  ASSERT_EQ(incremental.size(), reference.size());
  for (size_t i = 0; i < incremental.size(); ++i) {
    EXPECT_EQ(incremental[i], reference[i])
        << "Loc-RIB diverges at speaker " << (i + 1);
  }
}

// ---------------------------------------------------------------------------
// Incremental semantics.
// ---------------------------------------------------------------------------

TEST(BgpIncrementalTest, NoOpConvergeDoesNotBumpMutationCount) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  (void)mesh.TakeDeltas();

  uint64_t before = mesh.mutation_count();
  auto stats = mesh.Converge();
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.update_messages, 0u);
  EXPECT_EQ(mesh.mutation_count(), before);
  EXPECT_FALSE(mesh.HasPendingDeltas());
}

TEST(BgpIncrementalTest, ConvergeWithChangesBumpsMutationCountOnce) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  uint64_t before = mesh.mutation_count();
  mesh.Converge();
  EXPECT_EQ(mesh.mutation_count(), before + 1);
}

TEST(BgpIncrementalTest, DeltasReportNetChangesPerSpeaker) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SpeakerId c = mesh.AddSpeaker(300, "c");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.AddSession(b, c).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();

  auto deltas = mesh.TakeDeltas();
  ASSERT_EQ(deltas.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(deltas[i].size(), 1u) << "speaker " << (i + 1);
    EXPECT_EQ(deltas[i][0].prefix, P("10.0.0.0/16"));
    EXPECT_EQ(deltas[i][0].kind, RibDeltaKind::kInstalled);
  }

  ASSERT_TRUE(mesh.WithdrawOrigin(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  deltas = mesh.TakeDeltas();
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(deltas[i].size(), 1u) << "speaker " << (i + 1);
    EXPECT_EQ(deltas[i][0].kind, RibDeltaKind::kWithdrawn);
  }
}

TEST(BgpIncrementalTest, ChangeAndRevertCoalescesToNoDelta) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  (void)mesh.TakeDeltas();

  // Withdraw, converge, re-originate, converge: net change is zero.
  ASSERT_TRUE(mesh.WithdrawOrigin(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  EXPECT_FALSE(mesh.HasPendingDeltas());
  auto deltas = mesh.TakeDeltas();
  for (const auto& per_speaker : deltas) {
    EXPECT_TRUE(per_speaker.empty());
  }
}

TEST(BgpIncrementalTest, RemoveSessionWithdrawsLearnedRoutes) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SpeakerId c = mesh.AddSpeaker(300, "c");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.AddSession(b, c).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  ASSERT_NE(mesh.BestRoute(c, P("10.0.0.0/16")), nullptr);

  ASSERT_TRUE(mesh.RemoveSession(a, b).ok());
  mesh.Converge();
  EXPECT_EQ(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);
  EXPECT_EQ(mesh.BestRoute(c, P("10.0.0.0/16")), nullptr);
  ExpectMatchesFullReference(mesh, "after RemoveSession");

  EXPECT_EQ(mesh.RemoveSession(a, b).code(), StatusCode::kNotFound);
}

TEST(BgpIncrementalTest, DuplicateSessionIsRejected) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  EXPECT_EQ(mesh.AddSession(a, b).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(mesh.AddSession(b, a).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(mesh.session_count(), 1u);
}

TEST(BgpIncrementalTest, LateSessionSyncsExistingBests) {
  // Origins converge first; a session added afterwards must still carry
  // them (the old engine refloooded everything, the new one resyncs).
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  EXPECT_EQ(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);

  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  mesh.Converge();
  const BgpRoute* at_b = mesh.BestRoute(b, P("10.0.0.0/16"));
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->as_path, (std::vector<uint32_t>{100}));
  ExpectMatchesFullReference(mesh, "after late AddSession");
}

TEST(BgpIncrementalTest, SetSessionPolicyResyncsBothDirections) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  ASSERT_TRUE(mesh.Originate(a, P("192.168.0.0/16")).ok());
  mesh.Converge();
  ASSERT_NE(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);

  // a stops exporting 10/16 toward b; the retained route must go away.
  SessionPolicy block_ten;
  block_ten.export_filter = [](const BgpRoute& r) {
    return r.prefix != *IpPrefix::Parse("10.0.0.0/16");
  };
  ASSERT_TRUE(mesh.SetSessionPolicy(a, b, block_ten).ok());
  mesh.Converge();
  EXPECT_EQ(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);
  EXPECT_NE(mesh.BestRoute(b, P("192.168.0.0/16")), nullptr);
  ExpectMatchesFullReference(mesh, "after export filter installed");

  // Clearing the policy brings it back.
  ASSERT_TRUE(mesh.SetSessionPolicy(a, b, SessionPolicy{}).ok());
  mesh.Converge();
  EXPECT_NE(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);
  ExpectMatchesFullReference(mesh, "after export filter cleared");

  EXPECT_EQ(mesh.SetSessionPolicy(a, SpeakerId(77), SessionPolicy{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(BgpIncrementalTest, TieBreakIsDeterministicForEqualAsnPeers) {
  // Two peers with the same ASN advertise the same prefix with equal-length
  // paths: the lower speaker id must win, in the incremental engine and in
  // the full rebuild alike.
  BgpMesh mesh;
  SpeakerId left = mesh.AddSpeaker(500, "left");
  SpeakerId right = mesh.AddSpeaker(500, "right");
  SpeakerId sink = mesh.AddSpeaker(300, "sink");
  ASSERT_TRUE(mesh.AddSession(left, sink).ok());
  ASSERT_TRUE(mesh.AddSession(right, sink).ok());
  ASSERT_TRUE(mesh.Originate(left, P("10.0.0.0/16")).ok());
  ASSERT_TRUE(mesh.Originate(right, P("10.0.0.0/16")).ok());
  mesh.Converge();
  const BgpRoute* best = mesh.BestRoute(sink, P("10.0.0.0/16"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, left);
  ExpectMatchesFullReference(mesh, "equal-ASN tie");
}

TEST(BgpIncrementalTest, AdjRibInRetainsAlternatePathsForRepair) {
  // c hears 10/16 via b and directly from a. When the direct session dies,
  // c must fail over to the retained b path without a global reflood.
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SpeakerId c = mesh.AddSpeaker(300, "c");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.AddSession(b, c).ok());
  ASSERT_TRUE(mesh.AddSession(a, c).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  ASSERT_EQ(mesh.BestRoute(c, P("10.0.0.0/16"))->learned_from, a);
  EXPECT_GT(mesh.TotalAdjRibInEntries(), 0u);

  ASSERT_TRUE(mesh.RemoveSession(a, c).ok());
  auto stats = mesh.Converge();
  EXPECT_TRUE(stats.converged);
  const BgpRoute* repaired = mesh.BestRoute(c, P("10.0.0.0/16"));
  ASSERT_NE(repaired, nullptr);
  EXPECT_EQ(repaired->learned_from, b);
  EXPECT_EQ(repaired->as_path, (std::vector<uint32_t>{200, 100}));
  ExpectMatchesFullReference(mesh, "after failover");
}

// ---------------------------------------------------------------------------
// Seeded mutation fuzz: random originate/withdraw/session/policy churn,
// incremental state compared against the from-scratch reference every K
// steps. TN_SEED narrows to one seed, TN_ITERS scales the op count.
// ---------------------------------------------------------------------------

class BgpMutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BgpMutationFuzzTest, IncrementalMatchesFullReference) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("TN_SEED=" + std::to_string(seed));
  Rng rng(seed);

  constexpr size_t kSpeakers = 10;
  BgpMesh mesh;
  std::vector<SpeakerId> speakers;
  for (size_t i = 0; i < kSpeakers; ++i) {
    speakers.push_back(
        mesh.AddSpeaker(100 + static_cast<uint32_t>(i) * 10,
                        "s" + std::to_string(i)));
  }
  // Connected backbone so withdraws must travel; extra random edges churn.
  for (size_t i = 0; i + 1 < kSpeakers; ++i) {
    ASSERT_TRUE(mesh.AddSession(speakers[i], speakers[i + 1]).ok());
  }

  auto random_prefix = [&rng] {
    return *IpPrefix::Create(
        IpAddress::V4(10, static_cast<uint8_t>(rng.NextU64(8)),
                      static_cast<uint8_t>(rng.NextU64(8)), 0),
        24);
  };
  // Policy pool restricted to benign filters (pure functions of the prefix,
  // no local_pref overrides on a cyclic topology — those can make the BGP
  // fixed point non-unique, which is a property of BGP, not of this
  // engine).
  auto random_policy = [&rng]() {
    SessionPolicy policy;
    switch (rng.NextU64(3)) {
      case 0:
        break;  // accept/export everything
      case 1:
        policy.export_filter = [](const BgpRoute& r) {
          return ((r.prefix.base().v4_bits() >> 16) & 1) == 0;
        };
        break;
      case 2:
        policy.import_filter = [](const BgpRoute& r) {
          return r.as_path.size() < 6;
        };
        break;
    }
    return policy;
  };

  const int64_t iters = test_env::ItersOverride(160);
  constexpr int kCheckEvery = 8;
  for (int64_t step = 0; step < iters; ++step) {
    SpeakerId s = speakers[rng.NextU64(speakers.size())];
    SpeakerId t = speakers[rng.NextU64(speakers.size())];
    switch (rng.NextU64(6)) {
      case 0:
        (void)mesh.Originate(s, random_prefix());
        break;
      case 1:
        (void)mesh.WithdrawOrigin(s, random_prefix());
        break;
      case 2:
        (void)mesh.AddSession(s, t, random_policy(), random_policy());
        break;
      case 3:
        // Never cut the backbone: removing a bridge can partition the mesh,
        // which is fine for correctness but makes the test less sensitive.
        if (s.value() + 1 != t.value() && t.value() + 1 != s.value()) {
          (void)mesh.RemoveSession(s, t);
        }
        break;
      case 4:
        (void)mesh.SetSessionPolicy(s, t, random_policy());
        break;
      case 5:
        mesh.Converge();
        break;
    }
    if (step % kCheckEvery == kCheckEvery - 1) {
      auto stats = mesh.Converge();
      ASSERT_TRUE(stats.converged) << "step " << step;
      ExpectMatchesFullReference(mesh, "step " + std::to_string(step));
    }
  }
  mesh.Converge();
  ExpectMatchesFullReference(mesh, "final");
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpMutationFuzzTest,
                         ::testing::ValuesIn(test_env::SeedList(
                             {3, 17, 1009, 424242})));

// ---------------------------------------------------------------------------
// Fabric-level differential: the Fig. 1 baseline under a fault storm whose
// hooks churn BGP sessions and re-propagate incrementally. Afterwards the
// TGW FIBs and every Loc-RIB must match a full PropagateRoutesFull()
// rebuild byte-for-byte.
// ---------------------------------------------------------------------------

using TgwFib = std::vector<std::pair<IpPrefix, TgwRoute>>;

std::vector<TgwFib> SnapshotTgwFibs(BaselineNetwork& net,
                                    const std::vector<TransitGatewayId>& ids) {
  std::vector<TgwFib> out;
  for (TransitGatewayId id : ids) {
    out.push_back(net.FindTgw(id)->Routes());
  }
  return out;
}

class FabricStormDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FabricStormDifferentialTest, IncrementalFibMatchesFullRebuild) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("TN_SEED=" + std::to_string(seed));

  Fig1World fig = BuildFig1World();
  CloudWorld& world = *fig.world;
  EventQueue queue;
  FlowSim sim(queue, world.topology());
  MetricRegistry metrics;
  ConfigLedger ledger;
  BaselineNetwork net(world, ledger);
  Fig1Baseline handles = *BuildFig1Baseline(net, fig);
  (void)net.PropagateRoutes();

  // The storm hooks emulate session flaps: a gateway restart tears down the
  // inter-cloud TGW peering session, recovery re-establishes it; every
  // reaction re-propagates incrementally.
  SpeakerId tgw_a_speaker = net.FindTgw(handles.tgw_a)->speaker();
  SpeakerId tgw_b_speaker = net.FindTgw(handles.tgw_b)->speaker();
  FaultHooks hooks;
  hooks.on_inject = [&](const FaultSpec& spec) {
    if (spec.kind == FaultKind::kGatewayRestart) {
      (void)net.bgp().RemoveSession(tgw_a_speaker, tgw_b_speaker);
    }
    (void)net.PropagateRoutes();
  };
  hooks.on_recover = [&](const FaultSpec& spec) {
    if (spec.kind == FaultKind::kGatewayRestart) {
      (void)net.bgp().AddSession(tgw_a_speaker, tgw_b_speaker);
    }
    (void)net.PropagateRoutes();
  };
  FaultInjector injector(queue, world.topology(), sim, &world, metrics,
                         std::move(hooks));

  StormParams params;
  params.event_count = static_cast<size_t>(test_env::ItersOverride(40));
  params.window = SimDuration::Seconds(10);
  const Topology& topo = world.topology();
  for (size_t i = 0; i < topo.link_count(); ++i) {
    LinkId id(i + 1);
    if (topo.link(id).cls == LinkClass::kBackbone) {
      params.links.push_back(id);
    }
  }
  for (InstanceId id : fig.spark) {
    params.instances.push_back(id);
  }
  params.gateways = {world.region(fig.a_us_east).edge_node,
                     world.region(fig.b_us_east).edge_node};
  injector.Schedule(FaultSchedule::Storm(seed, params));
  queue.RunAll();

  // Converge whatever the last hook left pending, snapshot, rebuild from
  // scratch, snapshot again: every byte must match.
  (void)net.PropagateRoutes();
  std::vector<TransitGatewayId> tgw_ids = {handles.tgw_a, handles.tgw_b,
                                           handles.tgw_a_eu};
  std::vector<TgwFib> incremental_fibs = SnapshotTgwFibs(net, tgw_ids);
  auto incremental_ribs = Snapshot(net.bgp());

  (void)net.PropagateRoutesFull();
  std::vector<TgwFib> full_fibs = SnapshotTgwFibs(net, tgw_ids);
  auto full_ribs = Snapshot(net.bgp());

  ASSERT_EQ(incremental_ribs.size(), full_ribs.size());
  for (size_t i = 0; i < incremental_ribs.size(); ++i) {
    EXPECT_EQ(incremental_ribs[i], full_ribs[i])
        << "Loc-RIB diverges at speaker " << (i + 1);
  }
  for (size_t i = 0; i < tgw_ids.size(); ++i) {
    ASSERT_EQ(incremental_fibs[i].size(), full_fibs[i].size())
        << "TGW " << i << " FIB size diverges";
    for (size_t r = 0; r < incremental_fibs[i].size(); ++r) {
      EXPECT_EQ(incremental_fibs[i][r].first, full_fibs[i][r].first);
      EXPECT_TRUE(incremental_fibs[i][r].second ==
                  full_fibs[i][r].second)
          << "TGW " << i << " route " << r << " ("
          << incremental_fibs[i][r].first.ToString() << ") diverges";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricStormDifferentialTest,
                         ::testing::ValuesIn(test_env::SeedList({7, 99})));

}  // namespace
}  // namespace tenantnet
