// Tests for TokenBucket and the distributed egress quota manager.

#include <gtest/gtest.h>

#include "src/core/qos.h"

namespace tenantnet {
namespace {

TEST(TokenBucketTest, BurstThenThrottle) {
  TokenBucket bucket(1000.0, 500.0);  // 1kbps, 500-bit burst
  SimTime t0 = SimTime::Epoch();
  EXPECT_TRUE(bucket.TryConsume(500, t0));   // burst available immediately
  EXPECT_FALSE(bucket.TryConsume(100, t0));  // empty now
  // After 0.1s, 100 bits refill.
  SimTime t1 = t0 + SimDuration::Millis(100);
  EXPECT_TRUE(bucket.TryConsume(100, t1));
  EXPECT_FALSE(bucket.TryConsume(1, t1));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(1000.0, 500.0);
  SimTime late = SimTime::Epoch() + SimDuration::Seconds(100);
  EXPECT_DOUBLE_EQ(bucket.AvailableBits(late), 500.0);
}

TEST(TokenBucketTest, LongRunRateIsBounded) {
  TokenBucket bucket(1e6, 1e4);
  double admitted = 0;
  SimTime now = SimTime::Epoch();
  for (int i = 0; i < 10000; ++i) {
    now += SimDuration::Micros(100);  // 1 second total
    if (bucket.TryConsume(200, now)) {
      admitted += 200;
    }
  }
  // Rate 1e6 bps over 1s plus the initial burst.
  EXPECT_LE(admitted, 1e6 + 1e4 + 200);
  EXPECT_GE(admitted, 0.95e6);
}

TEST(TokenBucketTest, SetRateKeepsTokens) {
  TokenBucket bucket(1000.0, 500.0);
  SimTime t0 = SimTime::Epoch();
  bucket.SetRate(2000.0, t0);
  EXPECT_DOUBLE_EQ(bucket.rate_bps(), 2000.0);
  EXPECT_TRUE(bucket.TryConsume(500, t0));  // burst preserved
}

class QuotaTest : public ::testing::Test {
 protected:
  QuotaTest() : qos_(MakeParams()) {
    // Region 1 with 4 enforcement points.
    for (int i = 0; i < 4; ++i) {
      qos_.RegisterPoint(RegionId(1), "zone" + std::to_string(i));
    }
  }
  static QuotaParams MakeParams() {
    QuotaParams p;
    p.epoch = SimDuration::Millis(100);
    p.ewma_alpha = 0.5;
    p.min_share_fraction = 0.04;
    return p;
  }
  EgressQuotaManager qos_;
  TenantId tenant_{1};
  RegionId region_{1};
};

TEST_F(QuotaTest, SetQuotaRequiresPoints) {
  EgressQuotaManager empty;
  EXPECT_EQ(empty.SetQuota(tenant_, RegionId(9), 1e9, SimTime::Epoch()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(empty.Quota(tenant_, RegionId(9)).ok());
}

TEST_F(QuotaTest, InitialSharesAreEqual) {
  ASSERT_TRUE(qos_.SetQuota(tenant_, region_, 8e9, SimTime::Epoch()).ok());
  EXPECT_DOUBLE_EQ(*qos_.Quota(tenant_, region_), 8e9);
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_DOUBLE_EQ(*qos_.ShareOf(tenant_, region_, p), 2e9);
  }
}

TEST_F(QuotaTest, NoQuotaMeansNoEnforcement) {
  EXPECT_TRUE(qos_.TryConsume(TenantId(77), region_, 0, 1e12,
                              SimTime::Epoch()));
}

TEST_F(QuotaTest, SharesFollowDemand) {
  ASSERT_TRUE(qos_.SetQuota(tenant_, region_, 8e9, SimTime::Epoch()).ok());
  SimTime now = SimTime::Epoch();
  // Offer demand only at point 0 for a while.
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int tick = 0; tick < 10; ++tick) {
      now += SimDuration::Millis(10);
      qos_.TryConsume(tenant_, region_, 0, 8e9 * 0.01, now);  // hot point
      qos_.TryConsume(tenant_, region_, 1, 8e9 * 0.0001, now);  // trickle
    }
    qos_.RunEpoch(now);
  }
  double hot = *qos_.ShareOf(tenant_, region_, 0);
  double idle = *qos_.ShareOf(tenant_, region_, 2);
  EXPECT_GT(hot, 0.8 * 8e9);     // demand-proportional division
  EXPECT_GT(idle, 0.0);          // idle floor keeps new traffic startable
  EXPECT_LT(idle, 0.05 * 8e9);
  // Shares never exceed the quota in total.
  double total = 0;
  for (size_t p = 0; p < 4; ++p) {
    total += *qos_.ShareOf(tenant_, region_, p);
  }
  EXPECT_NEAR(total, 8e9, 8e9 * 1e-9);
}

TEST_F(QuotaTest, AggregateAdmissionRespectsQuota) {
  ASSERT_TRUE(qos_.SetQuota(tenant_, region_, 1e9, SimTime::Epoch()).ok());
  SimTime now = SimTime::Epoch();
  // Offer 4x the quota spread over all points for one second.
  for (int tick = 0; tick < 1000; ++tick) {
    now += SimDuration::Millis(1);
    for (size_t p = 0; p < 4; ++p) {
      qos_.TryConsume(tenant_, region_, p, 1e6, now);  // 4 Gbps offered
    }
    if (tick % 100 == 0) {
      qos_.RunEpoch(now);
    }
  }
  double admitted = qos_.AdmittedBits(tenant_, region_);
  double offered = qos_.OfferedBits(tenant_, region_);
  EXPECT_NEAR(offered, 4e9, 1e7);
  // Enforcement accuracy: within burst slack of the 1e9 quota-second.
  EXPECT_LE(admitted, 1.1e9);
  EXPECT_GE(admitted, 0.9e9);
}

TEST_F(QuotaTest, DemandShiftConverges) {
  ASSERT_TRUE(qos_.SetQuota(tenant_, region_, 8e9, SimTime::Epoch()).ok());
  SimTime now = SimTime::Epoch();
  auto drive = [&](size_t hot_point, int epochs) {
    for (int e = 0; e < epochs; ++e) {
      for (int tick = 0; tick < 10; ++tick) {
        now += SimDuration::Millis(10);
        qos_.TryConsume(tenant_, region_, hot_point, 8e7, now);
      }
      qos_.RunEpoch(now);
    }
  };
  drive(0, 15);
  EXPECT_GT(*qos_.ShareOf(tenant_, region_, 0),
            *qos_.ShareOf(tenant_, region_, 3) * 5);
  // Shift all demand to point 3; within a handful of epochs the division
  // follows.
  drive(3, 15);
  EXPECT_GT(*qos_.ShareOf(tenant_, region_, 3),
            *qos_.ShareOf(tenant_, region_, 0) * 5);
}

TEST_F(QuotaTest, CoordinationMessagesScaleWithPointsAndEpochs) {
  ASSERT_TRUE(qos_.SetQuota(tenant_, region_, 1e9, SimTime::Epoch()).ok());
  uint64_t before = qos_.coordination_messages();
  SimTime now = SimTime::Epoch();
  for (int e = 0; e < 10; ++e) {
    now += SimDuration::Millis(100);
    qos_.RunEpoch(now);
  }
  // Each epoch: 4 demand reports + 4 share installs for the one quota.
  EXPECT_EQ(qos_.coordination_messages() - before, 10u * 8u);
}

TEST_F(QuotaTest, MultipleTenantsAreIndependent) {
  TenantId other(2);
  ASSERT_TRUE(qos_.SetQuota(tenant_, region_, 4e9, SimTime::Epoch()).ok());
  ASSERT_TRUE(qos_.SetQuota(other, region_, 1e9, SimTime::Epoch()).ok());
  EXPECT_DOUBLE_EQ(*qos_.Quota(tenant_, region_), 4e9);
  EXPECT_DOUBLE_EQ(*qos_.Quota(other, region_), 1e9);
  EXPECT_DOUBLE_EQ(*qos_.ShareOf(other, region_, 0), 0.25e9);
}

}  // namespace
}  // namespace tenantnet
