// Tests for control-plane warm restart (src/common/reconcile.h protocol,
// src/restart/ coordination).
//
// The invariants:
//   * Checkpoint -> RestoreFromSnapshot -> Checkpoint is a fixed point for
//     every component, from empty through post-storm states.
//   * The data plane keeps serving the frozen state during an outage, and a
//     warm completion never opens a default-off window; a cold completion
//     does (measurably).
//   * Warm and cold completions land on semantically identical state — for
//     the filter bank modulo version numbers (StateFingerprint), for the
//     routing plane byte-for-byte against a PropagateRoutesFull() rebuild.
//   * Overlapping restarts of one component are idempotent: one kill, one
//     reconcile, at the last recovery (FaultInjector ref-counting).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/cloud/presets.h"
#include "src/common/rng.h"
#include "src/core/api.h"
#include "src/core/edge_filter.h"
#include "src/core/sip_lb.h"
#include "src/faults/fault_injector.h"
#include "src/reach/reach.h"
#include "src/restart/warm_restart.h"
#include "src/routing/bgp.h"
#include "src/sim/flow_sim.h"
#include "src/vnet/builder.h"
#include "src/vnet/fabric.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

IpAddress A(const char* s) { return *IpAddress::Parse(s); }
IpPrefix P(const char* s) { return *IpPrefix::Parse(s); }

FiveTuple Flow(const char* src, const char* dst, uint16_t dport,
               Protocol proto = Protocol::kTcp) {
  FiveTuple t;
  t.src = A(src);
  t.dst = A(dst);
  t.src_port = 40000;
  t.dst_port = dport;
  t.proto = proto;
  return t;
}

PermitEntry Permit(const char* source, PortRange ports = PortRange::Any(),
                   Protocol proto = Protocol::kAny) {
  PermitEntry e;
  e.source = P(source);
  e.dst_ports = ports;
  e.proto = proto;
  return e;
}

PermitEntry PermitGroup(EndpointGroupId group) {
  PermitEntry e;
  e.source_group = group;
  return e;
}

// ---------------------------------------------------------------------------
// Fixed point: Checkpoint -> Restore -> Checkpoint.
// ---------------------------------------------------------------------------

TEST(RestartFixedPointTest, EmptyFilterBank) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  FilterBankSnapshot snap = bank.Checkpoint();
  bank.RestoreFromSnapshot(snap);
  EXPECT_TRUE(bank.Checkpoint() == snap);
}

TEST(RestartFixedPointTest, PopulatedFilterBank) {
  EdgeFilterBank bank("p", nullptr, 7);
  bank.AddEdge("e0");
  bank.AddEdge("e1");
  EndpointGroupId web(1);
  bank.SetGroup(web, {A("10.1.0.1"), A("10.1.0.2")});
  bank.SetPermitList(A("5.0.0.1"), {Permit("10.0.0.0/8"), PermitGroup(web)});
  bank.SetPermitList(A("5.0.0.2"), {Permit("192.168.0.0/16",
                                           PortRange{443, 443},
                                           Protocol::kTcp)});
  FilterBankSnapshot snap = bank.Checkpoint();
  bank.RestoreFromSnapshot(snap);
  EXPECT_TRUE(bank.Checkpoint() == snap);
}

TEST(RestartFixedPointTest, EmptyAndPopulatedSipLb) {
  SipLoadBalancer lb;
  SipLbSnapshot empty = lb.Checkpoint();
  lb.RestoreFromSnapshot(empty);
  EXPECT_TRUE(lb.Checkpoint() == empty);

  ASSERT_TRUE(lb.AddSip(A("6.0.0.1")).ok());
  ASSERT_TRUE(lb.Bind(A("10.0.0.1"), A("6.0.0.1"), 2.0).ok());
  ASSERT_TRUE(lb.Bind(A("10.0.0.2"), A("6.0.0.1"), 1.0).ok());
  lb.SetHealth(A("10.0.0.2"), false);
  (void)lb.Resolve(A("6.0.0.1"));  // advance the pick counter
  SipLbSnapshot snap = lb.Checkpoint();
  lb.RestoreFromSnapshot(snap);
  EXPECT_TRUE(lb.Checkpoint() == snap);
  EXPECT_EQ(lb.resolutions(), snap.pick_seq);
}

TEST(RestartFixedPointTest, ConvergedBgpMesh) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SpeakerId c = mesh.AddSpeaker(300, "c");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.AddSession(b, c).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  ASSERT_TRUE(mesh.Originate(c, P("10.2.0.0/16")).ok());
  mesh.Converge();

  BgpMeshSnapshot snap = mesh.Checkpoint();
  mesh.RestoreFromSnapshot(snap);
  EXPECT_TRUE(mesh.Checkpoint() == snap);

  // And an empty mesh is its own fixed point.
  BgpMesh empty;
  BgpMeshSnapshot none = empty.Checkpoint();
  empty.RestoreFromSnapshot(none);
  EXPECT_TRUE(empty.Checkpoint() == none);
}

TEST(RestartFixedPointTest, FabricRoutingSnapshot) {
  Fig1World fig = BuildFig1World();
  ConfigLedger ledger;
  BaselineNetwork net(*fig.world, ledger);
  (void)BuildFig1Baseline(net, fig);
  (void)net.PropagateRoutes();

  RoutingSnapshot snap = net.CheckpointRouting();
  EXPECT_FALSE(snap.fibs.empty());
  net.RestoreRoutingFromSnapshot(snap);
  EXPECT_TRUE(net.CheckpointRouting() == snap);
}

// ---------------------------------------------------------------------------
// Filter bank: outage behavior and completion modes.
// ---------------------------------------------------------------------------

TEST(FilterRestartTest, DataPlaneServesFrozenStateDuringOutage) {
  EdgeFilterBank bank("p", nullptr, 3);
  bank.AddEdge("e0");
  IpAddress endpoint = A("5.0.0.1");
  bank.SetPermitList(endpoint, {Permit("10.0.0.0/8")});
  ASSERT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));

  FilterBankSnapshot snap = bank.Checkpoint();
  bank.BeginRestart();
  EXPECT_TRUE(bank.in_restart());

  // A mutation during the outage buffers: the edge keeps the old verdicts.
  bank.SetPermitList(endpoint, {Permit("172.16.0.0/12")});
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  EXPECT_FALSE(bank.Admits(0, Flow("172.16.9.9", "5.0.0.1", 443)));

  ReconcileStats stats = bank.CompleteRestart(RestartMode::kWarm, snap);
  EXPECT_FALSE(bank.in_restart());
  EXPECT_EQ(stats.replayed_mutations, 1u);
  // The replayed list is now live; no moment admitted nothing.
  EXPECT_FALSE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  EXPECT_TRUE(bank.Admits(0, Flow("172.16.9.9", "5.0.0.1", 443)));
}

TEST(FilterRestartTest, QuietWarmRestartAppliesNothingAndKeepsCaches) {
  EdgeFilterBank bank("p", nullptr, 3);
  bank.AddEdge("e0");
  bank.AddEdge("e1");
  EndpointGroupId web(1);
  bank.SetGroup(web, {A("10.1.0.1")});
  bank.SetPermitList(A("5.0.0.1"), {Permit("10.0.0.0/8"), PermitGroup(web)});

  FilterBankSnapshot snap = bank.Checkpoint();
  uint64_t epoch_before = bank.verdict_epoch();
  bank.BeginRestart();
  ReconcileStats stats = bank.CompleteRestart(RestartMode::kWarm, snap);
  EXPECT_GT(stats.checked, 0u);
  EXPECT_EQ(stats.deltas_applied, 0u);
  // No edge was touched, so no verdict epoch moved: cached verdicts live on.
  EXPECT_EQ(bank.verdict_epoch(), epoch_before);
  EXPECT_TRUE(bank.Checkpoint() == snap);
}

TEST(FilterRestartTest, ColdRestartOpensDefaultOffWindow) {
  EventQueue queue;
  EdgeFilterBank bank("p", &queue, 3);
  bank.AddEdge("e0");
  IpAddress endpoint = A("5.0.0.1");
  bank.SetPermitList(endpoint, {Permit("10.0.0.0/8")});
  queue.RunAll();
  ASSERT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));

  FilterBankSnapshot snap = bank.Checkpoint();
  uint64_t epoch_before = bank.verdict_epoch();

  // Warm first: the flow stays admitted at every instant.
  bank.BeginRestart();
  (void)bank.CompleteRestart(RestartMode::kWarm, snap);
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  queue.RunAll();
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  EXPECT_EQ(bank.verdict_epoch(), epoch_before);

  // Cold: edges are flushed synchronously, re-installs land after install
  // latency — in between, default-off denies the previously admitted flow.
  bank.BeginRestart();
  ReconcileStats stats = bank.CompleteRestart(RestartMode::kCold, snap);
  EXPECT_GT(stats.deltas_applied, 0u);
  EXPECT_FALSE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  EXPECT_GT(bank.verdict_epoch(), epoch_before);
  queue.RunAll();
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  EXPECT_GE(stats.converged_at, SimTime::Epoch());
}

TEST(FilterRestartTest, WarmReconcileRemovesOrphanedEdgeState) {
  EdgeFilterBank bank("p", nullptr, 3);
  bank.AddEdge("e0");
  bank.SetPermitList(A("5.0.0.1"), {Permit("10.0.0.0/8")});
  bank.SetPermitList(A("5.0.0.2"), {Permit("10.0.0.0/8")});
  // Checkpoint holds only the first list: the second is "not in intent"
  // (e.g. installed between checkpoint and crash, then lost with the
  // control plane's memory).
  FilterBankSnapshot snap = bank.Checkpoint();
  bank.RemovePermitList(A("5.0.0.2"));
  FilterBankSnapshot stale = bank.Checkpoint();
  bank.SetPermitList(A("5.0.0.2"), {Permit("10.0.0.0/8")});
  ASSERT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.2", 443)));
  (void)snap;

  bank.BeginRestart();
  ReconcileStats stats = bank.CompleteRestart(RestartMode::kWarm, stale);
  EXPECT_GT(stats.deltas_applied, 0u);
  // The orphaned edge list is swept; intent is authoritative.
  EXPECT_FALSE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.2", 443)));
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
}

// Warm and cold completions of the same outage land on the same semantic
// state (version numbers differ; StateFingerprint is version-free).
// Randomized: identical twin banks, identical op stream, different modes.
class FilterRestartEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilterRestartEquivalenceTest, WarmAndColdAgreeOnSemantics) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("TN_SEED=" + std::to_string(seed));
  const int ops = static_cast<int>(test_env::ItersOverride(60));

  EdgeFilterBank warm("p", nullptr, 1234);
  EdgeFilterBank cold("p", nullptr, 1234);
  for (int e = 0; e < 3; ++e) {
    warm.AddEdge("e" + std::to_string(e));
    cold.AddEdge("e" + std::to_string(e));
  }

  Rng rng(seed);
  auto random_op = [&](EdgeFilterBank& bank, uint64_t draw, uint64_t ep,
                       uint64_t grp) {
    IpAddress endpoint = A(("5.0.0." + std::to_string(1 + ep % 8)).c_str());
    EndpointGroupId group(1 + grp % 4);
    switch (draw % 5) {
      case 0:
        bank.SetPermitList(endpoint, {Permit("10.0.0.0/8"),
                                      PermitGroup(group)});
        break;
      case 1:
        bank.UpdatePermitList(endpoint, {Permit("192.168.0.0/16")},
                              {Permit("10.0.0.0/8")});
        break;
      case 2:
        bank.RemovePermitList(endpoint);
        break;
      case 3:
        bank.SetGroup(group, {A(("10.1.0." + std::to_string(1 + ep % 16))
                                    .c_str())});
        break;
      case 4:
        bank.RemoveGroup(group);
        break;
    }
  };
  // Pre-outage history (identical on both banks).
  for (int i = 0; i < ops; ++i) {
    uint64_t draw = rng.NextU64(1 << 30);
    uint64_t ep = rng.NextU64(1 << 30);
    uint64_t grp = rng.NextU64(1 << 30);
    random_op(warm, draw, ep, grp);
    random_op(cold, draw, ep, grp);
  }
  FilterBankSnapshot warm_snap = warm.Checkpoint();
  FilterBankSnapshot cold_snap = cold.Checkpoint();
  ASSERT_TRUE(warm_snap == cold_snap);

  warm.BeginRestart();
  cold.BeginRestart();
  // Outage-time mutations (buffered, identical).
  for (int i = 0; i < ops / 3; ++i) {
    uint64_t draw = rng.NextU64(1 << 30);
    uint64_t ep = rng.NextU64(1 << 30);
    uint64_t grp = rng.NextU64(1 << 30);
    random_op(warm, draw, ep, grp);
    random_op(cold, draw, ep, grp);
  }
  ReconcileStats ws = warm.CompleteRestart(RestartMode::kWarm, warm_snap);
  ReconcileStats cs = cold.CompleteRestart(RestartMode::kCold, cold_snap);
  EXPECT_EQ(ws.replayed_mutations, cs.replayed_mutations);
  EXPECT_EQ(warm.StateFingerprint(), cold.StateFingerprint());
  // Warm touches at most as much data plane as cold rewrites.
  EXPECT_LE(ws.deltas_applied, cs.deltas_applied);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterRestartEquivalenceTest,
                         ::testing::ValuesIn(test_env::SeedList(
                             {5, 21, 1009})));

// ---------------------------------------------------------------------------
// SIP load balancer: frozen table, stale health, replay validation.
// ---------------------------------------------------------------------------

TEST(SipLbRestartTest, HealthSignalsGoStaleDuringOutage) {
  SipLoadBalancer lb;
  IpAddress sip = A("6.0.0.1");
  ASSERT_TRUE(lb.AddSip(sip).ok());
  ASSERT_TRUE(lb.Bind(A("10.0.0.1"), sip).ok());
  ASSERT_TRUE(lb.Bind(A("10.0.0.2"), sip).ok());

  SipLbSnapshot snap = lb.Checkpoint();
  lb.BeginRestart();
  // Backend 2 dies mid-outage; the frozen table keeps resolving to it.
  lb.SetHealth(A("10.0.0.2"), false);
  bool resolved_stale = false;
  for (int i = 0; i < 16; ++i) {
    Result<IpAddress> r = lb.Resolve(sip);
    ASSERT_TRUE(r.ok());
    resolved_stale = resolved_stale || *r == A("10.0.0.2");
  }
  EXPECT_TRUE(resolved_stale);  // the measurable stale-backend window

  uint64_t picks = lb.resolutions();
  ReconcileStats stats = lb.CompleteRestart(RestartMode::kWarm, snap);
  EXPECT_EQ(stats.replayed_mutations, 1u);
  EXPECT_EQ(stats.dropped_mutations, 0u);
  // Reconciled: the dead backend is never picked again...
  for (int i = 0; i < 16; ++i) {
    Result<IpAddress> r = lb.Resolve(sip);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, A("10.0.0.1"));
  }
  // ...and the pick counter continued (data-plane state, not replayed).
  EXPECT_GT(lb.resolutions(), picks);
}

TEST(SipLbRestartTest, InvalidBufferedOpsDropAtReplay) {
  SipLoadBalancer lb;
  IpAddress sip = A("6.0.0.1");
  ASSERT_TRUE(lb.AddSip(sip).ok());
  ASSERT_TRUE(lb.Bind(A("10.0.0.1"), sip).ok());
  SipLbSnapshot snap = lb.Checkpoint();

  lb.BeginRestart();
  // Remove the SIP, then bind to it: the bind is invalid by replay time
  // (it would have failed synchronously outside the outage).
  EXPECT_TRUE(lb.RemoveSip(sip).ok());
  EXPECT_TRUE(lb.Bind(A("10.0.0.9"), sip).ok());
  ReconcileStats stats = lb.CompleteRestart(RestartMode::kWarm, snap);
  EXPECT_EQ(stats.replayed_mutations, 2u);
  EXPECT_EQ(stats.dropped_mutations, 1u);
  EXPECT_FALSE(lb.IsSip(sip));
}

TEST(SipLbRestartTest, WarmAndColdAgreeOnBindings) {
  SipLoadBalancer warm;
  SipLoadBalancer cold;
  for (SipLoadBalancer* lb : {&warm, &cold}) {
    ASSERT_TRUE(lb->AddSip(A("6.0.0.1")).ok());
    ASSERT_TRUE(lb->Bind(A("10.0.0.1"), A("6.0.0.1"), 2.0).ok());
    ASSERT_TRUE(lb->AddSip(A("6.0.0.2")).ok());
    ASSERT_TRUE(lb->Bind(A("10.0.0.2"), A("6.0.0.2")).ok());
  }
  SipLbSnapshot snap = warm.Checkpoint();
  ASSERT_TRUE(snap == cold.Checkpoint());
  for (SipLoadBalancer* lb : {&warm, &cold}) {
    lb->BeginRestart();
    EXPECT_TRUE(lb->Unbind(A("10.0.0.2"), A("6.0.0.2")).ok());
    EXPECT_TRUE(lb->Bind(A("10.0.0.3"), A("6.0.0.2")).ok());
    lb->UnbindEverywhere(A("10.0.0.1"));
  }
  ReconcileStats ws = warm.CompleteRestart(RestartMode::kWarm, snap);
  ReconcileStats cs = cold.CompleteRestart(RestartMode::kCold, snap);
  EXPECT_TRUE(warm.Checkpoint() == cold.Checkpoint());
  EXPECT_LE(ws.deltas_applied, cs.deltas_applied);
}

// ---------------------------------------------------------------------------
// Reachability across warm restart: every CanReach verdict — including its
// full stage trace — must be byte-identical before and after a quiet warm
// restart of the filter bank and the SIP load balancer, and the reach
// verifier must not recompute EIP pairs the restart provably left alone.
// ---------------------------------------------------------------------------

TEST(ReachRestartTest, QuietWarmRestartPreservesEveryVerdict) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);

  std::vector<InstanceId> vms;
  std::vector<IpAddress> eips;
  for (int i = 0; i < 4; ++i) {
    InstanceId id =
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
    vms.push_back(id);
    eips.push_back(*cloud.RequestEip(id));
  }
  IpAddress sip = *cloud.RequestSip(tw.tenant, tw.provider);
  ASSERT_TRUE(cloud.Bind(eips[0], sip).ok());
  ASSERT_TRUE(cloud.Bind(eips[1], sip).ok());
  // A mixed permit matrix so the sweep holds both verdict polarities.
  for (size_t d = 0; d < eips.size(); ++d) {
    std::vector<PermitEntry> entries;
    if (d % 2 == 0) {
      PermitEntry e;
      e.source = IpPrefix::Host(eips[(d + 1) % eips.size()]);
      e.dst_ports = PortRange::Single(443);
      entries.push_back(e);
    }
    ASSERT_TRUE(cloud.SetPermitList(eips[d], entries).ok());
  }

  DeclarativeReachVerifier verifier(*tw.world, cloud);
  std::vector<DeclarativeReachVerifier::Pair> pairs;
  for (InstanceId src : vms) {
    for (const IpAddress& dst : eips) {
      pairs.push_back({src, dst, 443, Protocol::kTcp});
    }
    pairs.push_back({src, sip, 443, Protocol::kTcp});
  }
  verifier.SetPairs(pairs);
  ReachSweepStats initial = verifier.VerifyAll();
  EXPECT_EQ(initial.recomputed, pairs.size());
  const std::string before = verifier.Fingerprint();

  // Quiet warm restart of both control-plane components: checkpoint, an
  // outage with no buffered mutations, warm completion.
  EdgeFilterBank& bank = cloud.provider_filters(tw.provider);
  FilterBankSnapshot bank_snap = bank.Checkpoint();
  bank.BeginRestart();
  ReconcileStats bank_stats =
      bank.CompleteRestart(RestartMode::kWarm, bank_snap);
  EXPECT_EQ(bank_stats.deltas_applied, 0u);

  SipLbSnapshot lb_snap = cloud.sip_lb().Checkpoint();
  cloud.sip_lb().BeginRestart();
  (void)cloud.sip_lb().CompleteRestart(RestartMode::kWarm, lb_snap);

  // Identity: the incremental revalidation lands on the exact bytes of the
  // pre-restart sweep, and so does a from-scratch verifier.
  ReachSweepStats after = verifier.Revalidate();
  EXPECT_EQ(verifier.Fingerprint(), before);

  // Scoping: the quiet bank restart moved no verdict epoch, so every EIP
  // destination is reused; at most the SIP column recomputes (the load
  // balancer's restart path touches its config revision).
  const size_t sip_pairs = vms.size();
  EXPECT_LE(after.recomputed, sip_pairs);
  EXPECT_GE(after.reused, pairs.size() - sip_pairs);

  DeclarativeReachVerifier fresh(*tw.world, cloud);
  fresh.SetPairs(pairs);
  (void)fresh.VerifyAll();
  EXPECT_EQ(fresh.Fingerprint(), before);
}

// ---------------------------------------------------------------------------
// Routing plane: graceful restart + reconcile vs the full-rebuild oracle.
// ---------------------------------------------------------------------------

using TgwFib = std::vector<std::pair<IpPrefix, TgwRoute>>;

std::vector<std::map<IpPrefix, BgpRoute>> RibSnapshot(const BgpMesh& mesh) {
  std::vector<std::map<IpPrefix, BgpRoute>> out;
  for (size_t i = 1; i <= mesh.speaker_count(); ++i) {
    out.push_back(*mesh.LocRib(SpeakerId(i)));
  }
  return out;
}

void ExpectMatchesFullRebuild(BaselineNetwork& net, const std::string& at) {
  SCOPED_TRACE(at);
  auto reconciled_ribs = RibSnapshot(net.bgp());
  RoutingSnapshot reconciled = net.CheckpointRouting();

  (void)net.PropagateRoutesFull();
  auto full_ribs = RibSnapshot(net.bgp());
  RoutingSnapshot full = net.CheckpointRouting();

  ASSERT_EQ(reconciled_ribs.size(), full_ribs.size());
  for (size_t i = 0; i < reconciled_ribs.size(); ++i) {
    EXPECT_EQ(reconciled_ribs[i], full_ribs[i])
        << "Loc-RIB diverges at speaker " << (i + 1);
  }
  ASSERT_EQ(reconciled.fibs.size(), full.fibs.size());
  for (size_t i = 0; i < reconciled.fibs.size(); ++i) {
    EXPECT_TRUE(reconciled.fibs[i] == full.fibs[i])
        << "TGW FIB " << i << " diverges";
  }
}

TEST(RoutingRestartTest, MutationsBufferDuringOutageAndReplayOnComplete) {
  Fig1World fig = BuildFig1World();
  ConfigLedger ledger;
  BaselineNetwork net(*fig.world, ledger);
  Fig1Baseline handles = *BuildFig1Baseline(net, fig);
  (void)net.PropagateRoutes();
  (void)handles;

  RoutingSnapshot snap = net.CheckpointRouting();
  net.BeginRoutingRestart();
  EXPECT_TRUE(net.routing_in_restart());

  // A prefix originated mid-outage: accepted (buffered), not converged.
  SpeakerId origin(1);
  IpPrefix late = P("203.0.113.0/24");
  EXPECT_TRUE(net.bgp().Originate(origin, late).ok());
  auto stats = net.PropagateRoutes();  // no-op while down
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(net.bgp().BestRoute(origin, late), nullptr);

  ReconcileStats rs =
      net.CompleteRoutingRestart(RestartMode::kWarm, snap);
  EXPECT_FALSE(net.routing_in_restart());
  EXPECT_EQ(rs.replayed_mutations, 1u);
  EXPECT_NE(net.bgp().BestRoute(origin, late), nullptr);
  ExpectMatchesFullRebuild(net, "after warm completion with replay");
}

TEST(RoutingRestartTest, QuietWarmRestartTouchesNoFib) {
  Fig1World fig = BuildFig1World();
  ConfigLedger ledger;
  BaselineNetwork net(*fig.world, ledger);
  (void)BuildFig1Baseline(net, fig);
  (void)net.PropagateRoutes();

  RoutingSnapshot snap = net.CheckpointRouting();
  uint64_t epoch_before = net.config_epoch();
  uint64_t bgp_mutations_before = net.bgp().mutation_count();
  net.BeginRoutingRestart();
  ReconcileStats rs = net.CompleteRoutingRestart(RestartMode::kWarm, snap);
  EXPECT_GT(rs.checked, 0u);
  EXPECT_EQ(rs.deltas_applied, 0u);
  // No FIB write, no revision bump: baseline verdict caches survive.
  EXPECT_EQ(net.config_epoch(), epoch_before);
  EXPECT_EQ(net.bgp().mutation_count(), bgp_mutations_before);
  EXPECT_TRUE(net.CheckpointRouting() == snap);
}

// Satellite oracle: storm + session churn + control-plane restarts, then
// warm reconcile — the result must match a from-scratch rebuild exactly.
class RoutingRestartOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoutingRestartOracleTest, WarmReconcileMatchesFullRebuildAfterStorm) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("TN_SEED=" + std::to_string(seed));

  Fig1World fig = BuildFig1World();
  CloudWorld& world = *fig.world;
  EventQueue queue;
  FlowSim sim(queue, world.topology());
  MetricRegistry metrics;
  ConfigLedger ledger;
  BaselineNetwork net(world, ledger);
  Fig1Baseline handles = *BuildFig1Baseline(net, fig);
  (void)net.PropagateRoutes();

  WarmRestartCoordinator coordinator(queue, metrics, RestartMode::kWarm);
  uint32_t routing =
      coordinator.Register(MakeRoutingComponent("routing", net));

  SpeakerId tgw_a_speaker = net.FindTgw(handles.tgw_a)->speaker();
  SpeakerId tgw_b_speaker = net.FindTgw(handles.tgw_b)->speaker();
  FaultHooks hooks;
  hooks.on_inject = [&](const FaultSpec& spec) {
    if (spec.kind == FaultKind::kGatewayRestart) {
      (void)net.bgp().RemoveSession(tgw_a_speaker, tgw_b_speaker);
    }
    (void)net.PropagateRoutes();  // no-op while the routing plane is down
  };
  hooks.on_recover = [&](const FaultSpec& spec) {
    if (spec.kind == FaultKind::kGatewayRestart) {
      (void)net.bgp().AddSession(tgw_a_speaker, tgw_b_speaker);
    }
    (void)net.PropagateRoutes();
  };
  coordinator.WireHooks(hooks);
  FaultInjector injector(queue, world.topology(), sim, &world, metrics,
                         std::move(hooks));

  StormParams params;
  params.event_count = static_cast<size_t>(test_env::ItersOverride(40));
  params.window = SimDuration::Seconds(10);
  const Topology& topo = world.topology();
  for (size_t i = 0; i < topo.link_count(); ++i) {
    LinkId id(i + 1);
    if (topo.link(id).cls == LinkClass::kBackbone) {
      params.links.push_back(id);
    }
  }
  params.gateways = {world.region(fig.a_us_east).edge_node,
                     world.region(fig.b_us_east).edge_node};
  params.restart_components = {routing};
  injector.Schedule(FaultSchedule::Storm(seed, params));
  queue.RunAll();

  EXPECT_GT(coordinator.restarts_begun(), 0u);
  EXPECT_EQ(coordinator.restarts_begun(), coordinator.restarts_completed());
  EXPECT_FALSE(net.routing_in_restart());

  (void)net.PropagateRoutes();  // drain whatever the last hook left pending
  ExpectMatchesFullRebuild(net, "after storm with warm restarts");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingRestartOracleTest,
                         ::testing::ValuesIn(test_env::SeedList(
                             {7, 99, 4242})));

// ---------------------------------------------------------------------------
// FaultInjector + coordinator: idempotent overlapping restarts.
// ---------------------------------------------------------------------------

TEST(RestartFaultTest, OverlappingRestartsOfOneComponentReconcileOnce) {
  TestWorld tw = BuildTestWorld();
  Topology& topo = tw.world->topology();
  EventQueue queue;
  FlowSim sim(queue, topo);
  MetricRegistry metrics;

  EdgeFilterBank bank("p", &queue, 11);
  bank.AddEdge("e0");
  bank.SetPermitList(A("5.0.0.1"), {Permit("10.0.0.0/8")});
  queue.RunAll();

  WarmRestartCoordinator coordinator(queue, metrics, RestartMode::kWarm);
  uint32_t filters =
      coordinator.Register(MakeFilterBankComponent("filters", bank));

  FaultHooks hooks;
  coordinator.WireHooks(hooks);
  FaultInjector injector(queue, topo, sim, tw.world.get(), metrics,
                         std::move(hooks));

  FaultSpec first;
  first.kind = FaultKind::kControlPlaneRestart;
  first.component = filters;
  first.duration = SimDuration::Seconds(1);
  FaultSpec second = first;
  second.duration = SimDuration::Seconds(3);

  injector.InjectNow(first);
  injector.InjectNow(second);  // overlapping: same component, longer outage
  EXPECT_TRUE(coordinator.InRestart(filters));
  EXPECT_EQ(coordinator.restarts_begun(), 1u);

  // After the first recovery the component must still be down (the second
  // fault holds the ref); only the last recovery reconciles.
  queue.RunUntil(SimTime::Epoch() + SimDuration::Seconds(2));
  EXPECT_TRUE(coordinator.InRestart(filters));
  EXPECT_EQ(coordinator.restarts_completed(), 0u);

  queue.RunAll();
  EXPECT_FALSE(coordinator.InRestart(filters));
  EXPECT_EQ(coordinator.restarts_begun(), 1u);
  EXPECT_EQ(coordinator.restarts_completed(), 1u);
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  EXPECT_EQ(coordinator.outage_ms(filters).count(), 1u);
}

TEST(RestartFaultTest, CoordinatorBeginAndCompleteAreIdempotent) {
  EventQueue queue;
  MetricRegistry metrics;
  SipLoadBalancer lb;
  ASSERT_TRUE(lb.AddSip(A("6.0.0.1")).ok());

  WarmRestartCoordinator coordinator(queue, metrics);
  uint32_t id = coordinator.Register(MakeSipLbComponent("lb", lb));
  coordinator.BeginRestart(id);
  coordinator.BeginRestart(id);  // second kill extends the same outage
  EXPECT_EQ(coordinator.restarts_begun(), 1u);
  EXPECT_TRUE(lb.in_restart());

  (void)coordinator.CompleteRestart(id);
  EXPECT_FALSE(lb.in_restart());
  ReconcileStats again = coordinator.CompleteRestart(id);  // no-op
  EXPECT_EQ(again.checked + again.deltas_applied + again.replayed_mutations,
            0u);
  EXPECT_EQ(coordinator.restarts_completed(), 1u);
}

TEST(RestartFaultTest, StormDrawsRestartKindDeterministically) {
  StormParams p;
  p.event_count = 50;
  p.restart_components = {0, 1, 2};
  FaultSchedule a = FaultSchedule::Storm(17, p);
  FaultSchedule b = FaultSchedule::Storm(17, p);
  ASSERT_EQ(a.events.size(), 50u);
  size_t restarts = 0;
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].component, b.events[i].component);
    if (a.events[i].kind == FaultKind::kControlPlaneRestart) {
      ++restarts;
      EXPECT_LT(a.events[i].component, 3u);
    }
  }
  EXPECT_GT(restarts, 0u);
}

}  // namespace
}  // namespace tenantnet
