// Tests for the attack driver itself (world-independent).

#include <gtest/gtest.h>

#include <set>

#include "src/secsim/attack.h"

namespace tenantnet {
namespace {

TEST(AttackTest, FloodUsesManySpoofedSources) {
  AttackConfig config;
  config.kind = AttackKind::kVolumetricFlood;
  config.target = IpAddress::V4(5, 0, 0, 1);
  config.attempts = 500;
  std::set<std::string> sources;
  auto network = [&sources](const FiveTuple& flow,
                            const std::string&) -> NetworkVerdict {
    sources.insert(flow.src.ToString());
    return {false, "edge"};
  };
  AttackOutcome outcome = RunAttack(config, network, nullptr);
  EXPECT_EQ(outcome.attempts, 500u);
  EXPECT_GT(sources.size(), 400u);  // near-unique spoofed sources
  EXPECT_EQ(outcome.dropped_by_stage.at("edge"), 500u);
  EXPECT_DOUBLE_EQ(outcome.ReachRate(), 0.0);
}

TEST(AttackTest, PortScanSweepsPorts) {
  AttackConfig config;
  config.kind = AttackKind::kPortScan;
  config.target = IpAddress::V4(5, 0, 0, 1);
  config.attempts = 1000;
  std::set<uint16_t> ports;
  auto network = [&ports](const FiveTuple& flow,
                          const std::string&) -> NetworkVerdict {
    ports.insert(flow.dst_port);
    return {flow.dst_port == 443, "closed"};
  };
  AttackOutcome outcome = RunAttack(config, network, nullptr);
  EXPECT_EQ(ports.size(), 1000u);
  EXPECT_EQ(outcome.reached_endpoint, 1u);  // only the open port
}

TEST(AttackTest, AppCheckSeparatesReachedFromServed) {
  AttackConfig config;
  config.kind = AttackKind::kUnauthorizedAccess;
  config.target = IpAddress::V4(5, 0, 0, 1);
  config.insider_source = IpAddress::V4(10, 0, 0, 9);
  config.attempts = 100;
  config.token = "not-a-real-token";
  auto network = [](const FiveTuple&, const std::string&) -> NetworkVerdict {
    return {true, "delivered"};
  };
  auto app = [](const ApiRequest&) { return GatewayVerdict::kUnauthenticated; };
  AttackOutcome outcome = RunAttack(config, network, app);
  EXPECT_EQ(outcome.reached_endpoint, 100u);
  EXPECT_EQ(outcome.served, 0u);
  EXPECT_EQ(outcome.app_rejections.at("unauthenticated"), 100u);
  EXPECT_DOUBLE_EQ(outcome.ReachRate(), 1.0);
  EXPECT_DOUBLE_EQ(outcome.ServeRate(), 0.0);
}

TEST(AttackTest, StolenCredentialComesFromBotnetSources) {
  AttackConfig config;
  config.kind = AttackKind::kStolenCredential;
  config.target = IpAddress::V4(5, 0, 0, 1);
  config.attempts = 200;
  config.token = "stolen";
  std::set<std::string> sources;
  auto network = [&](const FiveTuple& flow,
                     const std::string&) -> NetworkVerdict {
    sources.insert(flow.src.ToString());
    return {true, "delivered"};
  };
  auto app = [](const ApiRequest& r) {
    return r.token == "stolen" ? GatewayVerdict::kAccepted
                               : GatewayVerdict::kUnauthenticated;
  };
  AttackOutcome outcome = RunAttack(config, network, app);
  EXPECT_GT(sources.size(), 150u);
  EXPECT_EQ(outcome.served, 200u);  // API auth alone cannot stop it
}

TEST(AttackTest, Names) {
  EXPECT_EQ(AttackKindName(AttackKind::kVolumetricFlood), "volumetric-flood");
  EXPECT_EQ(AttackKindName(AttackKind::kPortScan), "port-scan");
  EXPECT_EQ(AttackKindName(AttackKind::kUnauthorizedAccess),
            "unauthorized-access");
  EXPECT_EQ(AttackKindName(AttackKind::kStolenCredential),
            "stolen-credential");
}

}  // namespace
}  // namespace tenantnet
