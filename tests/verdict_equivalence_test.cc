// Randomized cached-vs-uncached equivalence for the verdict fast path.
//
// The property: after ANY interleaving of verdict-affecting mutations the
// cached entry point must agree with the uncached evaluation — in the edge
// world Admits == AdmitsUncached == AdmitsLinear (compiled matcher and the
// original linear scan), in the baseline world Evaluate == EvaluateUncached.
// Mutations include permit-list and group churn with in-flight replication
// (partial queue drains), fault-injector storms over a declarative cloud,
// and SG/ACL/route/instance-state churn against the baseline fabric. If an
// epoch bump is ever missed, a stale cached verdict survives and one of
// these comparisons fails.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/common/rng.h"
#include "src/core/api.h"
#include "src/core/edge_filter.h"
#include "src/faults/fault_injector.h"
#include "src/reach/reach.h"
#include "src/sim/flow_sim.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

IpAddress Endpoint(uint64_t i) {
  return IpAddress::V4(static_cast<uint32_t>(0x05000000 + i));
}
IpAddress Source(uint64_t i) {
  return IpAddress::V4(static_cast<uint32_t>(0x0A000000 + i));
}

// Random permit entry over small pools so lists collide and overlap often.
PermitEntry RandomEntry(Rng& rng, size_t n_sources, size_t n_groups) {
  PermitEntry e;
  switch (rng.NextU64(4)) {
    case 0:  // host prefix
      e.source = IpPrefix::Host(Source(rng.NextU64(n_sources)));
      break;
    case 1:  // short covering prefix (many flows match)
      e.source = *IpPrefix::Create(Source(0), 24 - static_cast<int>(
                                                  rng.NextU64(9)));
      break;
    case 2:  // group reference
      e.source_group = EndpointGroupId(1 + rng.NextU64(n_groups));
      break;
    default:  // non-matching prefix (pure noise in the trie)
      e.source = IpPrefix::Host(
          IpAddress::V4(static_cast<uint32_t>(0x0C000000 + rng.NextU64(64))));
      break;
  }
  if (rng.NextBool(0.5)) {
    e.proto = rng.NextBool(0.5) ? Protocol::kTcp : Protocol::kUdp;
  }
  if (rng.NextBool(0.5)) {
    e.dst_ports = PortRange::Single(rng.NextBool(0.5) ? 443 : 8080);
  }
  return e;
}

FiveTuple RandomFlow(Rng& rng, size_t n_endpoints, size_t n_sources) {
  FiveTuple flow;
  flow.dst = Endpoint(rng.NextU64(n_endpoints));
  flow.src = rng.NextBool(0.8)
                 ? Source(rng.NextU64(n_sources))
                 : IpAddress::V4(static_cast<uint32_t>(0x0C000000 +
                                                       rng.NextU64(64)));
  flow.src_port = 40000;
  flow.dst_port = rng.NextBool(0.5) ? 443 : (rng.NextBool(0.5) ? 8080 : 80);
  flow.proto = rng.NextBool(0.7) ? Protocol::kTcp : Protocol::kUdp;
  return flow;
}

// ---------------------------------------------------------------------------
// Edge world: raw bank, permit/group churn with in-flight replication.
// ---------------------------------------------------------------------------

class EdgeEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdgeEquivalenceTest, CachedMatchesCompiledMatchesLinear) {
  const size_t kEndpoints = 24;
  const size_t kSources = 20;
  const size_t kGroups = 3;
  Rng rng(GetParam());

  EventQueue queue;
  EdgeFilterBank bank("p", &queue, GetParam());
  bank.AddEdge("e0");
  bank.AddEdge("e1");
  bank.AddEdge("e2");

  for (int round = 0; round < 80; ++round) {
    // One mutation per round.
    switch (rng.NextU64(6)) {
      case 0:
      case 1: {  // install/replace a list (most common op)
        std::vector<PermitEntry> entries;
        for (uint64_t i = 0, n = rng.NextU64(6); i < n; ++i) {
          entries.push_back(RandomEntry(rng, kSources, kGroups));
        }
        bank.SetPermitList(Endpoint(rng.NextU64(kEndpoints)),
                           std::move(entries));
        break;
      }
      case 2:
        bank.RemovePermitList(Endpoint(rng.NextU64(kEndpoints)));
        break;
      case 3: {  // replace a group's membership
        std::vector<IpAddress> members;
        for (uint64_t i = 0, n = rng.NextU64(8); i < n; ++i) {
          members.push_back(Source(rng.NextU64(kSources)));
        }
        bank.SetGroup(EndpointGroupId(1 + rng.NextU64(kGroups)),
                      std::move(members));
        break;
      }
      case 4:
        bank.RemoveGroup(EndpointGroupId(1 + rng.NextU64(kGroups)));
        break;
      default: {  // incremental update
        std::vector<PermitEntry> add;
        if (rng.NextBool(0.7)) {
          add.push_back(RandomEntry(rng, kSources, kGroups));
        }
        bank.UpdatePermitList(Endpoint(rng.NextU64(kEndpoints)),
                              std::move(add), {});
        break;
      }
    }
    // Drain the replication queue only partially: queries below run while
    // some applies are still in flight, so cached verdicts must track each
    // edge's *applied* state, not the send-time intent.
    queue.RunUntil(queue.now() + SimDuration::Millis(rng.NextU64(25)));

    for (int q = 0; q < 30; ++q) {
      FiveTuple flow = RandomFlow(rng, kEndpoints, kSources);
      size_t edge = rng.NextU64(3);
      bool linear = bank.AdmitsLinear(edge, flow);
      bool compiled = bank.AdmitsUncached(edge, flow);
      bool cached = bank.Admits(edge, flow);
      ASSERT_EQ(compiled, linear)
          << "compiled matcher diverged at round " << round << " flow "
          << flow.ToString();
      ASSERT_EQ(cached, linear)
          << "cached verdict diverged at round " << round << " flow "
          << flow.ToString();
    }
  }
  queue.RunAll();
  // Converged end state still agrees everywhere.
  for (int q = 0; q < 200; ++q) {
    FiveTuple flow = RandomFlow(rng, kEndpoints, kSources);
    size_t edge = rng.NextU64(3);
    bool linear = bank.AdmitsLinear(edge, flow);
    ASSERT_EQ(bank.AdmitsUncached(edge, flow), linear);
    ASSERT_EQ(bank.Admits(edge, flow), linear);
  }
  // The cache did real work (this is a property test, not a no-op pass).
  EXPECT_GT(bank.verdict_cache_stats().hits, 0u);
  EXPECT_GT(bank.verdict_cache_stats().stale, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeEquivalenceTest,
                         ::testing::Values(1, 7, 42, 1234));

// ---------------------------------------------------------------------------
// Edge world under a fault storm: control-plane degradation delays and
// drops replication messages while permits churn.
// ---------------------------------------------------------------------------

TEST(EdgeEquivalenceTest, HoldsThroughFaultInjectorStorm) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  EventQueue queue;
  DeclarativeParams dparams;
  dparams.filter.degraded_drop_prob = 0.5;
  DeclarativeCloud cloud(*tw.world, ledger, &queue, dparams);
  FlowSim sim(queue, tw.world->topology());
  MetricRegistry metrics;

  // A few instances with EIPs and permits between them.
  std::vector<IpAddress> eips;
  std::vector<InstanceId> instances;
  for (int i = 0; i < 6; ++i) {
    InstanceId id =
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
    instances.push_back(id);
    eips.push_back(*cloud.RequestEip(id));
  }
  EdgeFilterBank& bank = cloud.provider_filters(tw.provider);
  queue.RunAll();

  FaultHooks hooks;
  hooks.set_control_degraded = [&](bool degraded) {
    bank.SetReplicationDegraded(degraded);
  };
  FaultInjector injector(queue, tw.world->topology(), sim, tw.world.get(),
                         metrics, std::move(hooks));

  StormParams sparams;
  sparams.event_count = 30;
  sparams.window = SimDuration::Seconds(20);
  sparams.instances = instances;
  sparams.include_control_plane = true;
  injector.Schedule(FaultSchedule::Storm(99, sparams));

  Rng rng(99);
  for (int round = 0; round < 60; ++round) {
    // Churn permits against random endpoints while the storm plays out.
    std::vector<PermitEntry> entries;
    for (uint64_t i = 0, n = rng.NextU64(4); i < n; ++i) {
      PermitEntry e;
      e.source = IpPrefix::Host(eips[rng.NextU64(eips.size())]);
      if (rng.NextBool(0.5)) {
        e.dst_ports = PortRange::Single(443);
      }
      entries.push_back(e);
    }
    ASSERT_TRUE(
        cloud.SetPermitList(eips[rng.NextU64(eips.size())], entries).ok());
    queue.RunUntil(queue.now() + SimDuration::Millis(400));

    for (int q = 0; q < 25; ++q) {
      FiveTuple flow;
      flow.src = eips[rng.NextU64(eips.size())];
      flow.dst = eips[rng.NextU64(eips.size())];
      flow.src_port = 40000;
      flow.dst_port = rng.NextBool(0.5) ? 443 : 80;
      flow.proto = Protocol::kTcp;
      size_t edge = rng.NextU64(bank.edge_count());
      bool linear = bank.AdmitsLinear(edge, flow);
      ASSERT_EQ(bank.AdmitsUncached(edge, flow), linear);
      ASSERT_EQ(bank.Admits(edge, flow), linear) << "round " << round;
    }

    // Third leg of the equivalence: the reach engine's static walk must
    // agree with the live data plane mid-storm, pair by pair.
    DeclarativeReachEngine engine(*tw.world, cloud);
    for (size_t i = 0; i < instances.size(); ++i) {
      for (size_t j = 0; j < eips.size(); ++j) {
        uint16_t port = rng.NextBool(0.5) ? 443 : 80;
        ReachVerdict v = engine.CanReach(instances[i], eips[j], port,
                                         Protocol::kTcp);
        auto d = cloud.Evaluate(instances[i], eips[j], port, Protocol::kTcp);
        if (!d.ok()) {
          // A crashed src or dst surfaces as a status error on the data
          // plane and as a denial from the engine.
          ASSERT_FALSE(v.reachable)
              << "round " << round << " " << v.ToString();
          continue;
        }
        ASSERT_EQ(v.reachable, d->delivered)
            << "round " << round << " " << v.ToString();
        if (!d->delivered) {
          ASSERT_EQ(DenyStages().Name(v.deny_stage), d->drop_stage)
              << "round " << round << " " << v.ToString();
        }
      }
    }
  }
  queue.RunAll();
}

// ---------------------------------------------------------------------------
// Baseline world: SG / ACL / route / instance-state churn.
// ---------------------------------------------------------------------------

class BaselineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineEquivalenceTest, CachedEvaluateMatchesUncached) {
  Rng rng(GetParam());
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);
  EventQueue queue;
  FlowSim sim(queue, tw.world->topology());
  MetricRegistry metrics;
  FaultInjector injector(queue, tw.world->topology(), sim, tw.world.get(),
                         metrics, {});

  auto vpc = *net.CreateVpc(tw.tenant, tw.provider, tw.east, "v1",
                            *IpPrefix::Parse("10.0.0.0/16"));
  auto subnet = *net.CreateSubnet(vpc, "s1", 20, 0, false);
  auto sg = *net.CreateSecurityGroup(vpc, "sg");
  auto acl = *net.CreateNetworkAcl(vpc, "acl");
  for (TrafficDirection dir :
       {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
    AclEntry entry;
    entry.rule_number = 1000;  // low priority; churn inserts above it
    entry.allow = true;
    entry.direction = dir;
    entry.match = FlowMatch::Any();
    ASSERT_TRUE(net.AddAclEntry(acl, entry).ok());
  }
  ASSERT_TRUE(net.AssociateAcl(subnet, acl).ok());
  auto rt = *net.CreateRouteTable(vpc, "rt");

  std::vector<InstanceId> instances;
  for (int i = 0; i < 8; ++i) {
    InstanceId id =
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
    ASSERT_TRUE(net.AttachInstance(id, subnet, {sg}, false).ok());
    instances.push_back(id);
  }

  uint32_t next_acl_rule = 100;
  size_t sg_rules = 0;
  for (int round = 0; round < 60; ++round) {
    switch (rng.NextU64(6)) {
      case 0: {  // add an SG allow rule for a random port
        SgRule rule;
        rule.direction = TrafficDirection::kIngress;
        rule.proto = Protocol::kTcp;
        rule.ports =
            PortRange::Single(static_cast<uint16_t>(80 + rng.NextU64(6)));
        rule.peer = *IpPrefix::Parse("10.0.0.0/16");
        ASSERT_TRUE(net.AddSgRule(sg, rule).ok());
        ++sg_rules;
        break;
      }
      case 1:  // drop a random SG rule
        if (sg_rules > 0 &&
            net.RemoveSgRule(sg, rng.NextU64(sg_rules)).ok()) {
          --sg_rules;
        }
        break;
      case 2: {  // shadow some port with a deny ACL entry
        AclEntry entry;
        entry.rule_number = next_acl_rule++;
        entry.allow = rng.NextBool(0.5);
        entry.direction = rng.NextBool(0.5) ? TrafficDirection::kIngress
                                            : TrafficDirection::kEgress;
        entry.match = FlowMatch::Any();
        entry.match.dst_ports =
            PortRange::Single(static_cast<uint16_t>(80 + rng.NextU64(6)));
        ASSERT_TRUE(net.AddAclEntry(acl, entry).ok());
        break;
      }
      case 3:  // route-table churn (unused table; still a config mutation)
        if (rng.NextBool(0.5)) {
          (void)net.AddRoute(rt, *IpPrefix::Parse("198.18.0.0/24"),
                             VpcRouteTarget{});
        } else {
          (void)net.RemoveRoute(rt, *IpPrefix::Parse("198.18.0.0/24"));
        }
        break;
      default: {  // instance crash + recovery via the fault injector
        FaultSpec fault;
        fault.kind = FaultKind::kInstanceCrash;
        fault.instance = instances[rng.NextU64(instances.size())];
        fault.duration = SimDuration::Millis(100 + rng.NextU64(400));
        injector.InjectNow(fault);
        // Advance partway: some crashes are mid-outage when we query.
        queue.RunUntil(queue.now() +
                       SimDuration::Millis(rng.NextU64(600)));
        break;
      }
    }

    BaselineReachEngine reach(net);
    for (int q = 0; q < 20; ++q) {
      InstanceId a = instances[rng.NextU64(instances.size())];
      InstanceId b = instances[rng.NextU64(instances.size())];
      uint16_t port = static_cast<uint16_t>(80 + rng.NextU64(6));
      auto cached = net.Evaluate(a, b, port, Protocol::kTcp);
      auto uncached = net.EvaluateUncached(a, b, port, Protocol::kTcp);
      ASSERT_EQ(cached.ok(), uncached.ok()) << "round " << round;
      ReachVerdict v = reach.CanReach(a, b, port, Protocol::kTcp);
      if (cached.ok()) {
        EXPECT_EQ(cached->delivered, uncached->delivered)
            << "round " << round << " port " << port;
        EXPECT_EQ(cached->drop_stage, uncached->drop_stage)
            << "round " << round << " port " << port;
        // The reach engine is the third witness: verdict and deny stage
        // must match the staged evaluation exactly.
        EXPECT_EQ(v.reachable, cached->delivered)
            << "round " << round << " " << v.ToString();
        if (!cached->delivered) {
          EXPECT_EQ(DenyStages().Name(v.deny_stage), cached->drop_stage)
              << "round " << round << " " << v.ToString();
        }
      } else {
        EXPECT_FALSE(v.reachable) << "round " << round << " " << v.ToString();
      }
    }
  }
  queue.RunAll();
  EXPECT_GT(net.evaluate_cache_stats().hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineEquivalenceTest,
                         ::testing::Values(2, 13, 77, 4096));

}  // namespace
}  // namespace tenantnet
