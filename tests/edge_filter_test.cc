// Tests for the replicated permit-list enforcement bank.

#include <gtest/gtest.h>

#include "src/core/edge_filter.h"

namespace tenantnet {
namespace {

FiveTuple Flow(const char* src, const char* dst, uint16_t dport,
               Protocol proto = Protocol::kTcp) {
  FiveTuple t;
  t.src = *IpAddress::Parse(src);
  t.dst = *IpAddress::Parse(dst);
  t.src_port = 40000;
  t.dst_port = dport;
  t.proto = proto;
  return t;
}

PermitEntry Permit(const char* source, PortRange ports = PortRange::Any(),
                   Protocol proto = Protocol::kAny) {
  PermitEntry e;
  e.source = *IpPrefix::Parse(source);
  e.dst_ports = ports;
  e.proto = proto;
  return e;
}

TEST(EdgeFilterTest, DefaultOffWithNoList) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  EXPECT_FALSE(bank.Admits(0, Flow("1.1.1.1", "5.0.0.1", 443)));
  EXPECT_FALSE(bank.HasList(0, *IpAddress::Parse("5.0.0.1")));
}

TEST(EdgeFilterTest, EmptyListAdmitsNothing) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  bank.SetPermitList(*IpAddress::Parse("5.0.0.1"), {});
  EXPECT_TRUE(bank.HasList(0, *IpAddress::Parse("5.0.0.1")));
  EXPECT_FALSE(bank.Admits(0, Flow("1.1.1.1", "5.0.0.1", 443)));
}

TEST(EdgeFilterTest, PermittedSourcePasses) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  bank.AddEdge("e1");
  IpAddress endpoint = *IpAddress::Parse("5.0.0.1");
  bank.SetPermitList(endpoint, {Permit("10.0.0.0/8"),
                                Permit("20.1.0.0/16",
                                       PortRange::Single(443),
                                       Protocol::kTcp)});
  // Prefix entry admits any port.
  EXPECT_TRUE(bank.Admits(0, Flow("10.3.4.5", "5.0.0.1", 7077)));
  EXPECT_TRUE(bank.Admits(1, Flow("10.3.4.5", "5.0.0.1", 7077)));
  // Scoped entry: right source + port + proto only.
  EXPECT_TRUE(bank.Admits(0, Flow("20.1.9.9", "5.0.0.1", 443)));
  EXPECT_FALSE(bank.Admits(0, Flow("20.1.9.9", "5.0.0.1", 80)));
  EXPECT_FALSE(
      bank.Admits(0, Flow("20.1.9.9", "5.0.0.1", 443, Protocol::kUdp)));
  // Unlisted source.
  EXPECT_FALSE(bank.Admits(0, Flow("99.0.0.1", "5.0.0.1", 443)));
}

TEST(EdgeFilterTest, ListsAreScopedPerEndpoint) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  bank.SetPermitList(*IpAddress::Parse("5.0.0.1"), {Permit("10.0.0.0/8")});
  // The same source toward a different endpoint: default-off.
  EXPECT_FALSE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.2", 443)));
}

TEST(EdgeFilterTest, RemoveReinstatesDefaultOff) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  IpAddress endpoint = *IpAddress::Parse("5.0.0.1");
  bank.SetPermitList(endpoint, {Permit("10.0.0.0/8")});
  ASSERT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  bank.RemovePermitList(endpoint);
  EXPECT_FALSE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  EXPECT_TRUE(bank.IsConverged(endpoint));  // gone everywhere
}

TEST(EdgeFilterTest, MemoryAndMessageAccounting) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  bank.AddEdge("e1");
  bank.AddEdge("e2");
  IpAddress a = *IpAddress::Parse("5.0.0.1");
  IpAddress b = *IpAddress::Parse("5.0.0.2");
  bank.SetPermitList(a, {Permit("10.0.0.0/8"), Permit("11.0.0.0/8")});
  bank.SetPermitList(b, {Permit("10.0.0.0/8")});
  // Entries are replicated at every edge.
  EXPECT_EQ(bank.total_installed_entries(), 3u * 3u);
  EXPECT_EQ(bank.update_messages_sent(), 6u);  // 2 updates x 3 edges
  EXPECT_EQ(bank.endpoints_with_lists(), 2u);
  // Replacing a list swaps, not accumulates.
  bank.SetPermitList(a, {Permit("12.0.0.0/8")});
  EXPECT_EQ(bank.total_installed_entries(), 2u * 3u);
}

TEST(EdgeFilterTest, AsyncInstallConvergesAfterLatency) {
  EventQueue queue;
  EdgeFilterBank bank("p", &queue, 7);
  bank.AddEdge("e0");
  bank.AddEdge("e1");
  IpAddress endpoint = *IpAddress::Parse("5.0.0.1");
  SimTime last = bank.SetPermitList(endpoint, {Permit("10.0.0.0/8")});
  EXPECT_GT(last, queue.now());
  EXPECT_FALSE(bank.IsConverged(endpoint));
  // Before any install lands, the edge still defaults off.
  EXPECT_FALSE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  queue.RunUntil(last);
  EXPECT_TRUE(bank.IsConverged(endpoint));
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
  EXPECT_TRUE(bank.Admits(1, Flow("10.1.1.1", "5.0.0.1", 443)));
}

TEST(EdgeFilterTest, StaleUpdateNeverOverwritesNewer) {
  EventQueue queue;
  // Large jitter makes reordering overwhelmingly likely across versions.
  EdgeFilterParams params;
  params.install_base = SimDuration::Millis(1);
  params.install_extra_mean = SimDuration::Millis(50);
  EdgeFilterBank bank("p", &queue, 11, params);
  bank.AddEdge("e0");
  IpAddress endpoint = *IpAddress::Parse("5.0.0.1");
  for (int version = 0; version < 20; ++version) {
    bank.SetPermitList(
        endpoint,
        {Permit(version % 2 == 0 ? "10.0.0.0/8" : "11.0.0.0/8")});
  }
  queue.RunAll();
  EXPECT_TRUE(bank.IsConverged(endpoint));
  // Final version (index 19, odd) permits 11/8 and not 10/8.
  EXPECT_TRUE(bank.Admits(0, Flow("11.1.1.1", "5.0.0.1", 443)));
  EXPECT_FALSE(bank.Admits(0, Flow("10.1.1.1", "5.0.0.1", 443)));
}

// --- Verdict fast path -------------------------------------------------------

TEST(EdgeFilterTest, RepeatedVerdictsHitTheCache) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  bank.SetPermitList(*IpAddress::Parse("5.0.0.1"), {Permit("10.0.0.0/8")});
  FiveTuple flow = Flow("10.1.1.1", "5.0.0.1", 443);
  EXPECT_TRUE(bank.Admits(0, flow));  // miss + insert
  EXPECT_TRUE(bank.Admits(0, flow));  // hit
  EXPECT_TRUE(bank.Admits(0, flow));  // hit
  EXPECT_EQ(bank.verdict_cache_stats().hits, 2u);
  EXPECT_EQ(bank.verdict_cache_stats().insertions, 1u);
}

TEST(EdgeFilterTest, ListsCompileOncePerDistinctListNotPerEdge) {
  EdgeFilterBank bank("p", nullptr, 1);
  for (int e = 0; e < 5; ++e) {
    bank.AddEdge("e" + std::to_string(e));
  }
  EXPECT_EQ(bank.permit_compiles(), 0u);
  bank.SetPermitList(*IpAddress::Parse("5.0.0.1"), {Permit("10.0.0.0/8")});
  EXPECT_EQ(bank.permit_compiles(), 1u);  // shared across all 5 edges
  EXPECT_EQ(bank.distinct_permit_sets(), 1u);
  // A byte-identical list for another endpoint interns to the same set and
  // reuses its matcher: no recompile, no extra storage.
  bank.SetPermitList(*IpAddress::Parse("5.0.0.2"), {Permit("10.0.0.0/8")});
  EXPECT_EQ(bank.permit_compiles(), 1u);
  EXPECT_EQ(bank.distinct_permit_sets(), 1u);
  // A different list is a new distinct set and compiles once.
  bank.SetPermitList(*IpAddress::Parse("5.0.0.3"), {Permit("11.0.0.0/8")});
  EXPECT_EQ(bank.permit_compiles(), 2u);
  EXPECT_EQ(bank.distinct_permit_sets(), 2u);
  // Dropping every holder of a distinct list frees its interned slot.
  bank.RemovePermitList(*IpAddress::Parse("5.0.0.3"));
  EXPECT_EQ(bank.distinct_permit_sets(), 1u);
}

TEST(EdgeFilterTest, ListReplaceInvalidatesCachedVerdict) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  IpAddress endpoint = *IpAddress::Parse("5.0.0.1");
  bank.SetPermitList(endpoint, {Permit("10.0.0.0/8")});
  FiveTuple flow = Flow("10.1.1.1", "5.0.0.1", 443);
  EXPECT_TRUE(bank.Admits(0, flow));  // now cached as admitted
  bank.SetPermitList(endpoint, {Permit("20.0.0.0/8")});
  EXPECT_FALSE(bank.Admits(0, flow));  // stale verdict must not survive
  bank.RemovePermitList(endpoint);
  EXPECT_FALSE(bank.Admits(0, flow));
}

TEST(EdgeFilterTest, GroupUpdateInvalidatesCachedVerdict) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  EndpointGroupId group(1);
  PermitEntry entry;
  entry.source_group = group;
  bank.SetPermitList(*IpAddress::Parse("5.0.0.1"), {entry});
  bank.SetGroup(group, {*IpAddress::Parse("10.1.1.1")});
  FiveTuple flow = Flow("10.1.1.1", "5.0.0.1", 443);
  EXPECT_TRUE(bank.Admits(0, flow));  // cached as admitted
  bank.SetGroup(group, {*IpAddress::Parse("10.2.2.2")});  // member swapped
  EXPECT_FALSE(bank.Admits(0, flow));
  bank.RemoveGroup(group);
  EXPECT_FALSE(bank.Admits(0, Flow("10.2.2.2", "5.0.0.1", 443)));
}

TEST(EdgeFilterTest, UnrelatedListUpdateKeepsOtherVerdictsCached) {
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  bank.SetPermitList(*IpAddress::Parse("5.0.0.1"), {Permit("10.0.0.0/8")});
  bank.SetPermitList(*IpAddress::Parse("5.0.0.2"), {Permit("10.0.0.0/8")});
  FiveTuple flow1 = Flow("10.1.1.1", "5.0.0.1", 443);
  EXPECT_TRUE(bank.Admits(0, flow1));
  bank.ResetVerdictCacheStats();
  // Mutating endpoint .2 bumps only its own epoch; .1's cached verdict
  // revalidates instead of being discarded.
  bank.SetPermitList(*IpAddress::Parse("5.0.0.2"), {Permit("30.0.0.0/8")});
  EXPECT_TRUE(bank.Admits(0, flow1));
  EXPECT_EQ(bank.verdict_cache_stats().hits, 1u);
  EXPECT_EQ(bank.verdict_cache_stats().stale, 0u);
}

TEST(EdgeFilterTest, OverlappingPrefixesAdmitOnAnyCoveringScope) {
  // A /8 scoped to one port plus a /16 scoped to another: admission is
  // "any covering prefix with a matching scope", not longest-match-only.
  EdgeFilterBank bank("p", nullptr, 1);
  bank.AddEdge("e0");
  bank.SetPermitList(
      *IpAddress::Parse("5.0.0.1"),
      {Permit("10.0.0.0/8", PortRange::Single(443)),
       Permit("10.1.0.0/16", PortRange::Single(80))});
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.2.3", "5.0.0.1", 443)));  // via /8
  EXPECT_TRUE(bank.Admits(0, Flow("10.1.2.3", "5.0.0.1", 80)));   // via /16
  EXPECT_FALSE(bank.Admits(0, Flow("10.2.2.2", "5.0.0.1", 80)));  // /8 only
  // All three evaluation paths agree on these.
  for (uint16_t port : {443, 80, 8080}) {
    FiveTuple f = Flow("10.1.2.3", "5.0.0.1", port);
    EXPECT_EQ(bank.AdmitsUncached(0, f), bank.AdmitsLinear(0, f));
    EXPECT_EQ(bank.Admits(0, f), bank.AdmitsLinear(0, f));
  }
}

}  // namespace
}  // namespace tenantnet
