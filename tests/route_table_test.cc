// Tests for RouteTable and prefix aggregation.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/routing/route_table.h"

namespace tenantnet {
namespace {

RouteEntry Entry(uint64_t next_hop) {
  return RouteEntry{NodeId(next_hop), RouteOrigin::kStatic, 0, ""};
}

TEST(RouteTableTest, InstallLookupWithdraw) {
  RouteTable table;
  EXPECT_TRUE(table.Install(*IpPrefix::Parse("10.0.0.0/8"), Entry(1)));
  EXPECT_TRUE(table.Install(*IpPrefix::Parse("10.1.0.0/16"), Entry(2)));
  const RouteEntry* hit = table.Lookup(IpAddress::V4(10, 1, 0, 5));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->next_hop, NodeId(2));
  ASSERT_TRUE(table.Withdraw(*IpPrefix::Parse("10.1.0.0/16")).ok());
  hit = table.Lookup(IpAddress::V4(10, 1, 0, 5));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->next_hop, NodeId(1));
  EXPECT_EQ(table.Withdraw(*IpPrefix::Parse("10.1.0.0/16")).code(),
            StatusCode::kNotFound);
}

TEST(RouteTableTest, PrefixesEnumerates) {
  RouteTable table;
  table.Install(*IpPrefix::Parse("10.0.0.0/8"), Entry(1));
  table.Install(*IpPrefix::Parse("192.168.0.0/16"), Entry(2));
  auto prefixes = table.Prefixes();
  EXPECT_EQ(prefixes.size(), 2u);
}

TEST(AggregateTest, MergesBuddyPairs) {
  std::vector<IpPrefix> input = {*IpPrefix::Parse("10.0.0.0/17"),
                                 *IpPrefix::Parse("10.0.128.0/17")};
  auto out = AggregatePrefixes(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/16");
}

TEST(AggregateTest, CascadingMerge) {
  // Four consecutive /18s collapse to one /16.
  std::vector<IpPrefix> input;
  for (int i = 0; i < 4; ++i) {
    input.push_back(*IpPrefix::Create(
        IpAddress::V4(10, 0, static_cast<uint8_t>(i * 64), 0), 18));
  }
  auto out = AggregatePrefixes(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/16");
}

TEST(AggregateTest, DropsContainedPrefixes) {
  std::vector<IpPrefix> input = {*IpPrefix::Parse("10.0.0.0/8"),
                                 *IpPrefix::Parse("10.1.0.0/16"),
                                 *IpPrefix::Parse("10.1.2.0/24")};
  auto out = AggregatePrefixes(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/8");
}

TEST(AggregateTest, NonMergeableStayApart) {
  std::vector<IpPrefix> input = {*IpPrefix::Parse("10.0.0.0/17"),
                                 *IpPrefix::Parse("10.1.0.0/17")};  // not buddies
  auto out = AggregatePrefixes(input);
  EXPECT_EQ(out.size(), 2u);
}

TEST(AggregateTest, DeduplicatesExactCopies) {
  std::vector<IpPrefix> input = {*IpPrefix::Parse("10.0.0.0/16"),
                                 *IpPrefix::Parse("10.0.0.0/16")};
  auto out = AggregatePrefixes(input);
  EXPECT_EQ(out.size(), 1u);
}

TEST(AggregateTest, SequentialHostRoutesCollapseCompletely) {
  // 256 consecutive /32s == one /24: the provider-aggregation claim of E4a
  // in miniature.
  std::vector<IpPrefix> input;
  for (int i = 0; i < 256; ++i) {
    input.push_back(IpPrefix::Host(
        IpAddress::V4(5, 0, 0, static_cast<uint8_t>(i))));
  }
  auto out = AggregatePrefixes(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "5.0.0.0/24");
}

// Property: aggregation preserves exact coverage — an address is covered by
// the output iff it is covered by the input.
class AggregateCoverageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateCoverageTest, CoverageIsPreserved) {
  Rng rng(GetParam());
  std::vector<IpPrefix> input;
  for (int i = 0; i < 200; ++i) {
    // Confined space so overlaps/buddies actually occur.
    uint32_t base = 0x0A000000u | static_cast<uint32_t>(rng.NextU64(1 << 16));
    int len = static_cast<int>(20 + rng.NextU64(13));
    input.push_back(*IpPrefix::Create(IpAddress::V4(base), len));
  }
  auto output = AggregatePrefixes(input);
  EXPECT_LE(output.size(), input.size());
  // Output prefixes must be pairwise disjoint.
  for (size_t i = 0; i < output.size(); ++i) {
    for (size_t j = i + 1; j < output.size(); ++j) {
      EXPECT_FALSE(output[i].Overlaps(output[j]));
    }
  }
  auto covered_by = [](const std::vector<IpPrefix>& set, IpAddress ip) {
    return std::any_of(set.begin(), set.end(),
                       [ip](const IpPrefix& p) { return p.Contains(ip); });
  };
  for (int i = 0; i < 3000; ++i) {
    uint32_t probe_base =
        0x0A000000u | static_cast<uint32_t>(rng.NextU64(1 << 17));
    IpAddress probe = IpAddress::V4(probe_base);
    EXPECT_EQ(covered_by(input, probe), covered_by(output, probe))
        << probe.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateCoverageTest,
                         ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace tenantnet
