// Tests for RouteTable and prefix aggregation.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/routing/route_table.h"

namespace tenantnet {
namespace {

RouteEntry Entry(uint64_t next_hop) {
  return RouteEntry{NodeId(next_hop), RouteOrigin::kStatic, 0, 0};
}

TEST(RouteTableTest, InstallLookupWithdraw) {
  RouteTable table;
  EXPECT_TRUE(table.Install(*IpPrefix::Parse("10.0.0.0/8"), Entry(1)));
  EXPECT_TRUE(table.Install(*IpPrefix::Parse("10.1.0.0/16"), Entry(2)));
  const RouteEntry* hit = table.Lookup(IpAddress::V4(10, 1, 0, 5));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->next_hop, NodeId(2));
  ASSERT_TRUE(table.Withdraw(*IpPrefix::Parse("10.1.0.0/16")).ok());
  hit = table.Lookup(IpAddress::V4(10, 1, 0, 5));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->next_hop, NodeId(1));
  EXPECT_EQ(table.Withdraw(*IpPrefix::Parse("10.1.0.0/16")).code(),
            StatusCode::kNotFound);
}

TEST(RouteTableTest, PrefixesEnumerates) {
  RouteTable table;
  table.Install(*IpPrefix::Parse("10.0.0.0/8"), Entry(1));
  table.Install(*IpPrefix::Parse("192.168.0.0/16"), Entry(2));
  auto prefixes = table.Prefixes();
  EXPECT_EQ(prefixes.size(), 2u);
}

TEST(AggregateTest, MergesBuddyPairs) {
  std::vector<IpPrefix> input = {*IpPrefix::Parse("10.0.0.0/17"),
                                 *IpPrefix::Parse("10.0.128.0/17")};
  auto out = AggregatePrefixes(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/16");
}

TEST(AggregateTest, CascadingMerge) {
  // Four consecutive /18s collapse to one /16.
  std::vector<IpPrefix> input;
  for (int i = 0; i < 4; ++i) {
    input.push_back(*IpPrefix::Create(
        IpAddress::V4(10, 0, static_cast<uint8_t>(i * 64), 0), 18));
  }
  auto out = AggregatePrefixes(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/16");
}

TEST(AggregateTest, DropsContainedPrefixes) {
  std::vector<IpPrefix> input = {*IpPrefix::Parse("10.0.0.0/8"),
                                 *IpPrefix::Parse("10.1.0.0/16"),
                                 *IpPrefix::Parse("10.1.2.0/24")};
  auto out = AggregatePrefixes(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "10.0.0.0/8");
}

TEST(AggregateTest, NonMergeableStayApart) {
  std::vector<IpPrefix> input = {*IpPrefix::Parse("10.0.0.0/17"),
                                 *IpPrefix::Parse("10.1.0.0/17")};  // not buddies
  auto out = AggregatePrefixes(input);
  EXPECT_EQ(out.size(), 2u);
}

TEST(AggregateTest, DeduplicatesExactCopies) {
  std::vector<IpPrefix> input = {*IpPrefix::Parse("10.0.0.0/16"),
                                 *IpPrefix::Parse("10.0.0.0/16")};
  auto out = AggregatePrefixes(input);
  EXPECT_EQ(out.size(), 1u);
}

TEST(AggregateTest, SequentialHostRoutesCollapseCompletely) {
  // 256 consecutive /32s == one /24: the provider-aggregation claim of E4a
  // in miniature.
  std::vector<IpPrefix> input;
  for (int i = 0; i < 256; ++i) {
    input.push_back(IpPrefix::Host(
        IpAddress::V4(5, 0, 0, static_cast<uint8_t>(i))));
  }
  auto out = AggregatePrefixes(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "5.0.0.0/24");
}

// Property: aggregation preserves exact coverage — an address is covered by
// the output iff it is covered by the input.
class AggregateCoverageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateCoverageTest, CoverageIsPreserved) {
  Rng rng(GetParam());
  std::vector<IpPrefix> input;
  for (int i = 0; i < 200; ++i) {
    // Confined space so overlaps/buddies actually occur.
    uint32_t base = 0x0A000000u | static_cast<uint32_t>(rng.NextU64(1 << 16));
    int len = static_cast<int>(20 + rng.NextU64(13));
    input.push_back(*IpPrefix::Create(IpAddress::V4(base), len));
  }
  auto output = AggregatePrefixes(input);
  EXPECT_LE(output.size(), input.size());
  // Output prefixes must be pairwise disjoint.
  for (size_t i = 0; i < output.size(); ++i) {
    for (size_t j = i + 1; j < output.size(); ++j) {
      EXPECT_FALSE(output[i].Overlaps(output[j]));
    }
  }
  auto covered_by = [](const std::vector<IpPrefix>& set, IpAddress ip) {
    return std::any_of(set.begin(), set.end(),
                       [ip](const IpPrefix& p) { return p.Contains(ip); });
  };
  for (int i = 0; i < 3000; ++i) {
    uint32_t probe_base =
        0x0A000000u | static_cast<uint32_t>(rng.NextU64(1 << 17));
    IpAddress probe = IpAddress::V4(probe_base);
    EXPECT_EQ(covered_by(input, probe), covered_by(output, probe))
        << probe.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateCoverageTest,
                         ::testing::Values(5, 55, 555));

TEST(RouteTableTest, InstallReturnsTrueOnlyOnChange) {
  RouteTable table;
  IpPrefix p = *IpPrefix::Parse("10.0.0.0/8");
  EXPECT_TRUE(table.Install(p, Entry(1)));   // new
  EXPECT_FALSE(table.Install(p, Entry(1)));  // identical re-install
  EXPECT_TRUE(table.Install(p, Entry(2)));   // next hop changed
  EXPECT_FALSE(table.Install(p, Entry(2)));
}

// The exact address space of a (v4) prefix set as a sorted, merged interval
// list over [base, base + count). Two sets cover the same addresses iff
// their merged interval lists are identical.
std::vector<std::pair<uint64_t, uint64_t>> MergedIntervals(
    const std::vector<IpPrefix>& prefixes) {
  std::vector<std::pair<uint64_t, uint64_t>> spans;
  for (const IpPrefix& p : prefixes) {
    uint64_t start = p.base().v4_bits();
    spans.emplace_back(start, start + p.AddressCount());
  }
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  for (const auto& span : spans) {
    if (!merged.empty() && span.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, span.second);
    } else {
      merged.push_back(span);
    }
  }
  return merged;
}

// Property suite for the aggregation the provider applies to flat EIP host
// routes: the result must cover EXACTLY the input address space (interval
// equality, not sampling), be minimal w.r.t. buddy merging and containment,
// and be a fixed point of the function.
class AggregatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregatePropertyTest, ExactCoverageMinimalityAndIdempotence) {
  Rng rng(GetParam());
  std::vector<IpPrefix> input;
  size_t count = 100 + rng.NextU64(300);
  for (size_t i = 0; i < count; ++i) {
    // Dense space with a mix of lengths so containment, duplicates and
    // cascading buddy merges all occur.
    uint32_t base =
        0x0A000000u | static_cast<uint32_t>(rng.NextU64(1 << 14));
    int len = static_cast<int>(18 + rng.NextU64(15));  // /18 .. /32
    input.push_back(*IpPrefix::Create(IpAddress::V4(base), len));
  }

  std::vector<IpPrefix> output = AggregatePrefixes(input);

  // Exact same address space.
  EXPECT_EQ(MergedIntervals(input), MergedIntervals(output));

  // Minimal: no contained pairs, and no two buddies left unmerged.
  for (size_t i = 0; i < output.size(); ++i) {
    for (size_t j = 0; j < output.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(output[i].Contains(output[j]))
            << output[i].ToString() << " contains " << output[j].ToString();
      }
    }
  }
  for (const IpPrefix& p : output) {
    if (p.length() == 0) {
      continue;
    }
    auto parent = IpPrefix::Create(p.base(), p.length() - 1);
    auto halves = parent->Split();
    const IpPrefix& buddy =
        (halves->first == p) ? halves->second : halves->first;
    EXPECT_EQ(std::count(output.begin(), output.end(), buddy), 0)
        << p.ToString() << " and its buddy both survived aggregation";
  }

  // Fixed point: aggregating an aggregate changes nothing.
  EXPECT_EQ(AggregatePrefixes(output), output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatePropertyTest,
                         ::testing::Values(2, 29, 4242, 987654));

}  // namespace
}  // namespace tenantnet
