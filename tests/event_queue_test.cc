// Tests for the discrete-event engine.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace tenantnet {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(SimTime::FromSeconds(3), [&] { order.push_back(3); });
  q.ScheduleAt(SimTime::FromSeconds(1), [&] { order.push_back(1); });
  q.ScheduleAt(SimTime::FromSeconds(2), [&] { order.push_back(2); });
  EXPECT_EQ(q.RunAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().ToSeconds(), 3.0);
}

TEST(EventQueueTest, FifoTieBreakAtSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(SimTime::FromSeconds(1), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.ScheduleAfter(SimDuration::Seconds(1), [&] { ++fired; });
  q.ScheduleAfter(SimDuration::Seconds(2), [&] { ++fired; });
  q.Cancel(h);
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle h = q.ScheduleAfter(SimDuration::Seconds(1), [] {});
  q.RunAll();
  q.Cancel(h);  // must not crash or affect anything
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EventsScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      q.ScheduleAfter(SimDuration::Seconds(1), recurse);
    }
  };
  q.ScheduleAfter(SimDuration::Seconds(1), recurse);
  EXPECT_EQ(q.RunAll(), 5u);
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now().ToSeconds(), 5.0);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(SimTime::FromSeconds(1), [&] { ++fired; });
  q.ScheduleAt(SimTime::FromSeconds(10), [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(SimTime::FromSeconds(5)), 1u);
  EXPECT_EQ(fired, 1);
  // Clock advances to the deadline even without events there.
  EXPECT_DOUBLE_EQ(q.now().ToSeconds(), 5.0);
  EXPECT_EQ(q.pending_count(), 1u);
  q.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, StepFiresExactlyOne) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAfter(SimDuration::Seconds(1), [&] { ++fired; });
  q.ScheduleAfter(SimDuration::Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
}

TEST(EventQueueTest, PendingCountTracksLiveEvents) {
  EventQueue q;
  EventHandle a = q.ScheduleAfter(SimDuration::Seconds(1), [] {});
  q.ScheduleAfter(SimDuration::Seconds(2), [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
  q.RunAll();
  EXPECT_EQ(q.pending_count(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, StaleHandleDoesNotCancelSlotReuseAfterCancel) {
  EventQueue q;
  int a_fired = 0;
  int b_fired = 0;
  EventHandle a = q.ScheduleAfter(SimDuration::Seconds(1), [&] { ++a_fired; });
  q.Cancel(a);
  // The next event recycles a's slot with a fresh generation.
  q.ScheduleAfter(SimDuration::Seconds(2), [&] { ++b_fired; });
  EXPECT_EQ(q.slab_size(), 1u);
  q.Cancel(a);  // stale generation: must not touch the new occupant
  EXPECT_EQ(q.pending_count(), 1u);
  q.RunAll();
  EXPECT_EQ(a_fired, 0);
  EXPECT_EQ(b_fired, 1);
}

TEST(EventQueueTest, StaleHandleDoesNotCancelSlotReuseAfterFire) {
  EventQueue q;
  EventHandle a = q.ScheduleAfter(SimDuration::Seconds(1), [] {});
  q.RunAll();
  int fired = 0;
  q.ScheduleAfter(SimDuration::Seconds(1), [&] { ++fired; });
  q.Cancel(a);  // a already fired; its slot now belongs to the new event
  EXPECT_EQ(q.pending_count(), 1u);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DefaultHandleCancelIsNoop) {
  EventQueue q;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  int fired = 0;
  q.ScheduleAfter(SimDuration::Seconds(1), [&] { ++fired; });
  q.Cancel(h);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, SlabStaysBoundedUnderSteadyChurn) {
  // Schedule/fire/cancel cycles must recycle slots, not grow the slab:
  // allocation-free steady state.
  EventQueue q;
  for (int i = 0; i < 10000; ++i) {
    EventHandle h = q.ScheduleAfter(SimDuration::Micros(1), [] {});
    if (i % 2 == 0) {
      q.Cancel(h);
    }
    q.RunAll();
  }
  EXPECT_LE(q.slab_size(), 2u);
}

TEST(EventQueueTest, FifoTieBreakSurvivesSlotRecycling) {
  // Recycled slots carry fresh sequence numbers, so same-timestamp events
  // still fire in scheduling order even when a later event reuses an
  // earlier (cancelled) event's slot.
  EventQueue q;
  std::vector<int> order;
  EventHandle a =
      q.ScheduleAt(SimTime::FromSeconds(1), [&] { order.push_back(0); });
  q.Cancel(a);
  for (int i = 1; i <= 5; ++i) {
    q.ScheduleAt(SimTime::FromSeconds(1), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(EventQueueTest, CancelOfHandleFiredEarlierAtSameTimestamp) {
  // A callback cancelling a handle that already fired at the SAME
  // timestamp must be a no-op, even when a new same-time event has
  // recycled the fired handle's slot (the FlowSim fault path cancels
  // possibly-fired completion handles from inside a fault batch).
  EventQueue q;
  std::vector<int> order;
  EventHandle first =
      q.ScheduleAt(SimTime::FromSeconds(1), [&] { order.push_back(1); });
  q.ScheduleAt(SimTime::FromSeconds(1), [&] {
    order.push_back(2);
    q.Cancel(first);  // already fired this timestamp: no-op
    q.ScheduleAt(q.now(), [&] { order.push_back(3); });
    q.Cancel(first);  // still a no-op even if the new event reused the slot
  });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CancelDuringCallback) {
  EventQueue q;
  int fired = 0;
  EventHandle later;
  q.ScheduleAfter(SimDuration::Seconds(1), [&] { q.Cancel(later); });
  later = q.ScheduleAfter(SimDuration::Seconds(2), [&] { ++fired; });
  q.RunAll();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace tenantnet
