#!/usr/bin/env python3
"""Gate bench results: compare BENCH_*.json against a checked-in baseline.

Usage:
  check_bench_regression.py BASELINE CURRENT [CURRENT ...] [--max-regression R]

BASELINE is a checked-in JSON array of gate records. Two record kinds are
understood; a baseline may mix them:

Verdict-sweep records (see bench/baselines/verdict_smoke_baseline.json),
matched on (bench, endpoints|instances, entries_per_ep): a matched record
whose warm_vps fell more than R (default 0.30) below the baseline fails the
gate, as does a baseline record with no current counterpart. warm_hit_rate
is also checked (absolute drop > 0.2 fails): throughput is
machine-dependent, but hit rate is not — a cache that stopped caching shows
up there regardless of how fast the runner is.

Churn-convergence records (see bench/baselines/routing_churn_smoke_baseline.json),
matched on (bench, prefixes, speakers): the baseline states a
min_speedup_incremental floor and the current record (from the
bench_scale_routing churn sweep) reports the measured speedup_incremental —
incremental convergence per churn op vs a from-scratch convergence. The
ratio of two timings on the same machine is hardware-independent enough to
gate everywhere, unlike raw throughput.

Shard-scaling records (see bench/baselines/shard_smoke_baseline.json),
matched on (bench, scenario, flows, threads): the baseline states a
min_speedup_vs_1thread floor and the current record (from the
bench_flow_sim thread sweep) reports the measured speedup_vs_1thread. The
speedup check is SKIPPED when the runner has fewer hardware threads than
the record's thread count (a 1-core container cannot exhibit parallel
speedup), but matches_1thread — the determinism cross-check, which is
hardware-independent — must hold everywhere.

Warm-restart records (see bench/baselines/warm_restart_smoke_baseline.json),
matched on (bench, storm_seed): the baseline states a max_blackhole_ratio
ceiling and the current record (from the bench_warm_restart summary line)
reports warm_cold_blackhole_ratio — bytes blackholed during warm restarts
as a fraction of the cold-restart figure for the same seeded storm. The
ratio of two sim-time measurements on the same machine is fully
hardware-independent. When the baseline sets require_routing_match, the
current record's routing_matches_full_rebuild must be 1 (the reconciled
routing state diffed clean against a from-scratch rebuild).

Reach-revalidation records (see bench/baselines/reach_smoke_baseline.json),
matched on (bench, world, pairs): the baseline states a
min_revalidate_speedup floor and an (optional) max_recompute_fraction
ceiling for the E12 sweep (bench_config_fragility) — the current record
reports revalidate_speedup (a from-scratch reachability sweep vs the mean
incremental revalidation after one mutation, same machine, so the ratio is
hardware-independent) and recompute_fraction (pairs recomputed / total,
pure counting). When the baseline sets require_identical, the current
record's fingerprint_identical must be 1: the incremental sweep landed on
bytes identical to a from-scratch verifier, i.e. it is an optimization,
never an approximation.

Flow-churn records (see bench/baselines/flowsim_churn_smoke_baseline.json),
matched on (bench, scenario, flows, mode): the baseline may state a
min_events_per_sec floor and a max_realloc_mean_us ceiling for the
bench_flow_sim churn scenarios — raw throughput, so the floors carry large
margins for slow runners — plus two hardware-INDEPENDENT gates:
max_mean_flows_touched (pure counting; the incremental re-leveler losing
its scoping shows up here as ~component-size regardless of machine speed)
and max_full_fills (an incremental run that falls back to from-scratch
fills has lost the optimization even if the box is fast enough to hide it).

Memory-diet records (see bench/baselines/million_smoke_baseline.json),
matched on (bench, endpoints, entries_per_ep): the baseline states a
max_bytes_per_endpoint ceiling and a min_reduction_vs_prediet floor for
the E10 sweep (bench_million) — both byte-accounting ratios, fully
hardware-independent. warm_vps is gated with the same R tolerance as the
verdict records (the fast path must survive the diet), warm_hit_rate
against min_warm_hit_rate, and streaming_pending_events against
max_streaming_pending (the open-loop generator must stay O(patterns), not
O(transactions)).
"""

import argparse
import json
import sys


def verdict_key(rec):
    return (
        rec.get("bench"),
        rec.get("endpoints"),
        rec.get("instances"),
        rec.get("entries_per_ep"),
    )


def shard_key(rec):
    return (
        rec.get("bench"),
        rec.get("scenario"),
        rec.get("flows"),
        rec.get("threads"),
    )


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array")
    return [r for r in data if isinstance(r, dict)]


def check_verdicts(baseline, current_files, max_regression):
    current = {}
    for recs in current_files:
        for rec in recs:
            if "warm_vps" in rec:
                current[verdict_key(rec)] = rec

    failed = False
    floor = 1.0 - max_regression
    print(f"{'bench':<28} {'size':>8} {'baseline':>14} {'current':>14} {'ratio':>7}")
    for base in baseline:
        k = verdict_key(base)
        size = base.get("endpoints") or base.get("instances") or "-"
        cur = current.get(k)
        if cur is None:
            print(f"{k[0]:<28} {size:>8} {base['warm_vps']:>14.0f} {'MISSING':>14}")
            failed = True
            continue
        ratio = cur["warm_vps"] / base["warm_vps"] if base["warm_vps"] else 0.0
        verdict = "" if ratio >= floor else "  << REGRESSION"
        print(
            f"{k[0]:<28} {size:>8} {base['warm_vps']:>14.0f} "
            f"{cur['warm_vps']:>14.0f} {ratio:>7.2f}{verdict}"
        )
        if ratio < floor:
            failed = True
        base_hr = base.get("warm_hit_rate")
        cur_hr = cur.get("warm_hit_rate")
        if base_hr is not None and cur_hr is not None and cur_hr < base_hr - 0.2:
            print(f"  warm_hit_rate fell {base_hr:.3f} -> {cur_hr:.3f}")
            failed = True
    return failed


def check_shards(baseline, current_files):
    current = {}
    for recs in current_files:
        for rec in recs:
            if "speedup_vs_1thread" in rec:
                current[shard_key(rec)] = rec

    failed = False
    print(f"{'bench':<20} {'scenario':<12} {'flows':>7} {'threads':>7} "
          f"{'min':>6} {'got':>6}")
    for base in baseline:
        k = shard_key(base)
        cur = current.get(k)
        if cur is None:
            print(f"{k[0]:<20} {k[1]:<12} {k[2]:>7} {k[3]:>7} "
                  f"{base['min_speedup_vs_1thread']:>6.2f} {'MISSING':>7}")
            failed = True
            continue
        # Determinism is hardware-independent: a thread sweep whose counters
        # diverge from the 1-thread run is broken no matter how fast it is.
        if cur.get("matches_1thread") is False:
            print(f"{k[0]:<20} {k[1]:<12} {k[2]:>7} {k[3]:>7} "
                  "NONDETERMINISTIC (diverged from 1-thread run)")
            failed = True
            continue
        hw = cur.get("hw_threads")
        threads = base.get("threads") or 0
        if hw is not None and hw < threads:
            print(f"{k[0]:<20} {k[1]:<12} {k[2]:>7} {k[3]:>7} "
                  f"{base['min_speedup_vs_1thread']:>6.2f} "
                  f"SKIP (only {hw} hw threads)")
            continue
        got = cur["speedup_vs_1thread"]
        floor = base["min_speedup_vs_1thread"]
        verdict = "" if got >= floor else "  << TOO SLOW"
        print(f"{k[0]:<20} {k[1]:<12} {k[2]:>7} {k[3]:>7} "
              f"{floor:>6.2f} {got:>6.2f}{verdict}")
        if got < floor:
            failed = True
    return failed


def churn_key(rec):
    return (rec.get("bench"), rec.get("prefixes"), rec.get("speakers"))


def check_churn(baseline, current_files):
    current = {}
    for recs in current_files:
        for rec in recs:
            if "speedup_incremental" in rec:
                current[churn_key(rec)] = rec

    failed = False
    print(f"{'bench':<20} {'prefixes':>9} {'speakers':>9} {'min':>7} {'got':>9}")
    for base in baseline:
        k = churn_key(base)
        floor = base["min_speedup_incremental"]
        cur = current.get(k)
        if cur is None:
            print(f"{k[0]:<20} {k[1]:>9} {k[2]:>9} {floor:>7.1f} {'MISSING':>9}")
            failed = True
            continue
        got = cur["speedup_incremental"]
        verdict = "" if got >= floor else "  << TOO SLOW"
        print(f"{k[0]:<20} {k[1]:>9} {k[2]:>9} {floor:>7.1f} {got:>9.1f}"
              f"{verdict}")
        if got < floor:
            failed = True
    return failed


def restart_key(rec):
    return (rec.get("bench"), rec.get("storm_seed"))


def check_restarts(baseline, current_files):
    current = {}
    for recs in current_files:
        for rec in recs:
            if "warm_cold_blackhole_ratio" in rec:
                current[restart_key(rec)] = rec

    failed = False
    print(f"{'bench':<24} {'seed':>6} {'max':>6} {'got':>8}")
    for base in baseline:
        k = restart_key(base)
        ceiling = base["max_blackhole_ratio"]
        cur = current.get(k)
        if cur is None:
            print(f"{k[0]:<24} {k[1]:>6} {ceiling:>6.2f} {'MISSING':>8}")
            failed = True
            continue
        got = cur["warm_cold_blackhole_ratio"]
        verdict = "" if got <= ceiling else "  << TOO MUCH BLACKHOLE"
        print(f"{k[0]:<24} {k[1]:>6} {ceiling:>6.2f} {got:>8.4f}{verdict}")
        if got > ceiling:
            failed = True
        if base.get("require_routing_match") and \
                cur.get("routing_matches_full_rebuild") != 1:
            print(f"{k[0]:<24} {k[1]:>6} reconciled routing state diverged "
                  "from full rebuild")
            failed = True
    return failed


def reach_key(rec):
    return (rec.get("bench"), rec.get("world"), rec.get("pairs"))


def check_reach(baseline, current_files):
    current = {}
    for recs in current_files:
        for rec in recs:
            if "revalidate_speedup" in rec:
                current[reach_key(rec)] = rec

    failed = False
    print(f"{'bench':<20} {'world':<12} {'pairs':>7} {'min':>6} {'got':>7} "
          f"{'frac':>7}")
    for base in baseline:
        k = reach_key(base)
        floor = base["min_revalidate_speedup"]
        cur = current.get(k)
        if cur is None:
            print(f"{k[0]:<20} {k[1]:<12} {k[2]:>7} {floor:>6.1f} "
                  f"{'MISSING':>7}")
            failed = True
            continue
        got = cur["revalidate_speedup"]
        frac = cur.get("recompute_fraction", 0.0)
        problems = []
        if got < floor:
            problems.append("TOO SLOW")
        max_frac = base.get("max_recompute_fraction")
        if max_frac is not None and frac > max_frac:
            problems.append("RECOMPUTES TOO MUCH")
        if base.get("require_identical") and \
                cur.get("fingerprint_identical") != 1:
            problems.append("INCREMENTAL DIVERGED FROM SCRATCH")
        verdict = ("  << " + ", ".join(problems)) if problems else ""
        print(f"{k[0]:<20} {k[1]:<12} {k[2]:>7} {floor:>6.1f} {got:>7.2f} "
              f"{frac:>7.4f}{verdict}")
        if problems:
            failed = True
    return failed


def flow_churn_key(rec):
    return (
        rec.get("bench"),
        rec.get("scenario"),
        rec.get("flows"),
        rec.get("mode"),
    )


def check_flow_churn(baseline, current_files):
    current = {}
    for recs in current_files:
        for rec in recs:
            if rec.get("bench") == "flow_sim_churn" and "events_per_sec" in rec:
                current[flow_churn_key(rec)] = rec

    failed = False
    print(f"{'bench':<16} {'scenario':<18} {'flows':>6} {'ev/s floor':>10} "
          f"{'got':>8} {'us max':>6} {'got':>7} {'touch max':>9} {'got':>7}")
    for base in baseline:
        k = flow_churn_key(base)
        cur = current.get(k)
        if cur is None:
            print(f"{k[0]:<16} {k[1]:<18} {k[2]:>6} {'MISSING':>10}")
            failed = True
            continue
        problems = []
        min_eps = base.get("min_events_per_sec")
        if min_eps is not None and cur["events_per_sec"] < min_eps:
            problems.append("TOO SLOW")
        max_us = base.get("max_realloc_mean_us")
        if max_us is not None and cur.get("realloc_mean_us", 0.0) > max_us:
            problems.append("REALLOC TOO SLOW")
        max_touch = base.get("max_mean_flows_touched")
        touch = cur.get("mean_flows_touched_per_realloc", 0.0)
        if max_touch is not None and touch > max_touch:
            problems.append("SCOPING LOST")
        max_full = base.get("max_full_fills")
        if max_full is not None and cur.get("full_fills", 0) > max_full:
            problems.append("FELL BACK TO FULL FILLS")
        verdict = ("  << " + ", ".join(problems)) if problems else ""
        print(f"{k[0]:<16} {k[1]:<18} {k[2]:>6} "
              f"{min_eps if min_eps is not None else '-':>10} "
              f"{cur['events_per_sec']:>8.0f} "
              f"{max_us if max_us is not None else '-':>6} "
              f"{cur.get('realloc_mean_us', 0.0):>7.2f} "
              f"{max_touch if max_touch is not None else '-':>9} "
              f"{touch:>7.1f}{verdict}")
        if problems:
            failed = True
    return failed


def million_key(rec):
    return (rec.get("bench"), rec.get("endpoints"), rec.get("entries_per_ep"))


def check_million(baseline, current_files, max_regression):
    current = {}
    for recs in current_files:
        for rec in recs:
            if "bytes_per_endpoint" in rec:
                current[million_key(rec)] = rec

    failed = False
    floor = 1.0 - max_regression
    print(f"{'bench':<16} {'endpoints':>9} {'B/ep':>7} {'max':>6} "
          f"{'redux':>6} {'min':>5} {'vps ratio':>9} {'pending':>7}")
    for base in baseline:
        k = million_key(base)
        cur = current.get(k)
        if cur is None:
            print(f"{k[0]:<16} {k[1]:>9} {'MISSING':>7}")
            failed = True
            continue
        bpe = cur["bytes_per_endpoint"]
        max_bpe = base["max_bytes_per_endpoint"]
        redux = cur.get("reduction_vs_prediet", 0.0)
        min_redux = base.get("min_reduction_vs_prediet", 0.0)
        ratio = (cur["warm_vps"] / base["warm_vps"]
                 if base.get("warm_vps") else 1.0)
        pending = cur.get("streaming_pending_events")
        max_pending = base.get("max_streaming_pending")
        problems = []
        if bpe > max_bpe:
            problems.append("TOO FAT")
        if redux < min_redux:
            problems.append("REDUCTION BELOW FLOOR")
        if ratio < floor:
            problems.append("VERDICT REGRESSION")
        min_hit = base.get("min_warm_hit_rate")
        if min_hit is not None and cur.get("warm_hit_rate", 0.0) < min_hit:
            problems.append("CACHE STOPPED CACHING")
        if max_pending is not None and pending is not None \
                and pending > max_pending:
            problems.append("GENERATOR NOT FLAT")
        verdict = ("  << " + ", ".join(problems)) if problems else ""
        print(f"{k[0]:<16} {k[1]:>9} {bpe:>7.1f} {max_bpe:>6.0f} "
              f"{redux:>6.1f} {min_redux:>5.1f} {ratio:>9.2f} "
              f"{pending if pending is not None else '-':>7}{verdict}")
        if problems:
            failed = True
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional drop in warm_vps before failing (default 0.30)",
    )
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    million_base = [r for r in baseline if "max_bytes_per_endpoint" in r]
    verdict_base = [r for r in baseline
                    if "warm_vps" in r and "max_bytes_per_endpoint" not in r]
    shard_base = [r for r in baseline if "min_speedup_vs_1thread" in r]
    churn_base = [r for r in baseline if "min_speedup_incremental" in r]
    restart_base = [r for r in baseline if "max_blackhole_ratio" in r]
    reach_base = [r for r in baseline if "min_revalidate_speedup" in r]
    flow_churn_base = [r for r in baseline
                       if r.get("bench") == "flow_sim_churn"
                       and ("min_events_per_sec" in r
                            or "max_mean_flows_touched" in r)]
    if not verdict_base and not shard_base and not churn_base \
            and not restart_base and not million_base and not reach_base \
            and not flow_churn_base:
        print(f"error: no gate records in baseline {args.baseline}")
        return 1

    current_files = [load_records(p) for p in args.current]

    failed = False
    if verdict_base:
        failed |= check_verdicts(verdict_base, current_files,
                                 args.max_regression)
    if shard_base:
        failed |= check_shards(shard_base, current_files)
    if churn_base:
        failed |= check_churn(churn_base, current_files)
    if restart_base:
        failed |= check_restarts(restart_base, current_files)
    if million_base:
        failed |= check_million(million_base, current_files,
                                args.max_regression)
    if reach_base:
        failed |= check_reach(reach_base, current_files)
    if flow_churn_base:
        failed |= check_flow_churn(flow_churn_base, current_files)

    if failed:
        print("\nFAIL: bench gate violated (regression, missing record, "
              "insufficient parallel/incremental speedup, or nondeterminism)")
        return 1
    print("\nOK: all bench gates within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
