#!/usr/bin/env python3
"""Gate on warm verdict throughput: compare BENCH_*.json against a baseline.

Usage:
  check_bench_regression.py BASELINE CURRENT [CURRENT ...] [--max-regression R]

BASELINE is a checked-in JSON array of verdict-sweep records (see
bench/baselines/verdict_smoke_baseline.json). Each CURRENT file is a
BENCH_<name>.json emitted by a bench run. Records are matched on
(bench, endpoints|instances, entries_per_ep); a matched record whose
warm_vps fell more than R (default 0.30) below the baseline fails the
gate, as does a baseline record with no current counterpart.

warm_hit_rate is also checked (absolute drop > 0.2 fails): throughput
is machine-dependent, but hit rate is not — a cache that stopped
caching shows up there regardless of how fast the runner is.
"""

import argparse
import json
import sys


def key(rec):
    return (
        rec.get("bench"),
        rec.get("endpoints"),
        rec.get("instances"),
        rec.get("entries_per_ep"),
    )


def load_verdict_records(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array")
    return [r for r in data if isinstance(r, dict) and "warm_vps" in r]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional drop in warm_vps before failing (default 0.30)",
    )
    args = parser.parse_args()

    baseline = load_verdict_records(args.baseline)
    if not baseline:
        print(f"error: no verdict records in baseline {args.baseline}")
        return 1

    current = {}
    for path in args.current:
        for rec in load_verdict_records(path):
            current[key(rec)] = rec

    failed = False
    floor = 1.0 - args.max_regression
    print(f"{'bench':<28} {'size':>8} {'baseline':>14} {'current':>14} {'ratio':>7}")
    for base in baseline:
        k = key(base)
        size = base.get("endpoints") or base.get("instances") or "-"
        cur = current.get(k)
        if cur is None:
            print(f"{k[0]:<28} {size:>8} {base['warm_vps']:>14.0f} {'MISSING':>14}")
            failed = True
            continue
        ratio = cur["warm_vps"] / base["warm_vps"] if base["warm_vps"] else 0.0
        verdict = "" if ratio >= floor else "  << REGRESSION"
        print(
            f"{k[0]:<28} {size:>8} {base['warm_vps']:>14.0f} "
            f"{cur['warm_vps']:>14.0f} {ratio:>7.2f}{verdict}"
        )
        if ratio < floor:
            failed = True
        base_hr = base.get("warm_hit_rate")
        cur_hr = cur.get("warm_hit_rate")
        if base_hr is not None and cur_hr is not None and cur_hr < base_hr - 0.2:
            print(f"  warm_hit_rate fell {base_hr:.3f} -> {cur_hr:.3f}")
            failed = True

    if failed:
        print(f"\nFAIL: warm verdict throughput regressed >{args.max_regression:.0%} "
              "(or a baseline record is missing)")
        return 1
    print("\nOK: warm verdict throughput within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
