#!/usr/bin/env bash
# Regenerates bench_output.txt (all experiment tables) and test_output.txt.
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja && cmake --build build || exit 1
ctest --test-dir build 2>&1 | tee test_output.txt
: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done
