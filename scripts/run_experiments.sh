#!/usr/bin/env bash
# Regenerates bench_output.txt (all experiment tables) and test_output.txt.
# bench_flow_sim emits JSON lines (the flow-churn cost model); set
# BENCH_FLOW_SIM_SMALL=1 to run only its quick N=1e3 sweep.
# bench_resilience (E8b) emits JSON lines comparing both worlds under
# identical fault storms; set E8_SMOKE=1 for the quick single-seed run.
# bench_warm_restart (E9b) emits JSON lines comparing cold vs warm
# control-plane restarts; set E9B_SMOKE=1 for the quick single-seed run.
# bench_scale_permits / bench_scale_routing run the verdict fast-path
# sweeps (E4b/E5b); set VERDICT_SMOKE=1 for the quick sizes.
# bench_million (E10) sweeps the memory diet 100k->1M endpoints; set
# E10_SMOKE=1 for the quick {100k, 1M} pair.
# JSON-emitting benches each write BENCH_<name>.json at the repo root
# (override per bench with --json_out=<path>); CI uploads these as
# artifacts and gates on them via scripts/check_bench_regression.py.
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja && cmake --build build || exit 1
ctest --test-dir build 2>&1 | tee test_output.txt
: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a bench_output.txt
  args=""
  if [ "$(basename "$b")" = bench_flow_sim ] &&
     [ "${BENCH_FLOW_SIM_SMALL:-0}" = 1 ]; then
    args="small"
  fi
  if [ "$(basename "$b")" = bench_resilience ] &&
     [ "${E8_SMOKE:-0}" = 1 ]; then
    args="smoke"
  fi
  if [ "$(basename "$b")" = bench_warm_restart ] &&
     [ "${E9B_SMOKE:-0}" = 1 ]; then
    args="smoke"
  fi
  case "$(basename "$b")" in
    bench_scale_permits|bench_scale_routing)
      [ "${VERDICT_SMOKE:-0}" = 1 ] && args="smoke" ;;
    bench_million)
      [ "${E10_SMOKE:-0}" = 1 ] && args="smoke" ;;
  esac
  "$b" $args 2>&1 | tee -a bench_output.txt
done
