// tenantnetctl — a line-oriented shell over the declarative API.
//
// Drives a simulated world with the Table 2 verbs, for exploration and
// scripting:
//
//   $ ./build/tools/tenantnetctl <<'EOF'
//   world test
//   launch 0
//   launch 1
//   eip 1
//   eip 2
//   permit <eip-of-2> <eip-of-1>/32 443
//   eval 1 <eip-of-2> 443
//   ledger
//   EOF
//
// Every command is one line; `help` lists them. Errors never exit the
// shell; they print and continue (exit status reports whether any command
// failed, so scripts can assert).

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/cloud/presets.h"
#include "src/core/api.h"

namespace tenantnet {
namespace {

class Shell {
 public:
  // Returns false if any command reported an error.
  bool Run(std::istream& in) {
    std::string line;
    bool all_ok = true;
    while (std::getline(in, line)) {
      std::string trimmed = Strip(line);
      if (trimmed.empty() || trimmed[0] == '#') {
        continue;
      }
      if (trimmed == "quit" || trimmed == "exit") {
        break;
      }
      if (!Dispatch(trimmed)) {
        all_ok = false;
      }
    }
    return all_ok;
  }

 private:
  static std::string Strip(const std::string& s) {
    size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      return "";
    }
    size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
  }

  static std::vector<std::string> Split(const std::string& s) {
    std::istringstream is(s);
    std::vector<std::string> out;
    std::string token;
    while (is >> token) {
      out.push_back(token);
    }
    return out;
  }

  bool Fail(const std::string& message) {
    std::printf("error: %s\n", message.c_str());
    return false;
  }

  bool NeedWorld() { return world_ != nullptr; }

  bool Dispatch(const std::string& line) {
    std::vector<std::string> args = Split(line);
    const std::string& cmd = args[0];
    if (cmd == "help") {
      return Help();
    }
    if (cmd == "world") {
      return CmdWorld(args);
    }
    if (world_ == nullptr) {
      return Fail("no world yet; run `world test` or `world fig1`");
    }
    if (cmd == "regions") {
      return CmdRegions();
    }
    if (cmd == "launch") {
      return CmdLaunch(args);
    }
    if (cmd == "eip") {
      return CmdEip(args);
    }
    if (cmd == "release") {
      return CmdRelease(args);
    }
    if (cmd == "sip") {
      return CmdSip(args);
    }
    if (cmd == "bind" || cmd == "unbind") {
      return CmdBind(args, cmd == "bind");
    }
    if (cmd == "permit") {
      return CmdPermit(args);
    }
    if (cmd == "permit-clear") {
      return CmdPermitClear(args);
    }
    if (cmd == "qos") {
      return CmdQos(args);
    }
    if (cmd == "profile") {
      return CmdProfile(args);
    }
    if (cmd == "eval") {
      return CmdEval(args);
    }
    if (cmd == "external") {
      return CmdExternal(args);
    }
    if (cmd == "ledger") {
      std::printf("%s\n", ledger_.Summary().c_str());
      return true;
    }
    if (cmd == "dot") {
      std::printf("%s", world_->topology().ToDot().c_str());
      return true;
    }
    return Fail("unknown command `" + cmd + "` (try `help`)");
  }

  bool Help() {
    std::printf(
        "world test|fig1             build a preset world\n"
        "regions                     list regions (index, provider, name)\n"
        "launch <region#> [zone]     launch an instance -> instance #\n"
        "eip <instance#>             request_eip\n"
        "release <addr>              release_eip\n"
        "sip [provider#]             request_sip\n"
        "bind <eip> <sip> [weight]   bind\n"
        "unbind <eip> <sip>\n"
        "permit <eip> <prefix> [port [tcp|udp]]   append a permit entry\n"
        "permit-clear <eip>          install an empty list (default-off)\n"
        "qos <region#> <bps>         set_qos\n"
        "profile hot|cold            egress transit profile\n"
        "eval <instance#> <addr> <port>\n"
        "external <src-addr> <dst-addr> <port>\n"
        "ledger | dot | quit\n");
    return true;
  }

  bool CmdWorld(const std::vector<std::string>& args) {
    if (args.size() != 2 || (args[1] != "test" && args[1] != "fig1")) {
      return Fail("usage: world test|fig1");
    }
    if (args[1] == "test") {
      TestWorld tw = BuildTestWorld();
      world_ = std::move(tw.world);
      tenant_ = tw.tenant;
    } else {
      Fig1World fig = BuildFig1World();
      world_ = std::move(fig.world);
      tenant_ = fig.tenant;
    }
    cloud_ = std::make_unique<DeclarativeCloud>(*world_, ledger_);
    instances_.clear();
    std::printf("world ready: %zu regions, %zu nodes, tenant #%llu\n",
                world_->region_count(), world_->topology().node_count(),
                static_cast<unsigned long long>(tenant_.value()));
    return true;
  }

  bool CmdRegions() {
    for (size_t i = 1; i <= world_->region_count(); ++i) {
      const RegionSite& region = world_->region(RegionId(i));
      std::printf("  %zu: %s:%s (%zu zones)\n", i - 1,
                  world_->provider(region.provider).name.c_str(),
                  region.name.c_str(), region.zones.size());
    }
    return true;
  }

  bool CmdLaunch(const std::vector<std::string>& args) {
    if (args.size() < 2) {
      return Fail("usage: launch <region#> [zone]");
    }
    size_t region_index = std::stoul(args[1]);
    if (region_index >= world_->region_count()) {
      return Fail("no such region");
    }
    RegionId region(region_index + 1);
    int zone = args.size() > 2 ? std::stoi(args[2]) : 0;
    auto inst = world_->LaunchInstance(tenant_, world_->region(region).provider,
                                       region, zone);
    if (!inst.ok()) {
      return Fail(inst.status().ToString());
    }
    instances_.push_back(*inst);
    std::printf("instance %zu\n", instances_.size());
    return true;
  }

  Result<InstanceId> InstanceArg(const std::string& arg) {
    size_t index = std::stoul(arg);
    if (index == 0 || index > instances_.size()) {
      return NotFoundError("no such instance # (see `launch`)");
    }
    return instances_[index - 1];
  }

  bool CmdEip(const std::vector<std::string>& args) {
    if (args.size() != 2) {
      return Fail("usage: eip <instance#>");
    }
    auto inst = InstanceArg(args[1]);
    if (!inst.ok()) {
      return Fail(inst.status().ToString());
    }
    auto eip = cloud_->RequestEip(*inst);
    if (!eip.ok()) {
      return Fail(eip.status().ToString());
    }
    std::printf("%s\n", eip->ToString().c_str());
    return true;
  }

  bool CmdRelease(const std::vector<std::string>& args) {
    if (args.size() != 2) {
      return Fail("usage: release <addr>");
    }
    auto addr = IpAddress::Parse(args[1]);
    if (!addr.ok()) {
      return Fail(addr.status().ToString());
    }
    Status status = cloud_->ReleaseEip(*addr);
    if (!status.ok()) {
      return Fail(status.ToString());
    }
    std::printf("released\n");
    return true;
  }

  bool CmdSip(const std::vector<std::string>& args) {
    size_t provider_index = args.size() > 1 ? std::stoul(args[1]) : 0;
    if (provider_index >= world_->provider_count()) {
      return Fail("no such provider");
    }
    auto sip = cloud_->RequestSip(tenant_, ProviderId(provider_index + 1));
    if (!sip.ok()) {
      return Fail(sip.status().ToString());
    }
    std::printf("%s\n", sip->ToString().c_str());
    return true;
  }

  bool CmdBind(const std::vector<std::string>& args, bool bind) {
    if (args.size() < 3) {
      return Fail("usage: (un)bind <eip> <sip> [weight]");
    }
    auto eip = IpAddress::Parse(args[1]);
    auto sip = IpAddress::Parse(args[2]);
    if (!eip.ok() || !sip.ok()) {
      return Fail("bad address");
    }
    Status status =
        bind ? cloud_->Bind(*eip, *sip,
                            args.size() > 3 ? std::stod(args[3]) : 1.0)
             : cloud_->Unbind(*eip, *sip);
    if (!status.ok()) {
      return Fail(status.ToString());
    }
    std::printf("ok\n");
    return true;
  }

  bool CmdPermit(const std::vector<std::string>& args) {
    if (args.size() < 3) {
      return Fail("usage: permit <eip> <prefix> [port [tcp|udp]]");
    }
    auto eip = IpAddress::Parse(args[1]);
    if (!eip.ok()) {
      return Fail("bad eip");
    }
    // Accept a bare address as a host prefix.
    std::string prefix_text = args[2];
    if (prefix_text.find('/') == std::string::npos) {
      prefix_text += "/32";
    }
    auto prefix = IpPrefix::Parse(prefix_text);
    if (!prefix.ok()) {
      return Fail(prefix.status().ToString());
    }
    PermitEntry entry;
    entry.source = *prefix;
    if (args.size() > 3) {
      entry.dst_ports =
          PortRange::Single(static_cast<uint16_t>(std::stoul(args[3])));
    }
    if (args.size() > 4) {
      entry.proto = args[4] == "udp" ? Protocol::kUdp : Protocol::kTcp;
    }
    auto when = cloud_->UpdatePermitList(*eip, {entry}, {});
    if (!when.ok()) {
      return Fail(when.status().ToString());
    }
    std::printf("permitted\n");
    return true;
  }

  bool CmdPermitClear(const std::vector<std::string>& args) {
    if (args.size() != 2) {
      return Fail("usage: permit-clear <eip>");
    }
    auto eip = IpAddress::Parse(args[1]);
    if (!eip.ok()) {
      return Fail("bad eip");
    }
    auto when = cloud_->SetPermitList(*eip, {});
    if (!when.ok()) {
      return Fail(when.status().ToString());
    }
    std::printf("default-off\n");
    return true;
  }

  bool CmdQos(const std::vector<std::string>& args) {
    if (args.size() != 3) {
      return Fail("usage: qos <region#> <bps>");
    }
    size_t region_index = std::stoul(args[1]);
    if (region_index >= world_->region_count()) {
      return Fail("no such region");
    }
    Status status = cloud_->SetQos(tenant_, RegionId(region_index + 1),
                                   std::stod(args[2]));
    if (!status.ok()) {
      return Fail(status.ToString());
    }
    std::printf("ok\n");
    return true;
  }

  bool CmdProfile(const std::vector<std::string>& args) {
    if (args.size() != 2 || (args[1] != "hot" && args[1] != "cold")) {
      return Fail("usage: profile hot|cold");
    }
    Status status = cloud_->SetEgressProfile(
        tenant_, args[1] == "hot" ? EgressPolicy::kHotPotato
                                  : EgressPolicy::kColdPotato);
    if (!status.ok()) {
      return Fail(status.ToString());
    }
    std::printf("ok\n");
    return true;
  }

  bool CmdEval(const std::vector<std::string>& args) {
    if (args.size() != 4) {
      return Fail("usage: eval <instance#> <addr> <port>");
    }
    auto src = InstanceArg(args[1]);
    auto dst = IpAddress::Parse(args[2]);
    if (!src.ok() || !dst.ok()) {
      return Fail("bad source instance or destination address");
    }
    auto result = cloud_->Evaluate(
        *src, *dst, static_cast<uint16_t>(std::stoul(args[3])),
        Protocol::kTcp);
    if (!result.ok()) {
      return Fail(result.status().ToString());
    }
    PrintDelivery(*result);
    return true;
  }

  bool CmdExternal(const std::vector<std::string>& args) {
    if (args.size() != 4) {
      return Fail("usage: external <src-addr> <dst-addr> <port>");
    }
    auto src = IpAddress::Parse(args[1]);
    auto dst = IpAddress::Parse(args[2]);
    if (!src.ok() || !dst.ok()) {
      return Fail("bad address");
    }
    PrintDelivery(cloud_->EvaluateExternal(
        *src, *dst, static_cast<uint16_t>(std::stoul(args[3])),
        Protocol::kTcp));
    return true;
  }

  void PrintDelivery(const DeclarativeDelivery& d) {
    if (d.delivered) {
      std::printf("DELIVERED to %s (%s)\n",
                  d.effective_dst.ToString().c_str(),
                  std::string(EgressPolicyName(d.egress_policy)).c_str());
    } else {
      std::printf("DROPPED at %s: %s\n", d.drop_stage.c_str(),
                  d.drop_reason.c_str());
    }
  }

  std::unique_ptr<CloudWorld> world_;
  std::unique_ptr<DeclarativeCloud> cloud_;
  ConfigLedger ledger_;
  TenantId tenant_;
  std::vector<InstanceId> instances_;
};

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Shell shell;
  return shell.Run(std::cin) ? 0 : 1;
}
