// E11 — §1: "building a virtual network is ad hoc, complex, and ultimately
// expensive." The monthly bill for the Fig. 1 network layer, priced with a
// parameterized book in the vicinity of public list prices.
//
// Both worlds pay identical provider *transfer* charges; the comparison
// isolates what the boxes add: instance-hours for every gateway/appliance
// plus per-GB processing at each box the traffic crosses. The declarative
// column's only extra is the (unpriced-by-default) egress guarantee.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cloud/presets.h"
#include "src/vnet/builder.h"
#include "src/vnet/pricing.h"

namespace tenantnet {
namespace {

void Run() {
  Banner("E11", "The monthly bill: tenant network layer, both worlds");

  Fig1World fig = BuildFig1World();
  ConfigLedger ledger;
  BaselineNetwork baseline(*fig.world, ledger);
  auto handles = BuildFig1Baseline(baseline, fig);
  if (!handles.ok()) {
    std::printf("build failed\n");
    return;
  }

  // A plausible month for the Fig. 1 app (spark->db bulk dominates).
  MonthlyTraffic traffic;
  traffic.intra_region_gb = 50000;
  traffic.inter_region_gb = 8000;
  traffic.cross_cloud_gb = 20000;
  traffic.internet_egress_gb = 5000;
  traffic.nat_egress_gb = 1000;

  PriceBook book;
  CostReport base = PriceBaseline(baseline, book, traffic);
  // Reserve 10 Gbps x 2 regions of egress guarantee in the declarative
  // world (matching E1's set_qos calls); unpriced by default.
  CostReport decl = PriceDeclarative(book, traffic, /*reserved_gbps=*/20);

  std::printf("\nBaseline bill (USD/month):\n");
  TablePrinter table({26, 12, 12, 12, 12});
  table.Row({"component", "box-hours", "processing", "transfer", "total"});
  table.Rule();
  for (const auto& [kind, line] : base.lines) {
    table.Row({kind, FmtF(line.box_hours_usd, 0),
               FmtF(line.processing_usd, 0), FmtF(line.transfer_usd, 0),
               FmtF(line.total(), 0)});
  }
  CostLine base_sum = base.Sum();
  table.Rule();
  table.Row({"TOTAL", FmtF(base_sum.box_hours_usd, 0),
             FmtF(base_sum.processing_usd, 0),
             FmtF(base_sum.transfer_usd, 0), FmtF(base_sum.total(), 0)});

  std::printf("\nDeclarative bill (USD/month):\n");
  TablePrinter dtable({26, 12, 12, 12, 12});
  dtable.Row({"component", "box-hours", "processing", "transfer", "total"});
  dtable.Rule();
  for (const auto& [kind, line] : decl.lines) {
    dtable.Row({kind, FmtF(line.box_hours_usd, 0),
                FmtF(line.processing_usd, 0), FmtF(line.transfer_usd, 0),
                FmtF(line.total(), 0)});
  }
  CostLine decl_sum = decl.Sum();
  dtable.Rule();
  dtable.Row({"TOTAL", FmtF(decl_sum.box_hours_usd, 0),
              FmtF(decl_sum.processing_usd, 0),
              FmtF(decl_sum.transfer_usd, 0), FmtF(decl_sum.total(), 0)});

  double premium = base_sum.total() - decl_sum.total();
  std::printf(
      "\nNetwork-layer premium the boxes add: $%.0f/month (%.0f%% on top of\n"
      "the transfer charges both worlds pay). The declarative guarantee\n"
      "line is $%.0f — the provider's pricing freedom for set_qos; it has\n"
      "that much headroom before the tenant is worse off.\n",
      premium,
      100.0 * premium / std::max(1.0, decl_sum.total()),
      decl.lines.at("egress guarantee").box_hours_usd);
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Run();
  return 0;
}
