// E4b — §6(i): does a dynamic shared permit-list between tenants and cloud
// providers scale?
//
// Two sweeps:
//  1. Static scale: endpoints x entries-per-endpoint x edge replicas ->
//     installed filter state and update fan-out.
//  2. Dynamic scale: replay a synthetic tenant trace (launches/teardowns
//     with Zipf communication partners); every lifecycle event triggers
//     permit-list updates on the affected partners. Reports update
//     messages per simulated second and the install-convergence latency
//     distribution (time until the *last* edge applies an update).
//  3. Verdict fast path: cold/warm/churn verdict throughput of the cached
//     data plane (Admits) against the compiled-uncached matcher and the
//     original linear scan, plus compile cost and cache hit rates. JSON
//     rows land in BENCH_scale_permits.json for the CI regression gate.
//
// Args: `smoke` shrinks the sweeps for CI; `--json_out=<path>` moves the
// JSON artifact.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/trace.h"
#include "src/common/rng.h"
#include "src/core/edge_filter.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {
namespace {

void StaticSweep(bool smoke) {
  std::printf("\nStatic state: entries replicated across ingress edges\n");
  TablePrinter table({10, 14, 8, 16, 16});
  table.Row({"endpoints", "entries/ep", "edges", "installed total",
             "update msgs"});
  table.Rule();
  std::vector<uint64_t> endpoint_sizes =
      smoke ? std::vector<uint64_t>{1000}
            : std::vector<uint64_t>{1000, 10000, 100000};
  for (uint64_t endpoints : endpoint_sizes) {
    for (uint64_t entries : {4u, 16u, 64u}) {
      for (size_t edges : {3u, 10u, 25u}) {
        EdgeFilterBank bank("p", nullptr, 1);
        for (size_t e = 0; e < edges; ++e) {
          bank.AddEdge("edge" + std::to_string(e));
        }
        std::vector<PermitEntry> permits(entries);
        for (uint64_t i = 0; i < entries; ++i) {
          permits[i].source = IpPrefix::Host(
              IpAddress::V4(static_cast<uint32_t>(0x0A000000 + i)));
        }
        for (uint64_t ep = 0; ep < endpoints; ++ep) {
          bank.SetPermitList(
              IpAddress::V4(static_cast<uint32_t>(0x05000000 + ep)), permits);
        }
        if (entries == 16 || endpoints == 1000) {
          table.Row({FmtInt(endpoints), FmtInt(entries), FmtInt(edges),
                     FmtInt(bank.total_installed_entries()),
                     FmtInt(bank.update_messages_sent())});
        }
      }
    }
  }
  std::printf(
      "State grows as endpoints x entries x edges: linear in each factor —\n"
      "big but partitionable (each edge only needs lists for endpoints it\n"
      "can reach; here we charge the worst case of full replication).\n");
}

void ChurnReplay(bool smoke) {
  std::printf("\nDynamic scale: trace-driven permit-list churn\n");
  TablePrinter table({10, 12, 14, 16, 14, 14});
  table.Row({"tenants", "launch/s", "events", "update msgs", "msgs/sim-s",
             "p99 conv ms"});
  table.Rule();

  std::vector<uint64_t> tenant_sizes =
      smoke ? std::vector<uint64_t>{5} : std::vector<uint64_t>{5, 20, 80};
  for (uint64_t tenants : tenant_sizes) {
    TraceParams params;
    params.tenants = tenants;
    params.launches_per_second_per_tenant = 1.0;
    params.duration = SimDuration::Seconds(300);
    params.partners_per_instance = 4;
    params.mean_lifetime_seconds = 120;
    TenantTrace trace = GenerateTrace(params);

    EventQueue queue;
    EdgeFilterBank bank("p", &queue, 5);
    for (int e = 0; e < 10; ++e) {
      bank.AddEdge("edge" + std::to_string(e));
    }
    Histogram convergence_ms;
    uint64_t updates = 0;

    // Each live instance's permit list = its inbound partners. A launch
    // adds the newcomer to each partner's list (and installs its own); a
    // teardown removes it again.
    std::map<uint64_t, std::set<uint64_t>> inbound;    // instance -> sources
    std::map<uint64_t, std::set<uint64_t>> listed_in;  // src -> endpoints
    auto addr_of = [](uint64_t instance) {
      return IpAddress::V4(static_cast<uint32_t>(0x05000000 + instance));
    };
    auto reinstall = [&](uint64_t instance) {
      std::vector<PermitEntry> permits;
      for (uint64_t src : inbound[instance]) {
        PermitEntry e;
        e.source = IpPrefix::Host(addr_of(src));
        permits.push_back(e);
      }
      SimTime done = bank.SetPermitList(addr_of(instance), permits);
      convergence_ms.Record((done - queue.now()).ToMillis());
      ++updates;
    };

    for (const TraceEvent& event : trace.events) {
      queue.RunUntil(event.at);
      if (event.kind == TraceEventKind::kLaunch) {
        for (uint64_t partner : event.talks_to) {
          inbound[partner].insert(event.instance);
          listed_in[event.instance].insert(partner);
          reinstall(partner);
          inbound[event.instance].insert(partner);
          listed_in[partner].insert(event.instance);
        }
        reinstall(event.instance);
      } else {
        for (uint64_t target : listed_in[event.instance]) {
          auto it = inbound.find(target);
          if (it != inbound.end() && it->second.erase(event.instance) > 0) {
            reinstall(target);
          }
        }
        listed_in.erase(event.instance);
        inbound.erase(event.instance);
        bank.RemovePermitList(addr_of(event.instance));
      }
    }
    queue.RunAll();

    double sim_seconds = params.duration.ToSeconds();
    table.Row({FmtInt(tenants),
               FmtF(params.launches_per_second_per_tenant, 1),
               FmtInt(trace.events.size()),
               FmtInt(bank.update_messages_sent()),
               FmtF(static_cast<double>(bank.update_messages_sent()) /
                        sim_seconds,
                    1),
               FmtF(convergence_ms.P99(), 1)});
  }
  std::printf(
      "Update load scales with churn x partner degree, not with total\n"
      "endpoint count; convergence latency is the per-edge install time\n"
      "(independent of scale) — the shared permit-list is dynamically\n"
      "maintainable at these rates.\n");
}

// --- Verdict fast path -------------------------------------------------------

// Wall-clock verdicts/sec of `verdict(flow)` over `passes` passes of the
// query set. The admitted count defeats dead-code elimination and doubles
// as an equivalence check between the three data-plane paths.
template <typename Fn>
std::pair<double, uint64_t> MeasureVerdicts(
    const std::vector<FiveTuple>& queries, int passes, Fn&& verdict) {
  uint64_t admitted = 0;
  auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    for (const FiveTuple& q : queries) {
      admitted += verdict(q) ? 1 : 0;
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  double seconds =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      1e9;
  double vps = static_cast<double>(queries.size()) *
               static_cast<double>(passes) / seconds;
  return {vps, admitted / static_cast<uint64_t>(passes)};
}

void VerdictSweep(BenchJsonWriter& json, bool smoke) {
  std::printf(
      "\nVerdict fast path: compiled matchers + generational cache\n");
  TablePrinter table({10, 11, 12, 12, 12, 12, 12, 10, 9});
  table.Row({"endpoints", "compile ms", "linear v/s", "uncached", "cold",
             "warm", "churn", "warm hit%", "speedup"});
  table.Rule();

  const uint64_t kEntriesPerEp = 16;
  std::vector<uint64_t> sizes =
      smoke ? std::vector<uint64_t>{1000} : std::vector<uint64_t>{10000,
                                                                  100000};
  const size_t kQueries = smoke ? 16384 : 65536;
  const int kWarmPasses = smoke ? 4 : 6;

  for (uint64_t endpoints : sizes) {
    EdgeFilterParams params;
    params.verdict_cache_slots = 1 << 19;  // queries fit: warm ≈ all hits
    EdgeFilterBank bank("p", nullptr, 1, params);
    bank.AddEdge("edge0");

    // One shared group every list references (exercises the hash-set
    // membership path alongside the prefix trie).
    EndpointGroupId group(1);
    std::vector<IpAddress> members;
    for (uint32_t m = 0; m < 64; ++m) {
      members.push_back(IpAddress::V4(0x0B000000 + m));
    }
    bank.SetGroup(group, members);

    auto ep_addr = [](uint64_t ep) {
      return IpAddress::V4(static_cast<uint32_t>(0x05000000 + ep));
    };
    auto host_src = [](uint64_t ep, uint64_t k) {
      return IpAddress::V4(
          static_cast<uint32_t>(0x0A000000 + (ep * 13 + k) % 0x00FFFFFF));
    };

    // 16 entries per endpoint: 13 host prefixes, one scoped CIDR, one
    // scoped group reference, one protocol-scoped wide prefix.
    auto start_compile = std::chrono::steady_clock::now();
    for (uint64_t ep = 0; ep < endpoints; ++ep) {
      std::vector<PermitEntry> permits;
      permits.reserve(kEntriesPerEp);
      for (uint64_t k = 0; k < 13; ++k) {
        PermitEntry e;
        e.source = IpPrefix::Host(host_src(ep, k));
        permits.push_back(e);
      }
      PermitEntry cidr;
      cidr.source = *IpPrefix::Parse("10.200.0.0/16");
      cidr.dst_ports = PortRange::Single(8080);
      permits.push_back(cidr);
      PermitEntry grp;
      grp.source_group = group;
      grp.proto = Protocol::kTcp;
      grp.dst_ports = PortRange::Single(443);
      permits.push_back(grp);
      PermitEntry udp;
      udp.source = *IpPrefix::Parse("11.0.0.0/8");
      udp.proto = Protocol::kUdp;
      permits.push_back(udp);
      bank.SetPermitList(ep_addr(ep), std::move(permits));
    }
    double compile_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_compile)
                .count()) /
        1000.0;

    // Query mix: permitted host / scoped CIDR / group member / denied.
    Rng rng(42);
    std::vector<FiveTuple> queries;
    queries.reserve(kQueries);
    for (size_t i = 0; i < kQueries; ++i) {
      uint64_t ep = rng.NextU64(endpoints);
      FiveTuple flow;
      flow.dst = ep_addr(ep);
      flow.src_port = 40000;
      flow.dst_port = 443;
      flow.proto = Protocol::kTcp;
      switch (rng.NextU64(4)) {
        case 0:
          flow.src = host_src(ep, rng.NextU64(13));
          break;
        case 1:
          flow.src = IpAddress::V4(
              0x0AC80000 + static_cast<uint32_t>(rng.NextU64(0x10000)));
          flow.dst_port = rng.NextBool(0.5) ? 8080 : 443;
          break;
        case 2:
          flow.src = members[rng.NextU64(members.size())];
          break;
        default:
          flow.src = IpAddress::V4(
              0x0C000000 + static_cast<uint32_t>(rng.NextU64(0x01000000)));
          break;
      }
      queries.push_back(flow);
    }

    auto [linear_vps, linear_admits] = MeasureVerdicts(
        queries, 1,
        [&](const FiveTuple& q) { return bank.AdmitsLinear(0, q); });
    auto [uncached_vps, uncached_admits] = MeasureVerdicts(
        queries, 2,
        [&](const FiveTuple& q) { return bank.AdmitsUncached(0, q); });

    bank.ClearVerdictCache();
    bank.ResetVerdictCacheStats();
    auto [cold_vps, cold_admits] = MeasureVerdicts(
        queries, 1, [&](const FiveTuple& q) { return bank.Admits(0, q); });

    bank.ResetVerdictCacheStats();
    auto [warm_vps, warm_admits] = MeasureVerdicts(
        queries, kWarmPasses,
        [&](const FiveTuple& q) { return bank.Admits(0, q); });
    double warm_hit = bank.verdict_cache_stats().hit_rate();

    if (linear_admits != uncached_admits || linear_admits != cold_admits ||
        linear_admits != warm_admits) {
      std::printf("VERDICT MISMATCH: linear=%llu uncached=%llu cold=%llu "
                  "warm=%llu\n",
                  static_cast<unsigned long long>(linear_admits),
                  static_cast<unsigned long long>(uncached_admits),
                  static_cast<unsigned long long>(cold_admits),
                  static_cast<unsigned long long>(warm_admits));
      return;
    }

    // Churn: every 1024 verdicts one endpoint's list is reinstalled.
    // Scoped epochs mean only that endpoint's cached verdicts go stale;
    // throughput should stay near warm, not collapse to cold.
    bank.ResetVerdictCacheStats();
    uint64_t churn_counter = 0;
    uint64_t churn_victim = 0;
    auto [churn_vps, churn_admits] = MeasureVerdicts(
        queries, kWarmPasses, [&](const FiveTuple& q) {
          if ((++churn_counter & 1023) == 0) {
            uint64_t ep = churn_victim++ % endpoints;
            std::vector<PermitEntry> permits;
            for (uint64_t k = 0; k < 13; ++k) {
              PermitEntry e;
              e.source = IpPrefix::Host(host_src(ep, k));
              permits.push_back(e);
            }
            PermitEntry cidr;
            cidr.source = *IpPrefix::Parse("10.200.0.0/16");
            cidr.dst_ports = PortRange::Single(8080);
            permits.push_back(cidr);
            PermitEntry grp;
            grp.source_group = group;
            grp.proto = Protocol::kTcp;
            grp.dst_ports = PortRange::Single(443);
            permits.push_back(grp);
            PermitEntry udp;
            udp.source = *IpPrefix::Parse("11.0.0.0/8");
            udp.proto = Protocol::kUdp;
            permits.push_back(udp);
            bank.SetPermitList(ep_addr(ep), std::move(permits));
          }
          return bank.Admits(0, q);
        });
    (void)churn_admits;  // identical lists: verdicts unchanged by churn
    double churn_hit = bank.verdict_cache_stats().hit_rate();

    double speedup = warm_vps / linear_vps;
    table.Row({FmtInt(endpoints), FmtF(compile_ms, 1), FmtF(linear_vps, 0),
               FmtF(uncached_vps, 0), FmtF(cold_vps, 0), FmtF(warm_vps, 0),
               FmtF(churn_vps, 0), FmtF(warm_hit * 100.0, 1),
               FmtF(speedup, 1)});
    json.Recordf(
        "{\"bench\":\"scale_permits_verdict\",\"endpoints\":%llu,"
        "\"entries_per_ep\":%llu,\"compiles\":%llu,\"compile_ms\":%.2f,"
        "\"linear_vps\":%.0f,\"uncached_vps\":%.0f,\"cold_vps\":%.0f,"
        "\"warm_vps\":%.0f,\"churn_vps\":%.0f,\"warm_hit_rate\":%.4f,"
        "\"churn_hit_rate\":%.4f,\"speedup_warm_vs_linear\":%.2f}",
        static_cast<unsigned long long>(endpoints),
        static_cast<unsigned long long>(kEntriesPerEp),
        static_cast<unsigned long long>(bank.permit_compiles()), compile_ms,
        linear_vps, uncached_vps, cold_vps, warm_vps, churn_vps, warm_hit,
        churn_hit, speedup);
  }
  std::printf(
      "Warm verdicts are one cache probe + generation compares; churn only\n"
      "invalidates the mutated endpoint's verdicts (scoped epochs), so\n"
      "throughput under churn tracks warm, not cold. Compile cost is paid\n"
      "once per list update, off the data path.\n");
}

}  // namespace
}  // namespace tenantnet

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  tenantnet::BenchJsonWriter json("scale_permits", argc, argv);
  tenantnet::Banner("E4b", "Scalability: dynamic shared permit-lists (§6 i)");
  tenantnet::StaticSweep(smoke);
  tenantnet::ChurnReplay(smoke);
  tenantnet::VerdictSweep(json, smoke);
  return 0;
}
