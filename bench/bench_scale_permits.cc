// E4b — §6(i): does a dynamic shared permit-list between tenants and cloud
// providers scale?
//
// Two sweeps:
//  1. Static scale: endpoints x entries-per-endpoint x edge replicas ->
//     installed filter state and update fan-out.
//  2. Dynamic scale: replay a synthetic tenant trace (launches/teardowns
//     with Zipf communication partners); every lifecycle event triggers
//     permit-list updates on the affected partners. Reports update
//     messages per simulated second and the install-convergence latency
//     distribution (time until the *last* edge applies an update).

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/trace.h"
#include "src/core/edge_filter.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {
namespace {

void StaticSweep() {
  std::printf("\nStatic state: entries replicated across ingress edges\n");
  TablePrinter table({10, 14, 8, 16, 16});
  table.Row({"endpoints", "entries/ep", "edges", "installed total",
             "update msgs"});
  table.Rule();
  for (uint64_t endpoints : {1000u, 10000u, 100000u}) {
    for (uint64_t entries : {4u, 16u, 64u}) {
      for (size_t edges : {3u, 10u, 25u}) {
        EdgeFilterBank bank("p", nullptr, 1);
        for (size_t e = 0; e < edges; ++e) {
          bank.AddEdge("edge" + std::to_string(e));
        }
        std::vector<PermitEntry> permits(entries);
        for (uint64_t i = 0; i < entries; ++i) {
          permits[i].source = IpPrefix::Host(
              IpAddress::V4(static_cast<uint32_t>(0x0A000000 + i)));
        }
        for (uint64_t ep = 0; ep < endpoints; ++ep) {
          bank.SetPermitList(
              IpAddress::V4(static_cast<uint32_t>(0x05000000 + ep)), permits);
        }
        if (entries == 16 || endpoints == 1000) {
          table.Row({FmtInt(endpoints), FmtInt(entries), FmtInt(edges),
                     FmtInt(bank.total_installed_entries()),
                     FmtInt(bank.update_messages_sent())});
        }
      }
    }
  }
  std::printf(
      "State grows as endpoints x entries x edges: linear in each factor —\n"
      "big but partitionable (each edge only needs lists for endpoints it\n"
      "can reach; here we charge the worst case of full replication).\n");
}

void ChurnReplay() {
  std::printf("\nDynamic scale: trace-driven permit-list churn\n");
  TablePrinter table({10, 12, 14, 16, 14, 14});
  table.Row({"tenants", "launch/s", "events", "update msgs", "msgs/sim-s",
             "p99 conv ms"});
  table.Rule();

  for (uint64_t tenants : {5u, 20u, 80u}) {
    TraceParams params;
    params.tenants = tenants;
    params.launches_per_second_per_tenant = 1.0;
    params.duration = SimDuration::Seconds(300);
    params.partners_per_instance = 4;
    params.mean_lifetime_seconds = 120;
    TenantTrace trace = GenerateTrace(params);

    EventQueue queue;
    EdgeFilterBank bank("p", &queue, 5);
    for (int e = 0; e < 10; ++e) {
      bank.AddEdge("edge" + std::to_string(e));
    }
    Histogram convergence_ms;
    uint64_t updates = 0;

    // Each live instance's permit list = its inbound partners. A launch
    // adds the newcomer to each partner's list (and installs its own); a
    // teardown removes it again.
    std::map<uint64_t, std::set<uint64_t>> inbound;    // instance -> sources
    std::map<uint64_t, std::set<uint64_t>> listed_in;  // src -> endpoints
    auto addr_of = [](uint64_t instance) {
      return IpAddress::V4(static_cast<uint32_t>(0x05000000 + instance));
    };
    auto reinstall = [&](uint64_t instance) {
      std::vector<PermitEntry> permits;
      for (uint64_t src : inbound[instance]) {
        PermitEntry e;
        e.source = IpPrefix::Host(addr_of(src));
        permits.push_back(e);
      }
      SimTime done = bank.SetPermitList(addr_of(instance), permits);
      convergence_ms.Record((done - queue.now()).ToMillis());
      ++updates;
    };

    for (const TraceEvent& event : trace.events) {
      queue.RunUntil(event.at);
      if (event.kind == TraceEventKind::kLaunch) {
        for (uint64_t partner : event.talks_to) {
          inbound[partner].insert(event.instance);
          listed_in[event.instance].insert(partner);
          reinstall(partner);
          inbound[event.instance].insert(partner);
          listed_in[partner].insert(event.instance);
        }
        reinstall(event.instance);
      } else {
        for (uint64_t target : listed_in[event.instance]) {
          auto it = inbound.find(target);
          if (it != inbound.end() && it->second.erase(event.instance) > 0) {
            reinstall(target);
          }
        }
        listed_in.erase(event.instance);
        inbound.erase(event.instance);
        bank.RemovePermitList(addr_of(event.instance));
      }
    }
    queue.RunAll();

    double sim_seconds = params.duration.ToSeconds();
    table.Row({FmtInt(tenants),
               FmtF(params.launches_per_second_per_tenant, 1),
               FmtInt(trace.events.size()),
               FmtInt(bank.update_messages_sent()),
               FmtF(static_cast<double>(bank.update_messages_sent()) /
                        sim_seconds,
                    1),
               FmtF(convergence_ms.P99(), 1)});
  }
  std::printf(
      "Update load scales with churn x partner degree, not with total\n"
      "endpoint count; convergence latency is the per-edge install time\n"
      "(independent of scale) — the shared permit-list is dynamically\n"
      "maintainable at these rates.\n");
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Banner("E4b", "Scalability: dynamic shared permit-lists (§6 i)");
  tenantnet::StaticSweep();
  tenantnet::ChurnReplay();
  return 0;
}
