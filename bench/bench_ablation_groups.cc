// Ablation — endpoint groups vs host-granular permit lists under churn.
//
// DESIGN.md calls out the grouping extension (§4: the one VPC role the
// base API dropped). This ablation replays the same tenant churn trace
// three ways and counts control-plane work:
//
//   host-lists/full     every membership change rewrites each referencing
//                       permit list in full (the base Table 2 API)
//   host-lists/incr     same, but with the incremental update extension
//   groups              permit lists reference a group; a change is one
//                       group-membership call regardless of fan-in
//
// The scenario: one popular service tier of `kServers` endpoints, every
// one of which permits "the worker group"; workers churn (launch/teardown)
// at trace rates. Fan-in is what separates the three columns.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/trace.h"
#include "src/core/edge_filter.h"

namespace tenantnet {
namespace {

constexpr size_t kServers = 20;
constexpr size_t kEdges = 10;

IpAddress WorkerAddr(uint64_t instance) {
  return IpAddress::V4(static_cast<uint32_t>(0x05000000 + instance));
}
IpAddress ServerAddr(size_t index) {
  return IpAddress::V4(static_cast<uint32_t>(0x06000000 + index));
}

TenantTrace MakeTrace() {
  TraceParams params;
  params.tenants = 1;
  params.launches_per_second_per_tenant = 3.0;
  params.duration = SimDuration::Seconds(600);
  params.mean_lifetime_seconds = 120;
  return GenerateTrace(params);
}

struct AblationResult {
  uint64_t update_messages;
  uint64_t entries_transmitted;  // payload: permit entries / members sent
  uint64_t peak_entries;
};

enum class Mode { kFullRewrite, kIncremental, kGroups };

AblationResult Run(Mode mode) {
  TenantTrace trace = MakeTrace();
  EdgeFilterBank bank("p", nullptr, 3);
  for (size_t e = 0; e < kEdges; ++e) {
    bank.AddEdge("edge" + std::to_string(e));
  }

  EndpointGroupId workers(1);
  std::set<uint64_t> live;

  // Install the servers' permit lists once.
  if (mode == Mode::kGroups) {
    PermitEntry by_group;
    by_group.source_group = workers;
    for (size_t s = 0; s < kServers; ++s) {
      bank.SetPermitList(ServerAddr(s), {by_group});
    }
    bank.SetGroup(workers, {});
  } else {
    for (size_t s = 0; s < kServers; ++s) {
      bank.SetPermitList(ServerAddr(s), {});
    }
  }

  uint64_t transmitted = 0;
  uint64_t peak_entries = 0;
  auto full_lists = [&live]() {
    std::vector<PermitEntry> entries;
    for (uint64_t worker : live) {
      PermitEntry e;
      e.source = IpPrefix::Host(WorkerAddr(worker));
      entries.push_back(e);
    }
    return entries;
  };

  for (const TraceEvent& event : trace.events) {
    if (event.kind == TraceEventKind::kLaunch) {
      live.insert(event.instance);
    } else {
      live.erase(event.instance);
    }
    switch (mode) {
      case Mode::kFullRewrite: {
        std::vector<PermitEntry> entries = full_lists();
        for (size_t s = 0; s < kServers; ++s) {
          bank.SetPermitList(ServerAddr(s), entries);
          transmitted += entries.size() * kEdges;
        }
        break;
      }
      case Mode::kIncremental: {
        PermitEntry delta;
        delta.source = IpPrefix::Host(WorkerAddr(event.instance));
        for (size_t s = 0; s < kServers; ++s) {
          if (event.kind == TraceEventKind::kLaunch) {
            bank.UpdatePermitList(ServerAddr(s), {delta}, {});
          } else {
            bank.UpdatePermitList(ServerAddr(s), {}, {delta});
          }
          transmitted += kEdges;  // one delta entry per edge
        }
        break;
      }
      case Mode::kGroups: {
        std::vector<IpAddress> members;
        members.reserve(live.size());
        for (uint64_t worker : live) {
          members.push_back(WorkerAddr(worker));
        }
        transmitted += kEdges;  // a delta-encoded membership change
        bank.SetGroup(workers, std::move(members));
        break;
      }
    }
    peak_entries = std::max(peak_entries, bank.total_installed_entries());
  }
  return AblationResult{bank.update_messages_sent(), transmitted,
                        peak_entries};
}

void RunAll() {
  Banner("Ablation", "endpoint groups vs per-host permit lists");
  TenantTrace trace = MakeTrace();
  std::printf(
      "\n%zu servers each permitting the worker tier; %llu churn events\n"
      "(peak %llu live workers), %zu-edge replication.\n",
      kServers, static_cast<unsigned long long>(trace.events.size()),
      static_cast<unsigned long long>(trace.peak_live_instances), kEdges);

  TablePrinter table({22, 18, 20, 16});
  table.Row({"mode", "update messages", "entries sent", "peak entries"});
  table.Rule();
  struct Row {
    const char* name;
    Mode mode;
  };
  for (const Row& row : {Row{"host-lists/full", Mode::kFullRewrite},
                         Row{"host-lists/incr", Mode::kIncremental},
                         Row{"groups", Mode::kGroups}}) {
    AblationResult r = Run(row.mode);
    table.Row({row.name, FmtInt(r.update_messages),
               FmtInt(r.entries_transmitted), FmtInt(r.peak_entries)});
  }
  std::printf(
      "\nReading: per-host lists pay fan-in x edges per churn event (full\n"
      "rewrites also pay list length); groups pay edges only — the VPC's\n"
      "grouping role, recovered as a one-call extension.\n");
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::RunAll();
  return 0;
}
