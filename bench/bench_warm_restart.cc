// E9b warm-restart experiment — cold vs warm control-plane restarts under
// identical seeded restart storms, with the traffic disruption measured.
//
// Two sweeps, each run once per (mode, seed) with the SAME FaultSchedule:
//
//   * Filter/LB sweep (declarative world): a restart-only storm kills the
//     per-provider filter banks and the SIP load balancer while a retrying
//     request workload runs. A cold completion flushes every edge and
//     re-pushes the whole permit surface — the install latency opens a
//     default-off window in which admitted traffic is blackholed at the
//     edge. A warm completion replays the buffered mutations and applies
//     only content deltas, so an unchanged permit surface never denies a
//     packet. Reported: blackholed bytes (denied responses x response
//     size), denial/retry counts, verdict-epoch bumps (cache kills),
//     restart-to-converged latency.
//
//   * Routing sweep (baseline world): the storm restarts the whole routing
//     plane (BgpMesh + TGW FIBs) while backbone link faults and gateway
//     restarts churn sessions around it. Mutations arriving mid-outage
//     buffer and replay at completion. Reported: reconcile deltas vs
//     entries checked, config-epoch bumps, and a differential check that
//     the reconciled state matches a from-scratch PropagateRoutesFull()
//     rebuild exactly.
//
// A summary record per seed carries the warm/cold blackholed-bytes ratio;
// CI gates it (< 0.10) via scripts/check_bench_regression.py against
// bench/baselines/warm_restart_smoke_baseline.json. Run with arg "smoke"
// for the CI fast path.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/common/reconcile.h"
#include "src/core/api.h"
#include "src/faults/fault_injector.h"
#include "src/restart/warm_restart.h"
#include "src/sim/flow_sim.h"
#include "src/vnet/builder.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

BenchJsonWriter* g_json = nullptr;

struct RestartBenchConfig {
  uint64_t storm_seed = 7;
  size_t restart_count = 14;  // restart-only storm events
  SimDuration window = SimDuration::Seconds(12);
  SimDuration min_outage = SimDuration::Millis(200);
  SimDuration max_outage = SimDuration::Seconds(1);
  double rps = 200.0;  // dense enough to sample every default-off window
  SimDuration workload_span = SimDuration::Seconds(16);
  size_t mean_response_bytes = 128 * 1024;
};

// Flat permit-everyone app (same shape as the E8b deployment): restart
// disruption should come from the restart machinery, not the policy.
std::map<uint64_t, IpAddress> DeployApp(DeclarativeCloud& cloud,
                                        const Fig1World& fig) {
  std::map<uint64_t, IpAddress> eip;
  std::vector<InstanceId> all = fig.AllInstances();
  for (InstanceId id : all) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  for (InstanceId dst : all) {
    std::vector<PermitEntry> permits;
    for (InstanceId src : all) {
      if (src != dst) {
        PermitEntry e;
        e.source = IpPrefix::Host(eip[src.value()]);
        permits.push_back(e);
      }
    }
    (void)cloud.SetPermitList(eip[dst.value()], permits);
  }
  return eip;
}

struct HistAgg {
  double mean_sum = 0;
  double max = 0;
  uint64_t count = 0;
  void Add(const Histogram& h) {
    if (h.count() == 0) {
      return;
    }
    mean_sum += h.sum();
    count += h.count();
    max = std::max(max, h.max());
  }
  double mean() const {
    return count > 0 ? mean_sum / static_cast<double>(count) : 0.0;
  }
};

struct FilterRunResult {
  double blackholed_bytes = 0;
  uint64_t epoch_bumps = 0;
};

FilterRunResult RunFilterStorm(RestartMode mode,
                               const RestartBenchConfig& cfg) {
  Fig1World fig = BuildFig1World();
  CloudWorld& world = *fig.world;
  EventQueue queue;
  FlowSim sim(queue, world.topology());
  MetricRegistry metrics;
  ConfigLedger ledger;
  DeclarativeCloud cloud(world, ledger, &queue);
  std::map<uint64_t, IpAddress> eip = DeployApp(cloud, fig);
  queue.RunAll();  // drain deploy-time installs: start from converged

  EdgeFilterBank& bank_a = cloud.provider_filters(fig.cloud_a);
  EdgeFilterBank& bank_b = cloud.provider_filters(fig.cloud_b);
  uint64_t epoch0 = bank_a.verdict_epoch() + bank_b.verdict_epoch();

  WarmRestartCoordinator coordinator(queue, metrics, mode);
  std::vector<uint32_t> ids;
  ids.push_back(
      coordinator.Register(MakeFilterBankComponent("filters-a", bank_a)));
  ids.push_back(
      coordinator.Register(MakeFilterBankComponent("filters-b", bank_b)));
  ids.push_back(coordinator.Register(MakeSipLbComponent("lb", cloud.sip_lb())));

  ConnectorFn connector = [&cloud, &eip](InstanceId src, InstanceId dst) {
    ResolvedRoute route;
    auto it = eip.find(dst.value());
    if (it == eip.end()) {
      route.deny_stage = DenyStage("no-eip");
      return route;
    }
    auto d = cloud.Evaluate(src, it->second, 443, Protocol::kTcp);
    if (!d.ok() || !d->delivered) {
      route.deny_stage = DenyStage(
          d.ok() ? (d->drop_stage.empty() ? "denied" : d->drop_stage)
                 : "instance-down");
      return route;
    }
    route.allowed = true;
    route.src_node = d->src_node;
    route.dst_node = d->dst_node;
    route.policy = d->egress_policy;
    return route;
  };

  FaultHooks hooks;
  coordinator.WireHooks(hooks);
  FaultInjector injector(queue, world.topology(), sim, &world, metrics,
                         std::move(hooks));

  WorkloadParams wparams;
  wparams.seed = 17;
  wparams.max_retries = 6;
  wparams.mean_response_bytes = cfg.mean_response_bytes;
  RequestWorkload workload(queue, sim, world, wparams);
  size_t pattern = workload.AddPattern("spark->db", fig.spark, fig.database,
                                       cfg.rps, connector);
  workload.Start(cfg.workload_span);

  // Restart-only storm: every disruption below is attributable to the
  // restart path, not to link or instance faults.
  StormParams params;
  params.event_count = cfg.restart_count;
  params.window = cfg.window;
  params.min_duration = cfg.min_outage;
  params.max_duration = cfg.max_outage;
  params.include_control_plane = false;
  params.restart_components = ids;
  injector.Schedule(FaultSchedule::Storm(cfg.storm_seed, params));

  auto t0 = std::chrono::steady_clock::now();
  queue.RunAll();
  auto t1 = std::chrono::steady_clock::now();
  double wall_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;

  HistAgg outage;
  HistAgg converged;
  for (uint32_t id : ids) {
    outage.Add(coordinator.outage_ms(id));
    converged.Add(coordinator.to_converged_ms(id));
  }
  const ReconcileStats& total = coordinator.total();
  const PatternStats& stats = workload.stats(pattern);
  FilterRunResult result;
  // Every denied attempt is one response the edge blackholed until the
  // restart reconverged (the deployed policy permits all of this traffic).
  result.blackholed_bytes = static_cast<double>(stats.denied) *
                            static_cast<double>(cfg.mean_response_bytes);
  result.epoch_bumps =
      bank_a.verdict_epoch() + bank_b.verdict_epoch() - epoch0;

  g_json->Recordf(
      "{\"bench\":\"warm_restart\",\"world\":\"declarative\","
      "\"mode\":\"%s\",\"storm_seed\":%llu,\"wall_ms\":%.1f,"
      "\"restarts\":%llu,"
      "\"outage_ms_mean\":%.1f,\"outage_ms_max\":%.1f,"
      "\"to_converged_ms_mean\":%.1f,\"to_converged_ms_max\":%.1f,"
      "\"reconcile_checked\":%llu,\"deltas_applied\":%llu,"
      "\"replayed\":%llu,\"dropped\":%llu,"
      "\"verdict_epoch_bumps\":%llu,"
      "\"attempted\":%llu,\"completed\":%llu,\"denied\":%llu,"
      "\"retries\":%llu,\"gave_up\":%llu,"
      "\"latency_ms_p50\":%.2f,\"latency_ms_p99\":%.2f,"
      "\"blackholed_bytes\":%.0f}",
      RestartModeName(mode),
      static_cast<unsigned long long>(cfg.storm_seed), wall_ms,
      static_cast<unsigned long long>(coordinator.restarts_completed()),
      outage.mean(), outage.max, converged.mean(), converged.max,
      static_cast<unsigned long long>(total.checked),
      static_cast<unsigned long long>(total.deltas_applied),
      static_cast<unsigned long long>(total.replayed_mutations),
      static_cast<unsigned long long>(total.dropped_mutations),
      static_cast<unsigned long long>(result.epoch_bumps),
      static_cast<unsigned long long>(stats.attempted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.denied),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.gave_up),
      stats.latency_ms.Quantile(0.5), stats.latency_ms.Quantile(0.99),
      result.blackholed_bytes);
  return result;
}

struct RoutingRunResult {
  bool matches_full_rebuild = false;
};

RoutingRunResult RunRoutingStorm(RestartMode mode,
                                 const RestartBenchConfig& cfg) {
  Fig1World fig = BuildFig1World();
  CloudWorld& world = *fig.world;
  EventQueue queue;
  FlowSim sim(queue, world.topology());
  MetricRegistry metrics;
  ConfigLedger ledger;
  BaselineNetwork net(world, ledger);
  Fig1Baseline handles = *BuildFig1Baseline(net, fig);
  (void)net.PropagateRoutes();

  WarmRestartCoordinator coordinator(queue, metrics, mode);
  uint32_t routing = coordinator.Register(MakeRoutingComponent("routing", net));

  // Session churn racing the restarts: gateway restarts drop and re-add the
  // inter-cloud session; either can land mid-outage (it buffers + replays).
  SpeakerId tgw_a_speaker = net.FindTgw(handles.tgw_a)->speaker();
  SpeakerId tgw_b_speaker = net.FindTgw(handles.tgw_b)->speaker();
  FaultHooks hooks;
  hooks.on_inject = [&](const FaultSpec& spec) {
    if (spec.kind == FaultKind::kGatewayRestart) {
      (void)net.bgp().RemoveSession(tgw_a_speaker, tgw_b_speaker);
    }
    (void)net.PropagateRoutes();
  };
  hooks.on_recover = [&](const FaultSpec& spec) {
    if (spec.kind == FaultKind::kGatewayRestart) {
      (void)net.bgp().AddSession(tgw_a_speaker, tgw_b_speaker);
    }
    (void)net.PropagateRoutes();
  };
  coordinator.WireHooks(hooks);
  FaultInjector injector(queue, world.topology(), sim, &world, metrics,
                         std::move(hooks));

  StormParams params;
  params.event_count = cfg.restart_count;
  params.window = cfg.window;
  params.min_duration = cfg.min_outage;
  params.max_duration = cfg.max_outage;
  params.include_control_plane = false;
  const Topology& topo = world.topology();
  for (size_t i = 0; i < topo.link_count(); ++i) {
    LinkId id(i + 1);
    if (topo.link(id).cls == LinkClass::kBackbone) {
      params.links.push_back(id);
    }
  }
  params.gateways = {world.region(fig.a_us_east).edge_node,
                     world.region(fig.b_us_east).edge_node};
  params.restart_components = {routing};
  injector.Schedule(FaultSchedule::Storm(cfg.storm_seed, params));

  uint64_t epoch0 = net.config_epoch();
  auto t0 = std::chrono::steady_clock::now();
  queue.RunAll();
  auto t1 = std::chrono::steady_clock::now();
  double wall_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
  (void)net.PropagateRoutes();  // drain whatever the last hook left pending
  uint64_t epoch_bumps = net.config_epoch() - epoch0;

  // Differential check: the reconciled routing state must be exactly what a
  // from-scratch rebuild computes.
  RoutingSnapshot reconciled = net.CheckpointRouting();
  (void)net.PropagateRoutesFull();
  RoutingRunResult result;
  result.matches_full_rebuild = net.CheckpointRouting() == reconciled;

  HistAgg converged;
  converged.Add(coordinator.to_converged_ms(routing));
  const ReconcileStats& total = coordinator.total();
  const Histogram& repair =
      injector.control_repair_ms(FaultKind::kControlPlaneRestart);
  g_json->Recordf(
      "{\"bench\":\"warm_restart_routing\",\"world\":\"baseline\","
      "\"mode\":\"%s\",\"storm_seed\":%llu,\"wall_ms\":%.1f,"
      "\"restarts\":%llu,"
      "\"reconcile_checked\":%llu,\"deltas_applied\":%llu,"
      "\"replayed\":%llu,\"dropped\":%llu,"
      "\"config_epoch_bumps\":%llu,"
      "\"to_converged_ms_max\":%.1f,"
      "\"repair_wall_ms_mean\":%.4f,"
      "\"matches_full_rebuild\":%d}",
      RestartModeName(mode),
      static_cast<unsigned long long>(cfg.storm_seed), wall_ms,
      static_cast<unsigned long long>(coordinator.restarts_completed()),
      static_cast<unsigned long long>(total.checked),
      static_cast<unsigned long long>(total.deltas_applied),
      static_cast<unsigned long long>(total.replayed_mutations),
      static_cast<unsigned long long>(total.dropped_mutations),
      static_cast<unsigned long long>(epoch_bumps), converged.max,
      repair.count() > 0 ? repair.mean() : 0.0,
      result.matches_full_rebuild ? 1 : 0);
  return result;
}

}  // namespace
}  // namespace tenantnet

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  tenantnet::BenchJsonWriter json("warm_restart", argc, argv);
  tenantnet::g_json = &json;

  tenantnet::RestartBenchConfig cfg;
  if (smoke) {
    cfg.restart_count = 10;
    cfg.window = tenantnet::SimDuration::Seconds(8);
    cfg.workload_span = tenantnet::SimDuration::Seconds(12);
  }
  std::vector<uint64_t> seeds =
      smoke ? std::vector<uint64_t>{7} : std::vector<uint64_t>{7, 21, 99};
  for (uint64_t seed : seeds) {
    cfg.storm_seed = seed;
    tenantnet::FilterRunResult cold =
        tenantnet::RunFilterStorm(tenantnet::RestartMode::kCold, cfg);
    tenantnet::FilterRunResult warm =
        tenantnet::RunFilterStorm(tenantnet::RestartMode::kWarm, cfg);
    tenantnet::RoutingRunResult cold_routing =
        tenantnet::RunRoutingStorm(tenantnet::RestartMode::kCold, cfg);
    tenantnet::RoutingRunResult warm_routing =
        tenantnet::RunRoutingStorm(tenantnet::RestartMode::kWarm, cfg);

    double ratio = cold.blackholed_bytes > 0
                       ? warm.blackholed_bytes / cold.blackholed_bytes
                       : (warm.blackholed_bytes > 0 ? 1e9 : 0.0);
    json.Recordf(
        "{\"bench\":\"warm_restart_summary\",\"storm_seed\":%llu,"
        "\"cold_blackholed_bytes\":%.0f,\"warm_blackholed_bytes\":%.0f,"
        "\"warm_cold_blackhole_ratio\":%.4f,"
        "\"cold_epoch_bumps\":%llu,\"warm_epoch_bumps\":%llu,"
        "\"routing_matches_full_rebuild\":%d}",
        static_cast<unsigned long long>(seed), cold.blackholed_bytes,
        warm.blackholed_bytes, ratio,
        static_cast<unsigned long long>(cold.epoch_bumps),
        static_cast<unsigned long long>(warm.epoch_bumps),
        (cold_routing.matches_full_rebuild &&
         warm_routing.matches_full_rebuild)
            ? 1
            : 0);
  }
  return 0;
}
