// E9 — §3(5) "complex to maintain and evolve": configuration blast radius.
//
// Take the fully built Fig. 1 deployment and apply every possible
// *single-element* removal — one route, one security-group rule — measure
// how many of the application's legitimate flows break, then restore and
// try the next. Repeat in the declarative world, where the only removable
// elements are individual permit entries.
//
// What this quantifies: in the baseline, shared infrastructure elements
// (a 10/8 route toward a transit gateway, an egress-all SG rule) are load-
// bearing for many flows at once, and their blast radius is invisible
// from the element itself. In the declarative world each element names
// exactly the communication it allows, so the blast radius is the entry's
// own scope — maintenance becomes local.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/vnet/builder.h"

namespace tenantnet {
namespace {

struct AppFlow {
  InstanceId src;
  InstanceId dst;
  uint16_t port;
};

// The legitimate communication matrix of the Fig. 1 app, instance-pair
// granular (~60 flows).
std::vector<AppFlow> LegitFlows(const Fig1World& fig) {
  std::vector<AppFlow> flows;
  for (InstanceId sp : fig.spark) {
    for (InstanceId db : fig.database) {
      flows.push_back({sp, db, Fig1Baseline::kDbPort});
    }
  }
  for (InstanceId web : fig.web_eu) {
    flows.push_back({web, fig.spark[0], Fig1Baseline::kSparkPort});
  }
  for (InstanceId web : fig.web_us) {
    flows.push_back({web, fig.spark[1], Fig1Baseline::kSparkPort});
  }
  for (InstanceId a : fig.analytics) {
    flows.push_back({a, fig.database[0], Fig1Baseline::kDbPort});
  }
  for (InstanceId al : fig.alerting) {
    flows.push_back({al, fig.spark[0], Fig1Baseline::kSparkPort});
    flows.push_back({fig.spark[2], al, Fig1Baseline::kAlertPort});
  }
  return flows;
}

struct BlastStats {
  uint64_t mutations = 0;
  uint64_t harmless = 0;     // mutations breaking nothing
  uint64_t total_broken = 0;
  uint64_t max_broken = 0;

  void Record(uint64_t broken) {
    ++mutations;
    if (broken == 0) {
      ++harmless;
    }
    total_broken += broken;
    max_broken = std::max(max_broken, broken);
  }
  double MeanBroken() const {
    return mutations == 0
               ? 0
               : static_cast<double>(total_broken) /
                     static_cast<double>(mutations);
  }
};

void Run() {
  Banner("E9", "Maintenance fragility: single-element removal blast radius");

  // ----- Baseline world -----------------------------------------------------
  Fig1World fig = BuildFig1World();
  ConfigLedger base_ledger;
  BaselineNetwork baseline(*fig.world, base_ledger);
  auto handles = BuildFig1Baseline(baseline, fig);
  if (!handles.ok()) {
    std::printf("build failed\n");
    return;
  }
  std::vector<AppFlow> flows = LegitFlows(fig);

  auto baseline_broken = [&]() {
    uint64_t broken = 0;
    for (const AppFlow& flow : flows) {
      auto result = baseline.Evaluate(flow.src, flow.dst, flow.port,
                                      Protocol::kTcp);
      if (!result.ok() || !result->delivered) {
        ++broken;
      }
    }
    return broken;
  };
  if (baseline_broken() != 0) {
    std::printf("baseline sanity check failed\n");
    return;
  }

  BlastStats route_stats;
  for (VpcRouteTableId table_id : baseline.AllRouteTables()) {
    VpcRouteTable* table = baseline.FindRouteTable(table_id);
    // Snapshot the routes (prefix + target) so each can be removed and
    // restored. Lookup() gives targets; we re-walk via a prefix listing
    // that VpcRouteTable does not expose, so collect through the trie in
    // fabric: simplest is to try the prefixes we know the builder used.
    // Instead: mutate by LPM-visible prefixes gathered from a probe set.
    // To stay exact, VpcRouteTable exposes entries via ForEach below.
    std::vector<std::pair<IpPrefix, VpcRouteTarget>> routes;
    table->ForEach([&](const IpPrefix& p, const VpcRouteTarget& t) {
      routes.push_back({p, t});
    });
    for (const auto& [prefix, target] : routes) {
      if (target.kind == VpcRouteTargetKind::kLocal) {
        continue;  // local routes are implicit, not tenant-removable
      }
      (void)baseline.RemoveRoute(table_id, prefix);
      route_stats.Record(baseline_broken());
      table->Install(prefix, target);  // restore
    }
  }

  BlastStats sg_stats;
  for (SecurityGroupId sg_id : baseline.AllSecurityGroups()) {
    SecurityGroup* sg = baseline.FindSecurityGroup(sg_id);
    for (size_t i = 0; i < sg->rules().size(); ++i) {
      SgRule saved = sg->rules()[i];
      (void)baseline.RemoveSgRule(sg_id, i);
      sg_stats.Record(baseline_broken());
      sg->AddRule(saved);  // restore (order does not matter for SGs)
      // Re-removal indices stay valid: restored rule lands at the end.
    }
  }

  // ----- Declarative world --------------------------------------------------
  Fig1World decl_fig = BuildFig1World();
  ConfigLedger decl_ledger;
  DeclarativeCloud cloud(*decl_fig.world, decl_ledger);
  std::map<uint64_t, IpAddress> eip;
  for (InstanceId id : decl_fig.AllInstances()) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  // Permit lists mirroring the same matrix (host-granular).
  std::map<uint64_t, std::vector<PermitEntry>> lists;
  std::vector<AppFlow> decl_flows = LegitFlows(decl_fig);
  for (const AppFlow& flow : decl_flows) {
    PermitEntry e;
    e.source = IpPrefix::Host(eip.at(flow.src.value()));
    e.dst_ports = PortRange::Single(flow.port);
    e.proto = Protocol::kTcp;
    auto& list = lists[flow.dst.value()];
    if (std::find(list.begin(), list.end(), e) == list.end()) {
      list.push_back(e);
    }
  }
  for (const auto& [dst, list] : lists) {
    (void)cloud.SetPermitList(eip.at(dst), list);
  }

  auto decl_broken = [&]() {
    uint64_t broken = 0;
    for (const AppFlow& flow : decl_flows) {
      auto result = cloud.Evaluate(flow.src, eip.at(flow.dst.value()),
                                   flow.port, Protocol::kTcp);
      if (!result.ok() || !result->delivered) {
        ++broken;
      }
    }
    return broken;
  };
  if (decl_broken() != 0) {
    std::printf("declarative sanity check failed\n");
    return;
  }

  BlastStats permit_stats;
  for (const auto& [dst, list] : lists) {
    for (const PermitEntry& entry : list) {
      (void)cloud.UpdatePermitList(eip.at(dst), {}, {entry});
      permit_stats.Record(decl_broken());
      (void)cloud.UpdatePermitList(eip.at(dst), {entry}, {});  // restore
    }
  }

  std::printf("\n%zu legitimate flows; every single-element removal tried:\n",
              flows.size());
  TablePrinter table({30, 11, 10, 12, 11});
  table.Row({"mutation class", "mutations", "harmless", "mean broken",
             "max broken"});
  table.Rule();
  table.Row({"baseline: route removal", FmtInt(route_stats.mutations),
             FmtInt(route_stats.harmless), FmtF(route_stats.MeanBroken(), 1),
             FmtInt(route_stats.max_broken)});
  table.Row({"baseline: SG rule removal", FmtInt(sg_stats.mutations),
             FmtInt(sg_stats.harmless), FmtF(sg_stats.MeanBroken(), 1),
             FmtInt(sg_stats.max_broken)});
  table.Row({"declarative: permit entry", FmtInt(permit_stats.mutations),
             FmtInt(permit_stats.harmless),
             FmtF(permit_stats.MeanBroken(), 1),
             FmtInt(permit_stats.max_broken)});
  std::printf(
      "\nReading: a baseline route or SG rule is shared infrastructure —\n"
      "removing one can break dozens of flows, and which ones is not\n"
      "deducible from the element itself (§3(5)'s maintenance burden).\n"
      "A permit entry names exactly the flows it allows: blast radius is\n"
      "its own scope, so maintenance is local and reviewable.\n");
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Run();
  return 0;
}
