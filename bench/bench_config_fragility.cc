// E9 — §3(5) "complex to maintain and evolve": configuration blast radius.
//
// Take the fully built Fig. 1 deployment and apply every possible
// *single-element* removal — one route, one security-group rule — measure
// how many of the application's legitimate flows break, then restore and
// try the next. Repeat in the declarative world, where the only removable
// elements are individual permit entries.
//
// What this quantifies: in the baseline, shared infrastructure elements
// (a 10/8 route toward a transit gateway, an egress-all SG rule) are load-
// bearing for many flows at once, and their blast radius is invisible
// from the element itself. In the declarative world each element names
// exactly the communication it allows, so the blast radius is the entry's
// own scope — maintenance becomes local.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/reach/reach.h"
#include "src/vnet/builder.h"

namespace tenantnet {
namespace {

struct AppFlow {
  InstanceId src;
  InstanceId dst;
  uint16_t port;
};

// The legitimate communication matrix of the Fig. 1 app, instance-pair
// granular (~60 flows).
std::vector<AppFlow> LegitFlows(const Fig1World& fig) {
  std::vector<AppFlow> flows;
  for (InstanceId sp : fig.spark) {
    for (InstanceId db : fig.database) {
      flows.push_back({sp, db, Fig1Baseline::kDbPort});
    }
  }
  for (InstanceId web : fig.web_eu) {
    flows.push_back({web, fig.spark[0], Fig1Baseline::kSparkPort});
  }
  for (InstanceId web : fig.web_us) {
    flows.push_back({web, fig.spark[1], Fig1Baseline::kSparkPort});
  }
  for (InstanceId a : fig.analytics) {
    flows.push_back({a, fig.database[0], Fig1Baseline::kDbPort});
  }
  for (InstanceId al : fig.alerting) {
    flows.push_back({al, fig.spark[0], Fig1Baseline::kSparkPort});
    flows.push_back({fig.spark[2], al, Fig1Baseline::kAlertPort});
  }
  return flows;
}

struct BlastStats {
  uint64_t mutations = 0;
  uint64_t harmless = 0;     // mutations breaking nothing
  uint64_t total_broken = 0;
  uint64_t max_broken = 0;

  void Record(uint64_t broken) {
    ++mutations;
    if (broken == 0) {
      ++harmless;
    }
    total_broken += broken;
    max_broken = std::max(max_broken, broken);
  }
  double MeanBroken() const {
    return mutations == 0
               ? 0
               : static_cast<double>(total_broken) /
                     static_cast<double>(mutations);
  }
};

void Run() {
  Banner("E9", "Maintenance fragility: single-element removal blast radius");

  // ----- Baseline world -----------------------------------------------------
  Fig1World fig = BuildFig1World();
  ConfigLedger base_ledger;
  BaselineNetwork baseline(*fig.world, base_ledger);
  auto handles = BuildFig1Baseline(baseline, fig);
  if (!handles.ok()) {
    std::printf("build failed\n");
    return;
  }
  std::vector<AppFlow> flows = LegitFlows(fig);

  auto baseline_broken = [&]() {
    uint64_t broken = 0;
    for (const AppFlow& flow : flows) {
      auto result = baseline.Evaluate(flow.src, flow.dst, flow.port,
                                      Protocol::kTcp);
      if (!result.ok() || !result->delivered) {
        ++broken;
      }
    }
    return broken;
  };
  if (baseline_broken() != 0) {
    std::printf("baseline sanity check failed\n");
    return;
  }

  BlastStats route_stats;
  for (VpcRouteTableId table_id : baseline.AllRouteTables()) {
    VpcRouteTable* table = baseline.FindRouteTable(table_id);
    // Snapshot the routes (prefix + target) so each can be removed and
    // restored. Lookup() gives targets; we re-walk via a prefix listing
    // that VpcRouteTable does not expose, so collect through the trie in
    // fabric: simplest is to try the prefixes we know the builder used.
    // Instead: mutate by LPM-visible prefixes gathered from a probe set.
    // To stay exact, VpcRouteTable exposes entries via ForEach below.
    std::vector<std::pair<IpPrefix, VpcRouteTarget>> routes;
    table->ForEach([&](const IpPrefix& p, const VpcRouteTarget& t) {
      routes.push_back({p, t});
    });
    for (const auto& [prefix, target] : routes) {
      if (target.kind == VpcRouteTargetKind::kLocal) {
        continue;  // local routes are implicit, not tenant-removable
      }
      (void)baseline.RemoveRoute(table_id, prefix);
      route_stats.Record(baseline_broken());
      table->Install(prefix, target);  // restore
    }
  }

  BlastStats sg_stats;
  for (SecurityGroupId sg_id : baseline.AllSecurityGroups()) {
    SecurityGroup* sg = baseline.FindSecurityGroup(sg_id);
    for (size_t i = 0; i < sg->rules().size(); ++i) {
      SgRule saved = sg->rules()[i];
      (void)baseline.RemoveSgRule(sg_id, i);
      sg_stats.Record(baseline_broken());
      sg->AddRule(saved);  // restore (order does not matter for SGs)
      // Re-removal indices stay valid: restored rule lands at the end.
    }
  }

  // ----- Declarative world --------------------------------------------------
  Fig1World decl_fig = BuildFig1World();
  ConfigLedger decl_ledger;
  DeclarativeCloud cloud(*decl_fig.world, decl_ledger);
  std::map<uint64_t, IpAddress> eip;
  for (InstanceId id : decl_fig.AllInstances()) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  // Permit lists mirroring the same matrix (host-granular).
  std::map<uint64_t, std::vector<PermitEntry>> lists;
  std::vector<AppFlow> decl_flows = LegitFlows(decl_fig);
  for (const AppFlow& flow : decl_flows) {
    PermitEntry e;
    e.source = IpPrefix::Host(eip.at(flow.src.value()));
    e.dst_ports = PortRange::Single(flow.port);
    e.proto = Protocol::kTcp;
    auto& list = lists[flow.dst.value()];
    if (std::find(list.begin(), list.end(), e) == list.end()) {
      list.push_back(e);
    }
  }
  for (const auto& [dst, list] : lists) {
    (void)cloud.SetPermitList(eip.at(dst), list);
  }

  auto decl_broken = [&]() {
    uint64_t broken = 0;
    for (const AppFlow& flow : decl_flows) {
      auto result = cloud.Evaluate(flow.src, eip.at(flow.dst.value()),
                                   flow.port, Protocol::kTcp);
      if (!result.ok() || !result->delivered) {
        ++broken;
      }
    }
    return broken;
  };
  if (decl_broken() != 0) {
    std::printf("declarative sanity check failed\n");
    return;
  }

  BlastStats permit_stats;
  for (const auto& [dst, list] : lists) {
    for (const PermitEntry& entry : list) {
      (void)cloud.UpdatePermitList(eip.at(dst), {}, {entry});
      permit_stats.Record(decl_broken());
      (void)cloud.UpdatePermitList(eip.at(dst), {entry}, {});  // restore
    }
  }

  std::printf("\n%zu legitimate flows; every single-element removal tried:\n",
              flows.size());
  TablePrinter table({30, 11, 10, 12, 11});
  table.Row({"mutation class", "mutations", "harmless", "mean broken",
             "max broken"});
  table.Rule();
  table.Row({"baseline: route removal", FmtInt(route_stats.mutations),
             FmtInt(route_stats.harmless), FmtF(route_stats.MeanBroken(), 1),
             FmtInt(route_stats.max_broken)});
  table.Row({"baseline: SG rule removal", FmtInt(sg_stats.mutations),
             FmtInt(sg_stats.harmless), FmtF(sg_stats.MeanBroken(), 1),
             FmtInt(sg_stats.max_broken)});
  table.Row({"declarative: permit entry", FmtInt(permit_stats.mutations),
             FmtInt(permit_stats.harmless),
             FmtF(permit_stats.MeanBroken(), 1),
             FmtInt(permit_stats.max_broken)});
  std::printf(
      "\nReading: a baseline route or SG rule is shared infrastructure —\n"
      "removing one can break dozens of flows, and which ones is not\n"
      "deducible from the element itself (§3(5)'s maintenance burden).\n"
      "A permit entry names exactly the flows it allows: blast radius is\n"
      "its own scope, so maintenance is local and reviewable.\n");
}

// E12 — incremental reachability revalidation. After the blast-radius sweep
// above showed that a permit entry's scope is local, this measures the
// operational payoff: when one destination's policy changes, re-verifying
// the tenant's reachability matrix only recomputes that destination's
// column (the verifier keys on per-endpoint verdict epochs), while the
// baseline's coarse config generation forces a full re-verify on any
// change. Both worlds assert byte-identity against a from-scratch sweep —
// the incremental path is a pure optimization, never an approximation.
void RunE12(BenchJsonWriter& json) {
  Banner("E12", "Reachability revalidation: incremental vs from-scratch");
  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  // ----- Declarative world --------------------------------------------------
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);
  constexpr size_t kN = 48;
  std::vector<InstanceId> vms;
  std::vector<IpAddress> eips;
  for (size_t i = 0; i < kN; ++i) {
    InstanceId id = *tw.world->LaunchInstance(
        tw.tenant, tw.provider, i % 2 == 0 ? tw.east : tw.west, 0);
    vms.push_back(id);
    eips.push_back(*cloud.RequestEip(id));
  }
  for (size_t d = 0; d < kN; ++d) {
    std::vector<PermitEntry> entries;
    for (size_t s = 1; s <= 8; ++s) {
      PermitEntry e;
      e.source = IpPrefix::Host(eips[(d + s) % kN]);
      e.dst_ports = PortRange::Single(443);
      entries.push_back(e);
    }
    (void)cloud.SetPermitList(eips[d], entries);
  }

  DeclarativeReachVerifier verifier(*tw.world, cloud);
  std::vector<DeclarativeReachVerifier::Pair> pairs;
  for (size_t s = 0; s < kN; ++s) {
    for (size_t d = 0; d < kN; ++d) {
      if (s != d) {
        pairs.push_back({vms[s], eips[d], 443, Protocol::kTcp});
      }
    }
  }
  verifier.SetPairs(pairs);
  auto t0 = Clock::now();
  (void)verifier.VerifyAll();
  double full_ms = ms_since(t0);

  constexpr int kMutations = 16;
  double reval_ms = 0;
  uint64_t recomputed = 0;
  uint64_t reused = 0;
  for (int m = 0; m < kMutations; ++m) {
    size_t d = static_cast<size_t>(m * 3 + 1) % kN;
    PermitEntry extra;
    extra.source = IpPrefix::Host(eips[(d + 9 + static_cast<size_t>(m)) % kN]);
    extra.dst_ports = PortRange::Single(443);
    (void)cloud.UpdatePermitList(eips[d], {extra}, {});
    t0 = Clock::now();
    ReachSweepStats stats = verifier.Revalidate();
    reval_ms += ms_since(t0);
    recomputed += stats.recomputed;
    reused += stats.reused;
  }
  double mean_reval_ms = reval_ms / kMutations;
  double decl_speedup = mean_reval_ms > 0 ? full_ms / mean_reval_ms : 0;
  double decl_fraction = static_cast<double>(recomputed) /
                         static_cast<double>(recomputed + reused);

  DeclarativeReachVerifier fresh(*tw.world, cloud);
  fresh.SetPairs(pairs);
  (void)fresh.VerifyAll();
  bool decl_identical = fresh.Fingerprint() == verifier.Fingerprint();

  // ----- Baseline world (coarse generation: any change dirties all) ---------
  Fig1World fig = BuildFig1World();
  ConfigLedger base_ledger;
  BaselineNetwork baseline(*fig.world, base_ledger);
  auto handles = BuildFig1Baseline(baseline, fig);
  if (!handles.ok()) {
    std::printf("baseline build failed\n");
    return;
  }
  std::vector<InstanceId> all = fig.AllInstances();
  BaselineReachVerifier base_verifier(baseline);
  std::vector<BaselineReachVerifier::Pair> base_pairs;
  for (InstanceId s : all) {
    for (InstanceId d : all) {
      if (s != d) {
        base_pairs.push_back({s, d, Fig1Baseline::kDbPort, Protocol::kTcp});
      }
    }
  }
  base_verifier.SetPairs(base_pairs);
  t0 = Clock::now();
  (void)base_verifier.VerifyAll();
  double base_full_ms = ms_since(t0);

  double base_reval_ms = 0;
  uint64_t base_recomputed = 0;
  uint64_t base_reused = 0;
  for (int m = 0; m < kMutations; ++m) {
    SgRule rule;
    rule.direction = TrafficDirection::kIngress;
    rule.proto = Protocol::kTcp;
    rule.ports = PortRange::Single(static_cast<uint16_t>(30000 + m));
    rule.peer = *IpPrefix::Parse("10.0.0.0/8");
    (void)baseline.AddSgRule(handles->sg_spark, rule);
    t0 = Clock::now();
    ReachSweepStats stats = base_verifier.Revalidate();
    base_reval_ms += ms_since(t0);
    base_recomputed += stats.recomputed;
    base_reused += stats.reused;
  }
  double base_mean_reval_ms = base_reval_ms / kMutations;
  double base_speedup =
      base_mean_reval_ms > 0 ? base_full_ms / base_mean_reval_ms : 0;
  double base_fraction =
      static_cast<double>(base_recomputed) /
      static_cast<double>(base_recomputed + base_reused);

  BaselineReachVerifier base_fresh(baseline);
  base_fresh.SetPairs(base_pairs);
  (void)base_fresh.VerifyAll();
  bool base_identical = base_fresh.Fingerprint() == base_verifier.Fingerprint();

  TablePrinter table({26, 7, 10, 11, 11, 10, 10});
  table.Row({"world", "pairs", "full (ms)", "reval (ms)", "recompute %",
             "speedup", "identical"});
  table.Rule();
  table.Row({"declarative (per-ep epoch)", FmtInt(pairs.size()),
             FmtF(full_ms, 2), FmtF(mean_reval_ms, 3),
             FmtF(100 * decl_fraction, 1), FmtF(decl_speedup, 1),
             decl_identical ? "yes" : "NO"});
  table.Row({"baseline (coarse gen)", FmtInt(base_pairs.size()),
             FmtF(base_full_ms, 2), FmtF(base_mean_reval_ms, 3),
             FmtF(100 * base_fraction, 1), FmtF(base_speedup, 1),
             base_identical ? "yes" : "NO"});
  std::printf(
      "\nReading: one permit change dirties one destination's column, so\n"
      "the declarative verifier re-verifies ~%.0f%% of the matrix per\n"
      "change. The baseline's verdict generation is all-or-nothing: any SG\n"
      "edit forces a full sweep. Both land byte-identical to from-scratch.\n",
      100 * decl_fraction);

  json.Recordf(
      "{\"bench\": \"config_fragility\", \"experiment\": \"E12\", "
      "\"world\": \"declarative\", \"pairs\": %zu, \"mutations\": %d, "
      "\"full_ms\": %.3f, \"mean_revalidate_ms\": %.4f, "
      "\"revalidate_speedup\": %.2f, \"recompute_fraction\": %.4f, "
      "\"fingerprint_identical\": %d}",
      pairs.size(), kMutations, full_ms, mean_reval_ms, decl_speedup,
      decl_fraction, decl_identical ? 1 : 0);
  json.Recordf(
      "{\"bench\": \"config_fragility\", \"experiment\": \"E12\", "
      "\"world\": \"baseline\", \"pairs\": %zu, \"mutations\": %d, "
      "\"full_ms\": %.3f, \"mean_revalidate_ms\": %.4f, "
      "\"revalidate_speedup\": %.2f, \"recompute_fraction\": %.4f, "
      "\"fingerprint_identical\": %d}",
      base_pairs.size(), kMutations, base_full_ms, base_mean_reval_ms,
      base_speedup, base_fraction, base_identical ? 1 : 0);
}

}  // namespace
}  // namespace tenantnet

int main(int argc, char** argv) {
  tenantnet::BenchJsonWriter json("config_fragility", argc, argv);
  tenantnet::Run();
  tenantnet::RunE12(json);
  return 0;
}
