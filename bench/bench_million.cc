// E10 — §6(i) at production scale: the million-endpoint memory diet.
//
// Sweeps endpoint population 100k -> 1M and measures, per population:
//
//   * bytes/endpoint of the provider's hot state: the flat EIP RIB (one
//     host route per endpoint in the arena Patricia trie) plus the edge
//     permit bank (interned lists, SoA endpoint columns, shared compiled
//     matchers). The diet target from ISSUE 8: <= 150 bytes/endpoint
//     combined at 1M.
//   * the same state's modeled pre-diet footprint — node-per-bit heap trie
//     for the RIB (~72 bytes per bit-node) and per-endpoint list copies in
//     nested hash maps for the bank — and the reduction factor (>= 4x).
//   * warm verdicts/s through the cached data plane at full population
//     (the E4b fast path must survive the diet; gated against baseline).
//   * churn convergence: permit-list reinstalls/s against the fully
//     populated bank (intern hit + version bump + epoch bump per op).
//   * streaming open-loop generator flatness: pending event-queue entries
//     for a rate curve proportional to population vs the transactions a
//     materializing Start() would have pre-scheduled.
//   * peak RSS after each population (cumulative high-water, reported for
//     the record; the per-population gauge is ApproxBytes).
//
// JSON rows (kind "million_diet") land in BENCH_million.json for the CI
// gate in scripts/check_bench_regression.py. Args: `smoke` shrinks the
// sweep to {100k, 1M}; `--json_out=<path>` moves the artifact.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/common/rng.h"
#include "src/core/edge_filter.h"
#include "src/routing/route_table.h"
#include "src/sim/flow_sim.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {
namespace {

constexpr uint64_t kEntriesPerEp = 16;
constexpr uint64_t kEndpointsPerDistinctList = 256;
constexpr size_t kEdges = 2;

IpAddress EpAddr(uint64_t ep) {
  // Spread endpoints over several /8s so the trie sees realistic branching,
  // not one arithmetic ramp.
  return IpAddress::V4(static_cast<uint32_t>(0x05000000u + ep * 2654435761u %
                                             0x30000000u));
}

// The distinct permit list shared by one cohort of endpoints: 14 host
// prefixes, one scoped CIDR, one protocol-scoped wide prefix (the E4b list
// shape, minus the group so cohorts stay byte-identical and intern).
std::vector<PermitEntry> CohortList(uint64_t cohort) {
  std::vector<PermitEntry> permits;
  permits.reserve(kEntriesPerEp);
  for (uint64_t k = 0; k + 2 < kEntriesPerEp; ++k) {
    PermitEntry e;
    e.source = IpPrefix::Host(IpAddress::V4(
        static_cast<uint32_t>(0x0A000000u + (cohort * 13 + k) % 0x00FFFFFFu)));
    permits.push_back(e);
  }
  PermitEntry cidr;
  cidr.source = *IpPrefix::Parse("10.200.0.0/16");
  cidr.dst_ports = PortRange::Single(8080);
  permits.push_back(cidr);
  PermitEntry udp;
  udp.source = *IpPrefix::Parse("11.0.0.0/8");
  udp.proto = Protocol::kUdp;
  permits.push_back(udp);
  return permits;
}

// Modeled pre-diet RIB bytes: the old trie allocated one heap node per bit
// of every inserted prefix (std::optional<T> + two unique_ptrs, ~72 bytes
// with allocator overhead). Node count for a prefix set = sum over sorted
// prefixes of the bits not shared with the previous prefix, plus the root.
uint64_t ModeledPreDietTrieNodes(std::vector<IpPrefix> prefixes) {
  std::sort(prefixes.begin(), prefixes.end());
  uint64_t nodes = 1;
  const IpPrefix* prev = nullptr;
  for (const IpPrefix& p : prefixes) {
    int shared = 0;
    if (prev != nullptr) {
      const uint32_t a = prev->base().v4_bits();
      const uint32_t b = p.base().v4_bits();
      const uint32_t x = a ^ b;
      shared = x == 0 ? 32 : __builtin_clz(x);
      shared = std::min({shared, prev->length(), p.length()});
    }
    nodes += static_cast<uint64_t>(p.length() - shared);
    prev = &p;
  }
  return nodes;
}

constexpr uint64_t kPreDietNodeBytes = 72;

// Modeled pre-diet bank bytes: every endpoint held its own
// std::vector<PermitEntry> copy inside two levels of unordered_map (one
// per-edge replica plus the master copy), with no interning and no shared
// compiled matcher.
uint64_t ModeledPreDietBankBytes(uint64_t endpoints) {
  constexpr uint64_t kMapNodeBytes = 56;   // unordered_map node + bucket share
  constexpr uint64_t kVectorBytes = 24;    // SSO-free vector header
  const uint64_t per_list =
      kMapNodeBytes + kVectorBytes + kEntriesPerEp * sizeof(PermitEntry);
  return endpoints * per_list * (kEdges + 1);
}

template <typename Fn>
std::pair<double, uint64_t> MeasureVerdicts(
    const std::vector<FiveTuple>& queries, int passes, Fn&& verdict) {
  uint64_t admitted = 0;
  auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    for (const FiveTuple& q : queries) {
      admitted += verdict(q) ? 1 : 0;
    }
  }
  double seconds =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count()) /
      1e9;
  return {static_cast<double>(queries.size()) * passes / seconds,
          admitted / static_cast<uint64_t>(passes)};
}

// Pending event-queue entries after Start() of a streaming pattern whose
// rate scales with population, vs the arrivals a materializing Start()
// would have pre-scheduled. Flat == O(patterns), not O(transactions).
struct StreamingProbe {
  uint64_t pending_events = 0;
  uint64_t equivalent_transactions = 0;
};

StreamingProbe ProbeStreamingFlatness(uint64_t endpoints) {
  TestWorld tw = BuildTestWorld();
  InstanceId a = *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  InstanceId b = *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0);
  EventQueue queue;
  FlowSim flows(queue, tw.world->topology());
  RequestWorkload workload(queue, flows, *tw.world);
  const double rps = static_cast<double>(endpoints) / 100.0;
  const SimDuration horizon = SimDuration::Seconds(600);
  CloudWorld* world = tw.world.get();
  workload.AddStreamingPattern(
      "diet", {a}, {b}, RateCurve::Diurnal(rps, 0.5, SimDuration::Seconds(300)),
      [world](InstanceId src, InstanceId dst) {
        ResolvedRoute route;
        route.allowed = true;
        route.src_node = world->FindInstance(src)->host_node;
        route.dst_node = world->FindInstance(dst)->host_node;
        return route;
      });
  workload.Start(horizon);
  StreamingProbe probe;
  probe.pending_events = queue.pending_count();
  probe.equivalent_transactions =
      static_cast<uint64_t>(rps * horizon.ToSeconds());
  return probe;
}

void RunSweep(BenchJsonWriter& json, bool smoke) {
  TablePrinter table({10, 9, 12, 11, 12, 9, 12, 12, 10});
  table.Row({"endpoints", "lists", "rib B/ep", "bank B/ep", "prediet B/ep",
             "redux", "warm v/s", "churn i/s", "peakRSS MB"});
  table.Rule();

  std::vector<uint64_t> sizes =
      smoke ? std::vector<uint64_t>{100000, 1000000}
            : std::vector<uint64_t>{100000, 250000, 500000, 1000000};
  const size_t kQueries = 16384;
  // Warm throughput is measured best-of-3 with enough passes for a ~50ms
  // window; single-digit-ms windows are noise on shared runners.
  const int kWarmPasses = 16;
  const uint64_t kChurnOps = smoke ? 20000 : 50000;

  for (uint64_t endpoints : sizes) {
    // --- Build the flat EIP RIB: one host route per endpoint. ------------
    RouteTable rib;
    const uint32_t via_eip = RouteLabels().Intern("eip");
    std::vector<IpPrefix> prefixes;
    prefixes.reserve(endpoints);
    for (uint64_t ep = 0; ep < endpoints; ++ep) {
      IpPrefix host = IpPrefix::Host(EpAddr(ep));
      prefixes.push_back(host);
      rib.Install(host, RouteEntry{NodeId(1), RouteOrigin::kStatic, 0,
                                   via_eip});
    }
    rib.ShrinkToFit();

    // --- Build the permit bank: interned cohort lists. --------------------
    EdgeFilterParams params;
    params.verdict_cache_slots = 1 << 19;
    EdgeFilterBank bank("p", nullptr, 1, params);
    for (size_t e = 0; e < kEdges; ++e) {
      bank.AddEdge("edge" + std::to_string(e));
    }
    bank.ReserveEndpoints(endpoints);
    for (uint64_t ep = 0; ep < endpoints; ++ep) {
      bank.SetPermitList(EpAddr(ep), CohortList(ep / kEndpointsPerDistinctList));
    }
    bank.ShrinkToFit();

    const uint64_t rib_bytes = rib.ApproxBytes();
    const uint64_t bank_bytes = bank.ApproxBytes();
    const double bytes_per_ep =
        static_cast<double>(rib_bytes + bank_bytes) /
        static_cast<double>(endpoints);
    const double prediet_per_ep =
        static_cast<double>(ModeledPreDietTrieNodes(prefixes) *
                                kPreDietNodeBytes +
                            ModeledPreDietBankBytes(endpoints)) /
        static_cast<double>(endpoints);
    const double reduction = prediet_per_ep / bytes_per_ep;

    // Memory telemetry the control plane would export.
    MetricRegistry metrics;
    bank.PublishMemoryGauges(metrics);

    // --- Warm verdict throughput at full population. ----------------------
    Rng rng(42);
    std::vector<FiveTuple> queries;
    queries.reserve(kQueries);
    for (size_t i = 0; i < kQueries; ++i) {
      const uint64_t ep = rng.NextU64(endpoints);
      const uint64_t cohort = ep / kEndpointsPerDistinctList;
      FiveTuple flow;
      flow.dst = EpAddr(ep);
      flow.src_port = 40000;
      flow.dst_port = 443;
      flow.proto = Protocol::kTcp;
      switch (rng.NextU64(3)) {
        case 0:  // permitted host entry
          flow.src = IpAddress::V4(static_cast<uint32_t>(
              0x0A000000u + (cohort * 13 + rng.NextU64(kEntriesPerEp - 2)) %
                                0x00FFFFFFu));
          break;
        case 1:  // scoped CIDR
          flow.src = IpAddress::V4(
              0x0AC80000u + static_cast<uint32_t>(rng.NextU64(0x10000)));
          flow.dst_port = rng.NextBool(0.5) ? 8080 : 443;
          break;
        default:  // denied
          flow.src = IpAddress::V4(
              0x0C000000u + static_cast<uint32_t>(rng.NextU64(0x01000000)));
          break;
      }
      queries.push_back(flow);
    }
    auto [cold_vps, cold_admits] = MeasureVerdicts(
        queries, 1, [&](const FiveTuple& q) { return bank.Admits(0, q); });
    bank.ResetVerdictCacheStats();
    double warm_vps = 0;
    uint64_t warm_admits = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto [vps, admits] = MeasureVerdicts(
          queries, kWarmPasses,
          [&](const FiveTuple& q) { return bank.Admits(0, q); });
      warm_vps = std::max(warm_vps, vps);
      warm_admits = admits;
    }
    if (warm_admits != cold_admits) {
      std::printf("VERDICT MISMATCH: cold=%llu warm=%llu\n",
                  static_cast<unsigned long long>(cold_admits),
                  static_cast<unsigned long long>(warm_admits));
      return;
    }
    const double warm_hit = bank.verdict_cache_stats().hit_rate();

    // --- Churn: reinstalls/s against the populated bank. ------------------
    auto churn_start = std::chrono::steady_clock::now();
    for (uint64_t op = 0; op < kChurnOps; ++op) {
      const uint64_t ep = (op * 977) % endpoints;
      bank.SetPermitList(EpAddr(ep), CohortList(ep / kEndpointsPerDistinctList));
    }
    const double churn_seconds =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - churn_start)
                .count()) /
        1e9;
    const double churn_installs_per_s =
        static_cast<double>(kChurnOps) / churn_seconds;

    // --- Streaming generator flatness. ------------------------------------
    StreamingProbe probe = ProbeStreamingFlatness(endpoints);

    const uint64_t peak_rss = PeakRssBytes();
    table.Row({FmtInt(endpoints), FmtInt(bank.distinct_permit_sets()),
               FmtF(static_cast<double>(rib_bytes) / endpoints, 1),
               FmtF(static_cast<double>(bank_bytes) / endpoints, 1),
               FmtF(prediet_per_ep, 0), FmtF(reduction, 1) + "x",
               FmtF(warm_vps, 0), FmtF(churn_installs_per_s, 0),
               FmtF(static_cast<double>(peak_rss) / (1 << 20), 0)});
    json.Recordf(
        "{\"bench\":\"million_diet\",\"endpoints\":%llu,"
        "\"entries_per_ep\":%llu,\"distinct_lists\":%llu,"
        "\"rib_bytes\":%llu,\"bank_bytes\":%llu,"
        "\"bytes_per_endpoint\":%.1f,"
        "\"modeled_prediet_bytes_per_endpoint\":%.1f,"
        "\"reduction_vs_prediet\":%.2f,"
        "\"cold_vps\":%.0f,\"warm_vps\":%.0f,\"warm_hit_rate\":%.4f,"
        "\"churn_installs_per_s\":%.0f,"
        "\"streaming_pending_events\":%llu,"
        "\"streaming_equivalent_transactions\":%llu,"
        "\"filter_gauge_bytes\":%.0f,\"peak_rss_bytes\":%llu}",
        static_cast<unsigned long long>(endpoints),
        static_cast<unsigned long long>(kEntriesPerEp),
        static_cast<unsigned long long>(bank.distinct_permit_sets()),
        static_cast<unsigned long long>(rib_bytes),
        static_cast<unsigned long long>(bank_bytes), bytes_per_ep,
        prediet_per_ep, reduction, cold_vps, warm_vps, warm_hit,
        churn_installs_per_s,
        static_cast<unsigned long long>(probe.pending_events),
        static_cast<unsigned long long>(probe.equivalent_transactions),
        metrics.GetGauge("p.filter.approx_bytes").value(),
        static_cast<unsigned long long>(peak_rss));
  }
  std::printf(
      "The diet: one arena trie node per branch point (not per bit), one\n"
      "interned list + compiled matcher per distinct cohort (not per\n"
      "endpoint), SoA columns for the per-endpoint versions/epochs. The\n"
      "streaming generator holds one pending arrival per pattern however\n"
      "many transactions the horizon implies.\n");
}

}  // namespace
}  // namespace tenantnet

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  tenantnet::BenchJsonWriter json("million", argc, argv);
  tenantnet::Banner("E10", "Million-endpoint memory diet (§6 i at scale)");
  tenantnet::RunSweep(json, smoke);
  return 0;
}
