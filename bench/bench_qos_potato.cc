// E5 — §6(ii): does hot/cold-potato routing plus egress guarantees
// approximate dedicated links?
//
// The Fig. 1 world carries two cross-cloud application flows:
//   near  — spark (cloud A us-east)  -> database  (cloud B us-east)
//   far   — spark (cloud A us-east)  -> analytics (cloud B europe)
// with heavy background cross-traffic loading the public internet links.
//
// Four transport configurations are compared:
//   dedicated      — Direct Connect circuits via the exchange (the baseline
//                    §2(4) answer; also a circuit from A's EU region for
//                    the far flow)
//   hot-potato     — exit to the internet at the first edge
//   cold-potato    — ride the provider backbone to the edge nearest the
//                    destination, then exit
//   cold+guarantee — cold potato plus a provider egress-bandwidth
//                    reservation (modeled as elevated max-min weight at the
//                    shared links, per §4's set_qos approximation)
//
// Shape expected (the paper's conjecture): dedicated best and tightest;
// hot-potato worst under congestion; cold-potato recovers most of the
// latency; the guarantee closes most of the remaining goodput gap.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/workload.h"
#include "src/sim/flow_sim.h"
#include "src/cloud/presets.h"

namespace tenantnet {
namespace {

struct Config {
  const char* name;
  EgressPolicy policy;
  double weight;
};

struct RunResult {
  double p50_ms;
  double p95_ms;
  double p99_ms;
  double jitter_ms;  // stddev
  double goodput_mbps;
};

RunResult RunConfig(const Fig1World& fig, const Config& config,
                    bool far_pair) {
  CloudWorld& world = *fig.world;
  EventQueue queue;
  FlowSim flows(queue, world.topology());
  // Two workloads over the same fluid network: small fixed-size probes
  // measure latency/jitter; large transfers measure goodput. (Mixing them
  // in one pattern would let response-size variance swamp path jitter.)
  WorkloadParams probe_params;
  probe_params.mean_response_bytes = 2 * 1024;
  probe_params.response_pareto_alpha = 50;  // effectively fixed size
  probe_params.seed = 11;
  RequestWorkload probes(queue, flows, world, probe_params);
  WorkloadParams bulk_params;
  bulk_params.mean_response_bytes = 25e6;  // bandwidth-dominated transfers
  bulk_params.seed = 13;
  RequestWorkload workload(queue, flows, world, bulk_params);

  // Background congestion: persistent internet flows between the web tiers
  // and the remote regions, always hot-potato (other tenants' traffic).
  auto add_background = [&](InstanceId src, InstanceId dst) {
    // Both directions: responses ride the reverse links.
    auto path = world.ResolveInstancePath(src, dst, EgressPolicy::kHotPotato);
    if (path.ok()) {
      flows.StartPersistentFlow(*path, /*weight=*/6.0);
    }
    auto back = world.ResolveInstancePath(dst, src, EgressPolicy::kHotPotato);
    if (back.ok()) {
      flows.StartPersistentFlow(*back, /*weight=*/6.0);
    }
  };
  for (size_t i = 0; i < fig.web_us.size(); ++i) {
    add_background(fig.web_us[i], fig.analytics[i % fig.analytics.size()]);
    add_background(fig.web_us[i], fig.database[i % fig.database.size()]);
  }
  for (size_t i = 0; i < fig.web_eu.size(); ++i) {
    add_background(fig.web_eu[i], fig.database[i % fig.database.size()]);
    add_background(fig.web_eu[i], fig.analytics[i % fig.analytics.size()]);
  }

  ConnectorFn connector = [&world, &config](InstanceId src, InstanceId dst) {
    ResolvedRoute route;
    route.allowed = true;
    route.src_node = world.FindInstance(src)->host_node;
    route.dst_node = world.FindInstance(dst)->host_node;
    route.policy = config.policy;
    route.weight = config.weight;
    return route;
  };

  const std::vector<InstanceId>& dsts =
      far_pair ? fig.analytics : fig.database;
  size_t probe_pattern = probes.AddPattern(std::string(config.name) + ":rt",
                                           fig.spark, dsts, /*rps=*/40.0,
                                           connector);
  size_t bulk_pattern = workload.AddPattern(std::string(config.name) + ":bulk",
                                            fig.spark, dsts, /*rps=*/3.0,
                                            connector);
  probes.Start(SimDuration::Seconds(20));
  workload.Start(SimDuration::Seconds(20));
  queue.RunAll();

  const PatternStats& probe_stats = probes.stats(probe_pattern);
  const PatternStats& bulk_stats = workload.stats(bulk_pattern);
  RunResult result;
  result.p50_ms = probe_stats.latency_ms.P50();
  result.p95_ms = probe_stats.latency_ms.P95();
  result.p99_ms = probe_stats.latency_ms.P99();
  result.jitter_ms = probe_stats.latency_ms.StdDev();
  // Goodput per transfer: bytes over time-in-flight, averaged.
  double mean_latency_s = bulk_stats.latency_ms.mean() / 1000.0;
  double mean_bytes =
      bulk_stats.completed > 0
          ? bulk_stats.bytes_transferred /
                static_cast<double>(bulk_stats.completed)
          : 0;
  result.goodput_mbps =
      mean_latency_s > 0 ? mean_bytes * 8.0 / mean_latency_s / 1e6 : 0;
  return result;
}

void RunPair(const char* title, bool far_pair) {
  // Fresh world per pair so circuits/flows don't leak across runs.
  Fig1World fig = BuildFig1World();
  // Dedicated circuits: both clouds to the exchange; for the far pair, also
  // from cloud A's EU region and cloud B's EU region (the paper's multi-
  // exchange reality).
  (void)fig.world->AddDedicatedCircuit(fig.a_us_east, fig.exchange, 10e9);
  (void)fig.world->AddDedicatedCircuit(fig.b_us_east, fig.exchange, 10e9);
  ExchangeId eu_exchange =
      fig.world->AddExchange("equinix:eu", {41, -3});
  (void)fig.world->AddDedicatedCircuit(fig.a_eu_west, eu_exchange, 10e9);
  (void)fig.world->AddDedicatedCircuit(fig.b_europe, eu_exchange, 10e9);

  std::printf("\n%s\n", title);
  TablePrinter table({16, 10, 10, 10, 11, 14});
  table.Row({"config", "p50 ms", "p95 ms", "p99 ms", "jitter ms",
             "goodput Mbps"});
  table.Rule();
  const Config configs[] = {
      {"dedicated", EgressPolicy::kDedicated, 1.0},
      {"hot-potato", EgressPolicy::kHotPotato, 1.0},
      {"cold-potato", EgressPolicy::kColdPotato, 1.0},
      {"cold+guarantee", EgressPolicy::kColdPotato, 8.0},
  };
  for (const Config& config : configs) {
    RunResult r = RunConfig(fig, config, far_pair);
    table.Row({config.name, FmtF(r.p50_ms, 1), FmtF(r.p95_ms, 1),
               FmtF(r.p99_ms, 1), FmtF(r.jitter_ms, 1),
               FmtF(r.goodput_mbps, 1)});
  }
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Banner("E5",
                    "QoS: potato routing + guarantees vs dedicated (§6 ii)");
  tenantnet::RunPair("Near pair: spark (A us-east) -> db (B us-east)",
                     /*far_pair=*/false);
  tenantnet::RunPair("Far pair: spark (A us-east) -> analytics (B europe)",
                     /*far_pair=*/true);
  std::printf(
      "\nReading: dedicated circuits give the lowest, tightest latency.\n"
      "Hot-potato suffers most under congested transit; cold-potato\n"
      "recovers latency by staying on the backbone; adding the egress\n"
      "guarantee recovers most of the goodput gap — supporting (with the\n"
      "caveats of §6) the paper's approximation conjecture.\n");
  return 0;
}
