// E2 — Table 1: the per-component configuration surface of today's
// abstractions versus the five calls of Table 2.
//
// For each abstraction the paper's Table 1 samples (four load-balancer
// families, the VPC, the transit gateway) we provision one minimally
// configured instance through the baseline control plane and report the
// ledger records it generated. The right-hand column reproduces Table 2:
// the entire tenant API has five verbs.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/core/intent.h"
#include "src/reach/policy_learner.h"
#include "src/reach/reach.h"
#include "src/vnet/decision_tree.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

struct SurfaceRow {
  std::string option;
  std::string features;
  uint64_t components;
  uint64_t parameters;
  uint64_t decisions;
  uint64_t cross_refs;
};

// Runs `provision` against a fresh ledger and reports what it cost.
template <typename Fn>
SurfaceRow Measure(const std::string& option, const std::string& features,
                   Fn&& provision) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);
  // Baseline scaffolding every appliance needs (not charged to the row).
  auto vpc = *net.CreateVpc(tw.tenant, tw.provider, tw.east, "v",
                            *IpPrefix::Parse("10.0.0.0/16"));
  auto subnet = *net.CreateSubnet(vpc, "s", 20, 0, true);
  ledger.Clear();
  provision(net, tw, vpc, subnet);
  return SurfaceRow{option, features, ledger.components(),
                    ledger.parameters(), ledger.decisions(),
                    ledger.cross_references()};
}

void ProvisionLb(BaselineNetwork& net, LbType type, VpcId vpc,
                 SubnetId subnet, bool with_rules) {
  auto tg = *net.CreateTargetGroup("tg", Protocol::kTcp, 443);
  auto lb = *net.CreateLoadBalancer(type, "lb", vpc, {subnet});
  LbListener listener;
  listener.proto = Protocol::kTcp;
  listener.port = 443;
  listener.default_target = tg;
  (void)net.AddLbListener(lb, listener);
  if (with_rules) {
    L7Rule rule;
    rule.priority = 10;
    rule.path_prefix = "/api";
    rule.target = tg;
    (void)net.AddLbRule(lb, 443, rule);
  }
}

// E12 side of the surface story: how many permit entries does a real app
// need, depending on who writes them? Three figures for the same app and
// the same reachability: the deployer's group-form lists, the naive
// host-granular transcription of the flow matrix, and the PolicyLearner's
// minimal prefix cover synthesized from observed flows.
void RunPermitSurface(BenchJsonWriter& json) {
  Banner("E12", "Permit surface: handwritten vs observed-and-synthesized");

  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);
  IntentDeployer deployer(cloud);

  AppSpec app;
  app.tenant = tw.tenant;
  ServiceSpec web;
  web.name = "web";
  web.port = 8080;
  ServiceSpec api;
  api.name = "api";
  api.port = 443;
  ServiceSpec db;
  db.name = "db";
  db.port = 5432;
  for (int i = 0; i < 4; ++i) {
    web.instances.push_back(
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0));
    api.instances.push_back(
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0));
    if (i < 2) {
      db.instances.push_back(
          *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0));
    }
  }
  app.services = {web, api, db};
  app.calls = {{"web", "api"}, {"api", "db"}};

  auto deployed = deployer.Deploy(app);
  if (!deployed.ok()) {
    std::printf("deploy failed\n");
    return;
  }
  std::vector<FiveTuple> expected = ExpectedFlows(app, *deployed);

  // Handwritten (deployer) surface: entries actually installed on master.
  EdgeFilterBank& bank = cloud.provider_filters(tw.provider);
  uint64_t handwritten = 0;
  for (const IpAddress& endpoint : bank.MasterEndpoints()) {
    const std::vector<PermitEntry>* entries = bank.MasterEntriesOf(endpoint);
    if (entries != nullptr) {
      handwritten += entries->size();
    }
  }

  // Learned surface: observe the app's expected flows, synthesize the
  // minimal cover, and sanity-check soundness before reporting it.
  PolicyLearner learner;
  learner.ObserveAll(expected);
  ReachabilityIntent intent = learner.Synthesize();
  uint64_t learned = 0;
  for (const auto& [dst, entries] : intent.permits) {
    learned += entries.size();
  }
  bool sound = true;
  for (const FiveTuple& f : expected) {
    sound = sound && intent.Admits(f.src, f.dst, f.dst_port, f.proto);
  }

  TablePrinter table({38, 10, 10});
  table.Row({"permit surface", "entries", "flows"});
  table.Rule();
  table.Row({"deployer group-form lists", FmtInt(handwritten),
             FmtInt(expected.size())});
  table.Row({"naive host-granular transcription", FmtInt(expected.size()),
             FmtInt(expected.size())});
  table.Row({"PolicyLearner minimal prefix cover", FmtInt(learned),
             FmtInt(expected.size())});
  std::printf(
      "\nReading: the learner compresses observed traffic into the smallest\n"
      "sound prefix cover (%s), so tenants who cannot write their own\n"
      "permit matrix can observe-then-pin it with no loss of precision.\n",
      sound ? "verified sound here" : "UNSOUND — bug");

  json.Recordf(
      "{\"bench\": \"table1_surface\", \"experiment\": \"E12\", "
      "\"surface\": \"handwritten\", \"entries\": %llu, \"flows\": %zu}",
      static_cast<unsigned long long>(handwritten), expected.size());
  json.Recordf(
      "{\"bench\": \"table1_surface\", \"experiment\": \"E12\", "
      "\"surface\": \"learned\", \"entries\": %llu, \"flows\": %zu, "
      "\"sound\": %d}",
      static_cast<unsigned long long>(learned), expected.size(),
      sound ? 1 : 0);
}

void Run() {
  Banner("E2", "Table 1: configuration surface per abstraction");

  std::vector<SurfaceRow> rows;
  rows.push_back(Measure(
      "Application Load Balancer", "L7 load balancing",
      [](BaselineNetwork& net, TestWorld&, VpcId vpc, SubnetId subnet) {
        ProvisionLb(net, LbType::kApplication, vpc, subnet, true);
      }));
  rows.push_back(Measure(
      "Network Load Balancer", "L4 load balancing",
      [](BaselineNetwork& net, TestWorld&, VpcId vpc, SubnetId subnet) {
        ProvisionLb(net, LbType::kNetwork, vpc, subnet, false);
      }));
  rows.push_back(Measure(
      "Classic Load Balancer", "L4 & L7 load balancing",
      [](BaselineNetwork& net, TestWorld&, VpcId vpc, SubnetId subnet) {
        ProvisionLb(net, LbType::kClassic, vpc, subnet, false);
      }));
  rows.push_back(Measure(
      "Gateway Load Balancer", "L3 load balancing",
      [](BaselineNetwork& net, TestWorld&, VpcId vpc, SubnetId subnet) {
        ProvisionLb(net, LbType::kGateway, vpc, subnet, false);
      }));
  rows.push_back(Measure(
      "VPC", "Isolated virtual network",
      [](BaselineNetwork& net, TestWorld& tw, VpcId, SubnetId) {
        auto vpc = *net.CreateVpc(tw.tenant, tw.provider, tw.east, "v2",
                                  *IpPrefix::Parse("10.1.0.0/16"));
        auto subnet = *net.CreateSubnet(vpc, "s2", 20, 0, false);
        auto sg = *net.CreateSecurityGroup(vpc, "sg");
        SgRule rule;
        rule.direction = TrafficDirection::kEgress;
        rule.peer = IpPrefix::Any(IpFamily::kIpv4);
        (void)net.AddSgRule(sg, rule);
        auto acl = *net.CreateNetworkAcl(vpc, "acl");
        AclEntry entry;
        entry.rule_number = 100;
        entry.allow = true;
        entry.match = FlowMatch::Any();
        (void)net.AddAclEntry(acl, entry);
        (void)net.AssociateAcl(subnet, acl);
      }));
  rows.push_back(Measure(
      "Transit Gateway", "VPC to on-prem connection",
      [](BaselineNetwork& net, TestWorld& tw, VpcId vpc, SubnetId) {
        auto tgw = *net.CreateTransitGateway(tw.provider, tw.east, 64601,
                                             "tgw");
        (void)net.AttachVpcToTgw(tgw, vpc);
        auto vpg = *net.CreateVpnGateway(vpc, tw.on_prem, 64602, "vpg");
        (void)net.AttachVpnToTgw(tgw, vpg);
        (void)net.AddTgwRoute(tgw, *IpPrefix::Parse("10.0.0.0/8"), 0);
        (void)net.PropagateRoutes();
      }));

  TablePrinter table({26, 26, 6, 8, 6, 8});
  table.Row({"Abstraction option", "Features", "boxes", "params", "decs",
             "xrefs"});
  table.Rule();
  for (const SurfaceRow& row : rows) {
    table.Row({row.option, row.features, FmtInt(row.components),
               FmtInt(row.parameters), FmtInt(row.decisions),
               FmtInt(row.cross_refs)});
  }

  // The planning burden that precedes any of the above: the selection
  // decision trees themselves (§3(2) cites Azure's five-level LB tree).
  auto lb_tree = BuildLoadBalancerDecisionTree();
  auto conn_tree = BuildConnectivityDecisionTree();
  std::printf(
      "\nSelection decision trees the tenant must navigate *before*\n"
      "creating anything:\n");
  TablePrinter trees({26, 10, 12, 10});
  trees.Row({"tree", "depth", "questions", "outcomes"});
  trees.Rule();
  trees.Row({"load balancer family", FmtInt(lb_tree->MaxDepth()),
             FmtInt(lb_tree->QuestionCount()), FmtInt(lb_tree->LeafCount())});
  trees.Row({"connectivity gateway", FmtInt(conn_tree->MaxDepth()),
             FmtInt(conn_tree->QuestionCount()),
             FmtInt(conn_tree->LeafCount())});
  // For contrast, the declarative world's whole "why can't A talk to B"
  // triage fits one small tree (the reach engine walks it mechanically).
  auto reach_tree = BuildReachTriageTree();
  trees.Row({"reach triage (declarative)", FmtInt(reach_tree->MaxDepth()),
             FmtInt(reach_tree->QuestionCount()),
             FmtInt(reach_tree->LeafCount())});

  std::printf(
      "\nTable 2 (the proposal) for comparison — the full tenant API:\n");
  TablePrinter api({34, 42});
  api.Row({"API", "Description"});
  api.Rule();
  api.Row({"request_eip(vm_id)", "Grants endpoint IP"});
  api.Row({"request_sip()", "Grants service IP"});
  api.Row({"bind(eip, sip)", "Binds EIP to SIP"});
  api.Row({"set_permit_list(eip, permit_list)", "Sets access list for EIP"});
  api.Row({"set_qos(region, bandwidth)", "Sets region BW allowance"});
  std::printf(
      "\nFive verbs, zero boxes, zero placement/topology decisions. Every\n"
      "row above exists *per appliance instance* in the baseline world.\n");
}

}  // namespace
}  // namespace tenantnet

int main(int argc, char** argv) {
  tenantnet::BenchJsonWriter json("table1_surface", argc, argv);
  tenantnet::Run();
  tenantnet::RunPermitSurface(json);
  return 0;
}
