// E1 — Figure 1: tenant-side complexity of the example deployment.
//
// Builds the paper's Figure 1 deployment twice on the same physical world:
// once the traditional way (VPCs, gateways, peerings, circuits, LBs,
// firewall) and once through the Table 2 API. Reports the boxes the tenant
// owns and every configuration action the ledger recorded.
//
// Paper claim (§5): "the tenant will no longer have to consider any of the
// 6 VPCs or 9 gateways in the original topology, only the endpoints
// themselves."

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/vnet/builder.h"

namespace tenantnet {
namespace {

// Mirrors the parity test's declarative deployment (EIP per instance, SIPs
// for web/db tiers, permit lists from the communication matrix).
void DeployDeclarative(DeclarativeCloud& cloud, const Fig1World& fig) {
  std::map<uint64_t, IpAddress> eip;
  for (InstanceId id : fig.AllInstances()) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  IpAddress web_sip = *cloud.RequestSip(fig.tenant, fig.cloud_a);
  for (InstanceId id : fig.web_eu) {
    (void)cloud.Bind(eip[id.value()], web_sip);
  }
  IpAddress db_sip = *cloud.RequestSip(fig.tenant, fig.cloud_b);
  for (InstanceId id : fig.database) {
    (void)cloud.Bind(eip[id.value()], db_sip);
  }
  auto permit_hosts = [&](InstanceId target,
                          std::vector<const std::vector<InstanceId>*> groups) {
    std::vector<PermitEntry> permits;
    for (const auto* group : groups) {
      for (InstanceId src : *group) {
        if (src != target) {
          PermitEntry e;
          e.source = IpPrefix::Host(eip[src.value()]);
          permits.push_back(e);
        }
      }
    }
    (void)cloud.SetPermitList(eip[target.value()], permits);
  };
  for (InstanceId db : fig.database) {
    permit_hosts(db, {&fig.spark, &fig.analytics, &fig.alerting});
  }
  for (InstanceId sp : fig.spark) {
    permit_hosts(sp, {&fig.spark, &fig.web_eu, &fig.web_us, &fig.alerting});
  }
  for (const auto* group : {&fig.web_eu, &fig.web_us}) {
    for (InstanceId web : *group) {
      PermitEntry anyone;
      anyone.source = IpPrefix::Any(IpFamily::kIpv4);
      anyone.dst_ports = PortRange::Single(Fig1Baseline::kWebPort);
      anyone.proto = Protocol::kTcp;
      (void)cloud.SetPermitList(eip[web.value()], {anyone});
    }
  }
  for (InstanceId a : fig.analytics) {
    permit_hosts(a, {&fig.database});
  }
  for (InstanceId al : fig.alerting) {
    permit_hosts(al, {&fig.spark});
  }
  // QoS: a regional egress allowance where the tenant's heavy cross-cloud
  // traffic originates, plus the transit profile.
  (void)cloud.SetQos(fig.tenant, fig.a_us_east, 10e9);
  (void)cloud.SetQos(fig.tenant, fig.b_us_east, 10e9);
  (void)cloud.SetEgressProfile(fig.tenant, EgressPolicy::kColdPotato);
}

void Run() {
  Banner("E1", "Figure 1 deployment: tenant-side complexity, both worlds");

  Fig1World fig = BuildFig1World();
  ConfigLedger base_ledger;
  BaselineNetwork baseline(*fig.world, base_ledger);
  auto built = BuildFig1Baseline(baseline, fig);
  if (!built.ok()) {
    std::printf("baseline build failed: %s\n",
                built.status().ToString().c_str());
    return;
  }

  ConfigLedger decl_ledger;
  DeclarativeCloud declarative(*fig.world, decl_ledger);
  DeployDeclarative(declarative, fig);

  std::printf("\nTenant-owned network boxes (paper: 6 VPCs + 9 gateways):\n");
  TablePrinter boxes({28, 12, 12});
  boxes.Row({"box kind", "baseline", "declarative"});
  boxes.Rule();
  boxes.Row({"VPCs / virtual networks", FmtInt(baseline.vpc_count()), "0"});
  boxes.Row({"gateways (IGW/NAT/VPN/TGW/DX)",
             FmtInt(baseline.gateway_count()), "0"});
  boxes.Row({"appliances (LBs, firewall)",
             FmtInt(baseline.appliance_count()), "0"});
  boxes.Row({"BGP speakers the tenant runs",
             FmtInt(baseline.bgp().speaker_count()), "0"});

  std::printf("\nComponent breakdown (baseline world):\n");
  TablePrinter kinds({28, 12});
  for (const auto& [kind, count] : base_ledger.ComponentsByKind()) {
    kinds.Row({kind, FmtInt(count)});
  }

  std::printf("\nConfiguration actions recorded by the ledger:\n");
  TablePrinter actions({28, 12, 12});
  actions.Row({"action category", "baseline", "declarative"});
  actions.Rule();
  actions.Row({"components created", FmtInt(base_ledger.components()),
               FmtInt(decl_ledger.components())});
  actions.Row({"parameters set", FmtInt(base_ledger.parameters()),
               FmtInt(decl_ledger.parameters())});
  actions.Row({"decisions made", FmtInt(base_ledger.decisions()),
               FmtInt(decl_ledger.decisions())});
  actions.Row({"cross-references", FmtInt(base_ledger.cross_references()),
               FmtInt(decl_ledger.cross_references())});
  actions.Row({"declarative API calls", FmtInt(base_ledger.api_calls()),
               FmtInt(decl_ledger.api_calls())});
  actions.Row({"TOTAL tenant actions", FmtInt(base_ledger.total()),
               FmtInt(decl_ledger.total())});

  auto bgp = baseline.bgp().Converge();
  std::printf(
      "\nBaseline also requires the tenant's BGP mesh: %zu speakers, "
      "%zu sessions, %llu update messages to converge (%llu rounds).\n",
      baseline.bgp().speaker_count(), baseline.bgp().session_count(),
      static_cast<unsigned long long>(bgp.update_messages),
      static_cast<unsigned long long>(bgp.rounds));
  std::printf(
      "Declarative: the tenant runs no routing protocol at all; permit-list\n"
      "entries (%llu parameters above) are the only per-host state.\n",
      static_cast<unsigned long long>(decl_ledger.parameters()));
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Run();
  return 0;
}
