// E6 — §6(iii): permit-lists + API-level auth vs today's network-layer
// defense stack.
//
// Both worlds host the Fig. 1 application; an API gateway with bearer-token
// auth fronts the web tier in both (the paper assumes service-centric apps
// in either case — the *network* layers are what differ). Four attacks:
//
//   flood-closed   — volumetric flood on a port no service exposes
//   flood-open     — volumetric L7 flood on the public web port
//   bad-credential — network-permitted source, invalid token
//   stolen-cred    — valid token, non-permitted network location (vs db)
//
// Reported per attack and world: how much attack traffic reached the
// endpoint, how much was served, where the rest died, and how much work
// tenant-owned appliances had to do. A second table sweeps flood rate vs
// the baseline DPI firewall's capacity: past saturation the appliance
// tail-drops legitimate traffic too — the resource-exhaustion failure mode
// the provider-edge permit list does not share. A third table counts the
// reachable attack surface.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/gateway.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/secsim/attack.h"
#include "src/vnet/builder.h"

namespace tenantnet {
namespace {

struct Worlds {
  Fig1World fig;
  ConfigLedger base_ledger;
  ConfigLedger decl_ledger;
  std::unique_ptr<BaselineNetwork> baseline;
  std::unique_ptr<Fig1Baseline> handles;
  std::unique_ptr<DeclarativeCloud> declarative;
  std::map<uint64_t, IpAddress> eip;

  CredentialRegistry credentials;
  std::unique_ptr<ApiGateway> web_gateway;
  std::string legit_token;
};

std::unique_ptr<Worlds> BuildWorlds() {
  // Heap-allocated: BaselineNetwork/DeclarativeCloud hold pointers to the
  // ledgers, so the owning struct must never move after construction.
  auto owner = std::make_unique<Worlds>();
  Worlds& w = *owner;
  w.fig = BuildFig1World();
  w.baseline = std::make_unique<BaselineNetwork>(*w.fig.world, w.base_ledger);
  auto built = BuildFig1Baseline(*w.baseline, w.fig);
  w.handles = std::make_unique<Fig1Baseline>(*built);

  w.declarative =
      std::make_unique<DeclarativeCloud>(*w.fig.world, w.decl_ledger);
  for (InstanceId id : w.fig.AllInstances()) {
    w.eip[id.value()] = *w.declarative->RequestEip(id);
  }
  // Declarative permit lists: web open on 443; db accepts only spark +
  // analytics + alerting EIPs.
  for (InstanceId web : w.fig.web_eu) {
    PermitEntry anyone;
    anyone.source = IpPrefix::Any(IpFamily::kIpv4);
    anyone.dst_ports = PortRange::Single(Fig1Baseline::kWebPort);
    anyone.proto = Protocol::kTcp;
    (void)w.declarative->SetPermitList(w.eip[web.value()], {anyone});
  }
  for (InstanceId db : w.fig.database) {
    std::vector<PermitEntry> permits;
    for (const auto* group : {&w.fig.spark, &w.fig.analytics,
                              &w.fig.alerting}) {
      for (InstanceId src : *group) {
        PermitEntry e;
        e.source = IpPrefix::Host(w.eip[src.value()]);
        e.dst_ports = PortRange::Single(Fig1Baseline::kDbPort);
        e.proto = Protocol::kTcp;
        permits.push_back(e);
      }
    }
    (void)w.declarative->SetPermitList(w.eip[db.value()], permits);
  }

  Principal& client = w.credentials.CreatePrincipal("legit-client");
  w.legit_token = client.token;
  w.web_gateway = std::make_unique<ApiGateway>("web", &w.credentials);
  w.web_gateway->Authorize(client.id, "*", "/api");
  return owner;
}

std::string TopDropStage(const AttackOutcome& outcome) {
  std::string best = "-";
  uint64_t most = 0;
  for (const auto& [stage, count] : outcome.dropped_by_stage) {
    if (count > most) {
      most = count;
      best = stage;
    }
  }
  return best;
}

void AttackMatrix(Worlds& w) {
  const IpAddress web_pub =
      *w.baseline->FindEniByInstance(w.fig.web_eu[0])->public_ip;
  const IpAddress db_priv =
      w.baseline->FindEniByInstance(w.fig.database[0])->private_ip;
  const IpAddress web_eip = w.eip[w.fig.web_eu[0].value()];
  const IpAddress db_eip = w.eip[w.fig.database[0].value()];

  auto base_net = [&w](const FiveTuple& flow,
                       const std::string& payload) -> NetworkVerdict {
    auto d = w.baseline->EvaluateExternal(flow.src, flow.dst, flow.dst_port,
                                          flow.proto, payload);
    return {d.delivered, d.delivered ? "delivered" : d.drop_stage};
  };
  auto decl_net = [&w](const FiveTuple& flow,
                       const std::string& payload) -> NetworkVerdict {
    (void)payload;
    auto d = w.declarative->EvaluateExternal(flow.src, flow.dst,
                                             flow.dst_port, flow.proto);
    return {d.delivered, d.delivered ? "delivered" : d.drop_stage};
  };
  auto app = [&w](const ApiRequest& request) {
    return w.web_gateway->Check(request);
  };

  struct Scenario {
    const char* name;
    AttackConfig base_cfg;
    AttackConfig decl_cfg;
    bool with_app;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "flood-closed(22)";
    s.base_cfg.kind = AttackKind::kVolumetricFlood;
    s.base_cfg.target = web_pub;
    s.base_cfg.target_port = 22;
    s.base_cfg.attempts = 20000;
    s.decl_cfg = s.base_cfg;
    s.decl_cfg.target = web_eip;
    s.with_app = false;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "flood-open(443)";
    s.base_cfg.kind = AttackKind::kVolumetricFlood;
    s.base_cfg.target = web_pub;
    s.base_cfg.target_port = Fig1Baseline::kWebPort;
    s.base_cfg.attempts = 20000;
    s.base_cfg.token = "";  // no credential
    s.decl_cfg = s.base_cfg;
    s.decl_cfg.target = web_eip;
    s.with_app = true;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "bad-credential";
    s.base_cfg.kind = AttackKind::kUnauthorizedAccess;
    s.base_cfg.target = web_pub;
    s.base_cfg.target_port = Fig1Baseline::kWebPort;
    s.base_cfg.attempts = 5000;
    s.base_cfg.insider_source = IpAddress::V4(198, 18, 0, 9);
    s.base_cfg.token = "forged-token";
    s.decl_cfg = s.base_cfg;
    s.decl_cfg.target = web_eip;
    s.with_app = true;
    scenarios.push_back(s);
  }
  {
    Scenario s;
    s.name = "stolen-cred(db)";
    s.base_cfg.kind = AttackKind::kStolenCredential;
    s.base_cfg.target = db_priv;
    s.base_cfg.target_port = Fig1Baseline::kDbPort;
    s.base_cfg.attempts = 5000;
    s.base_cfg.token = w.legit_token;
    s.decl_cfg = s.base_cfg;
    s.decl_cfg.target = db_eip;
    s.with_app = true;
    scenarios.push_back(s);
  }

  std::printf("\nAttack outcomes (reach = crossed the network to the "
              "endpoint; serve = also passed API auth):\n");
  TablePrinter table({18, 13, 10, 10, 22});
  table.Row({"attack", "world", "reach %", "serve %", "top drop stage"});
  table.Rule();
  for (const Scenario& s : scenarios) {
    DpiFirewall* fw = w.baseline->FindFirewall(w.handles->firewall);
    uint64_t fw_before = fw->inspected_count();
    AttackOutcome base = RunAttack(s.base_cfg, base_net,
                                   s.with_app ? AppCheckFn(app) : nullptr);
    uint64_t fw_work = fw->inspected_count() - fw_before;
    AttackOutcome decl = RunAttack(s.decl_cfg, decl_net,
                                   s.with_app ? AppCheckFn(app) : nullptr);
    table.Row({s.name, "baseline", FmtF(100 * base.ReachRate(), 1),
               FmtF(100 * base.ServeRate(), 1), TopDropStage(base)});
    table.Row({"", "declarative", FmtF(100 * decl.ReachRate(), 1),
               FmtF(100 * decl.ServeRate(), 1), TopDropStage(decl)});
    std::printf("    (baseline tenant firewall inspected %llu attack "
                "packets in '%s')\n",
                static_cast<unsigned long long>(fw_work), s.name);
  }
}

void FirewallSaturation(Worlds& w) {
  std::printf(
      "\nVolumetric saturation: legitimate-traffic survival through the\n"
      "tenant DPI firewall (capacity %.0f pps) vs the provider edge filter\n"
      "(line-rate; drops are exact):\n",
      w.baseline->FindFirewall(w.handles->firewall)->capacity_pps());
  TablePrinter table({16, 22, 24});
  table.Row({"attack pps", "baseline legit survival", "declarative legit "
             "survival"});
  table.Rule();
  DpiFirewall* fw = w.baseline->FindFirewall(w.handles->firewall);
  for (double pps : {1e5, 1e6, 5e6, 2e7}) {
    // The firewall must inspect attack + legit traffic; beyond capacity it
    // tail-drops indiscriminately.
    double survival = fw->SurvivalFraction(pps + 1e4);
    table.Row({FmtF(pps, 0), FmtF(100 * survival, 1) + " %", "100.0 %"});
  }
  std::printf(
      "The provider's edge filters drop non-permitted flows in the fabric,\n"
      "before any tenant-owned choke point: volumetric attacks on closed\n"
      "services cannot exhaust tenant resources.\n");
}

void AttackSurface(Worlds& w) {
  const uint16_t kPorts[] = {22,   80,   Fig1Baseline::kWebPort,
                             Fig1Baseline::kDbPort,
                             Fig1Baseline::kSparkPort,
                             Fig1Baseline::kAnalyticsPort};
  IpAddress scanner = IpAddress::V4(203, 0, 113, 99);
  uint64_t base_reachable = 0;
  uint64_t decl_reachable = 0;
  uint64_t base_endpoints = 0;
  uint64_t decl_endpoints = 0;
  for (InstanceId id : w.fig.AllInstances()) {
    const Eni* eni = w.baseline->FindEniByInstance(id);
    if (eni != nullptr && eni->public_ip.has_value()) {
      ++base_endpoints;
      for (uint16_t port : kPorts) {
        if (w.baseline->EvaluateExternal(scanner, *eni->public_ip, port,
                                         Protocol::kTcp).delivered) {
          ++base_reachable;
        }
      }
    }
    ++decl_endpoints;
    for (uint16_t port : kPorts) {
      if (w.declarative->EvaluateExternal(scanner, w.eip[id.value()], port,
                                          Protocol::kTcp).delivered) {
        ++decl_reachable;
      }
    }
  }
  std::printf("\nAttack surface from an arbitrary internet source:\n");
  TablePrinter table({14, 20, 26});
  table.Row({"world", "public endpoints", "reachable (endpoint,port)"});
  table.Rule();
  table.Row({"baseline", FmtInt(base_endpoints), FmtInt(base_reachable)});
  table.Row({"declarative", FmtInt(decl_endpoints), FmtInt(decl_reachable)});
  std::printf(
      "Every endpoint is publicly *addressed* in the declarative world, yet\n"
      "the reachable surface is the explicitly permitted set only — public-\n"
      "but-default-off is as closed as private addressing, without VPCs.\n");
}

// Lateral movement: if instance X is compromised, how many (victim, port)
// pairs can it newly reach? Baseline security groups authorize by prefix
// (e.g. "5432 from 10.0.0.0/16"), so any compromised host inside the
// prefix inherits access; declarative permit lists name exact endpoints.
void LateralMovement(Worlds& w) {
  const uint16_t kPorts[] = {Fig1Baseline::kWebPort, Fig1Baseline::kDbPort,
                             Fig1Baseline::kSparkPort,
                             Fig1Baseline::kAnalyticsPort,
                             Fig1Baseline::kAlertPort};
  // The app's intended flows, as (src, dst, port), for exclusion.
  auto intended = [&](InstanceId src, InstanceId dst, uint16_t port) {
    auto in = [&](const std::vector<InstanceId>& group, InstanceId id) {
      return std::find(group.begin(), group.end(), id) != group.end();
    };
    if (port == Fig1Baseline::kDbPort && in(w.fig.database, dst)) {
      return in(w.fig.spark, src) || in(w.fig.analytics, src) ||
             in(w.fig.alerting, src);
    }
    if (port == Fig1Baseline::kSparkPort && in(w.fig.spark, dst)) {
      return in(w.fig.spark, src) || in(w.fig.web_eu, src) ||
             in(w.fig.web_us, src) || in(w.fig.alerting, src);
    }
    if (port == Fig1Baseline::kWebPort &&
        (in(w.fig.web_eu, dst) || in(w.fig.web_us, dst))) {
      return true;  // public service: everything is intended
    }
    return false;
  };

  uint64_t base_excess = 0, base_max = 0;
  uint64_t decl_excess = 0, decl_max = 0;
  auto all = w.fig.AllInstances();
  for (InstanceId compromised : all) {
    uint64_t base_count = 0, decl_count = 0;
    for (InstanceId victim : all) {
      if (victim == compromised) {
        continue;
      }
      for (uint16_t port : kPorts) {
        if (intended(compromised, victim, port)) {
          continue;
        }
        auto base = w.baseline->Evaluate(compromised, victim, port,
                                         Protocol::kTcp);
        if (base.ok() && base->delivered) {
          ++base_count;
        }
        auto decl = w.declarative->Evaluate(
            compromised, w.eip[victim.value()], port, Protocol::kTcp);
        if (decl.ok() && decl->delivered) {
          ++decl_count;
        }
      }
    }
    base_excess += base_count;
    base_max = std::max(base_max, base_count);
    decl_excess += decl_count;
    decl_max = std::max(decl_max, decl_count);
  }

  std::printf(
      "\nLateral movement: unintended (victim, port) pairs reachable from a\n"
      "single compromised instance (excluding the app's declared flows and\n"
      "the public web port):\n");
  TablePrinter table({14, 26, 14});
  table.Row({"world", "total excess reachability", "worst instance"});
  table.Rule();
  table.Row({"baseline", FmtInt(base_excess), FmtInt(base_max)});
  table.Row({"declarative", FmtInt(decl_excess), FmtInt(decl_max)});
  std::printf(
      "Prefix-granular SG rules (\"5432 from 10.0.0.0/16\") hand every host\n"
      "inside the prefix the same access; host-granular permit lists leak\n"
      "only what they name. (Baseline tenants *could* write host-granular\n"
      "SGs too — at the E9 maintenance cost, per VPC, per cloud.)\n");
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Banner("E6", "Security: permit-list + API auth vs network stack "
                          "(§6 iii)");
  auto w = tenantnet::BuildWorlds();
  tenantnet::AttackMatrix(*w);
  tenantnet::FirewallSaturation(*w);
  tenantnet::AttackSurface(*w);
  tenantnet::LateralMovement(*w);
  return 0;
}
