// E7 — §5's migration claim: "any migration between clouds will become
// incredibly simple as the basic interface will be constant between
// clouds."
//
// Task: move the us-west web tier (cloud A) to cloud B's Europe region.
// Both worlds start from the fully built Fig. 1 deployment; we count every
// tenant action the move itself requires, then verify the migrated tier
// can still reach spark.
//
// Baseline: a new VPC with subnets/SG/ACL/route tables/IGW, a new transit
// gateway + peering, route updates, BGP re-convergence, re-attachment —
// effectively re-doing a slice of the §2 provisioning on a *different*
// provider's abstractions. Declarative: request_eip / set_permit_list /
// release_eip, identical verbs on either cloud.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/vnet/builder.h"

namespace tenantnet {
namespace {

struct LedgerSnapshot {
  uint64_t components, parameters, decisions, cross_refs, api_calls, total;

  static LedgerSnapshot Of(const ConfigLedger& ledger) {
    return {ledger.components(), ledger.parameters(), ledger.decisions(),
            ledger.cross_references(), ledger.api_calls(), ledger.total()};
  }
  LedgerSnapshot Delta(const LedgerSnapshot& later) const {
    return {later.components - components, later.parameters - parameters,
            later.decisions - decisions, later.cross_refs - cross_refs,
            later.api_calls - api_calls, later.total - total};
  }
};

Status MigrateBaseline(BaselineNetwork& net, Fig1World& fig,
                       const Fig1Baseline& handles,
                       std::vector<InstanceId>& new_web) {
  CloudWorld& world = *fig.world;
  // New compute in cloud B Europe.
  for (int i = 0; i < 2; ++i) {
    TN_ASSIGN_OR_RETURN(InstanceId id,
                        world.LaunchInstance(fig.tenant, fig.cloud_b,
                                             fig.b_europe, i % 2));
    new_web.push_back(id);
  }

  // A brand-new VPC on the other provider, with all the trimmings.
  TN_ASSIGN_OR_RETURN(VpcId vpc,
                      net.CreateVpc(fig.tenant, fig.cloud_b, fig.b_europe,
                                    "web-b-eu", *IpPrefix::Parse(
                                        "10.6.0.0/16")));
  TN_ASSIGN_OR_RETURN(VpcRouteTableId rt,
                      net.CreateRouteTable(vpc, "web-b-eu:rt"));
  std::vector<SubnetId> subnets;
  for (int z = 0; z < 2; ++z) {
    TN_ASSIGN_OR_RETURN(SubnetId subnet,
                        net.CreateSubnet(vpc, "web-b-eu:" + std::to_string(z),
                                         20, z, false));
    TN_RETURN_IF_ERROR(net.AssociateRouteTable(subnet, rt));
    subnets.push_back(subnet);
  }
  // Duplicate the web ACL and SG on the new provider (no sharing across
  // clouds).
  TN_ASSIGN_OR_RETURN(NetworkAclId acl,
                      net.CreateNetworkAcl(vpc, "web-b-eu:acl"));
  AclEntry internal;
  internal.rule_number = 100;
  internal.allow = true;
  internal.direction = TrafficDirection::kIngress;
  internal.match = FlowMatch::FromSource(*IpPrefix::Parse("10.0.0.0/8"));
  TN_RETURN_IF_ERROR(net.AddAclEntry(acl, internal));
  AclEntry ephemeral = internal;
  ephemeral.rule_number = 110;
  ephemeral.match = FlowMatch::Any();
  ephemeral.match.dst_ports = PortRange{1024, 65535};
  TN_RETURN_IF_ERROR(net.AddAclEntry(acl, ephemeral));
  AclEntry https = internal;
  https.rule_number = 120;
  https.match = FlowMatch::Any();
  https.match.dst_ports = PortRange::Single(Fig1Baseline::kWebPort);
  TN_RETURN_IF_ERROR(net.AddAclEntry(acl, https));
  AclEntry egress;
  egress.rule_number = 100;
  egress.allow = true;
  egress.direction = TrafficDirection::kEgress;
  egress.match = FlowMatch::Any();
  TN_RETURN_IF_ERROR(net.AddAclEntry(acl, egress));
  for (SubnetId subnet : subnets) {
    TN_RETURN_IF_ERROR(net.AssociateAcl(subnet, acl));
  }
  TN_ASSIGN_OR_RETURN(SecurityGroupId sg,
                      net.CreateSecurityGroup(vpc, "sg-web-b-eu"));
  SgRule sg_egress;
  sg_egress.direction = TrafficDirection::kEgress;
  sg_egress.peer = IpPrefix::Any(IpFamily::kIpv4);
  sg_egress.description = "egress-all";
  TN_RETURN_IF_ERROR(net.AddSgRule(sg, sg_egress));
  SgRule sg_https;
  sg_https.direction = TrafficDirection::kIngress;
  sg_https.proto = Protocol::kTcp;
  sg_https.ports = PortRange::Single(Fig1Baseline::kWebPort);
  sg_https.peer = IpPrefix::Any(IpFamily::kIpv4);
  sg_https.description = "public-https";
  TN_RETURN_IF_ERROR(net.AddSgRule(sg, sg_https));

  // Internet access for the public tier.
  TN_ASSIGN_OR_RETURN(IgwId igw, net.CreateInternetGateway(vpc, "igw-b-eu"));

  // Private connectivity back to the rest: a new regional TGW, peered with
  // cloud B's us-east hub (which owns the circuit to cloud A).
  TN_ASSIGN_OR_RETURN(TransitGatewayId tgw,
                      net.CreateTransitGateway(fig.cloud_b, fig.b_europe,
                                               64612, "tgw-b-europe"));
  TN_RETURN_IF_ERROR(net.AttachVpcToTgw(tgw, vpc).status());
  TN_RETURN_IF_ERROR(net.PeerTransitGateways(tgw, handles.tgw_b));

  // Route tables: tenant network via TGW, internet via IGW.
  TN_RETURN_IF_ERROR(net.AddRoute(rt, *IpPrefix::Parse("10.0.0.0/8"),
                                  VpcRouteTarget{
                                      VpcRouteTargetKind::kTransitGateway,
                                      tgw.value()}));
  TN_RETURN_IF_ERROR(net.AddRoute(rt, IpPrefix::Any(IpFamily::kIpv4),
                                  VpcRouteTarget{
                                      VpcRouteTargetKind::kInternetGateway,
                                      igw.value()}));

  // Attach the new instances, detach the old.
  for (InstanceId id : new_web) {
    TN_RETURN_IF_ERROR(
        net.AttachInstance(id, subnets[0], {sg}, /*public=*/true).status());
  }
  for (InstanceId id : fig.web_us) {
    TN_RETURN_IF_ERROR(net.DetachInstance(id));
  }

  // And the tenant must remember to re-converge their routing.
  net.PropagateRoutes();
  return Status::Ok();
}

Status MigrateDeclarative(DeclarativeCloud& cloud, Fig1World& fig,
                          std::map<uint64_t, IpAddress>& eip,
                          std::vector<InstanceId>& new_web) {
  CloudWorld& world = *fig.world;
  for (int i = 0; i < 2; ++i) {
    TN_ASSIGN_OR_RETURN(InstanceId id,
                        world.LaunchInstance(fig.tenant, fig.cloud_b,
                                             fig.b_europe, i % 2));
    new_web.push_back(id);
  }
  // New EIPs + the web permit list (same API, different cloud).
  for (InstanceId id : new_web) {
    TN_ASSIGN_OR_RETURN(IpAddress addr, cloud.RequestEip(id));
    eip[id.value()] = addr;
    PermitEntry anyone;
    anyone.source = IpPrefix::Any(IpFamily::kIpv4);
    anyone.dst_ports = PortRange::Single(Fig1Baseline::kWebPort);
    anyone.proto = Protocol::kTcp;
    TN_RETURN_IF_ERROR(cloud.SetPermitList(addr, {anyone}).status());
  }
  // Spark listed the old web EIPs; swap them incrementally for the new
  // ones (update_permit_list extension: no full-list resend).
  std::vector<PermitEntry> add;
  for (InstanceId src : new_web) {
    PermitEntry e;
    e.source = IpPrefix::Host(eip.at(src.value()));
    add.push_back(e);
  }
  std::vector<PermitEntry> remove;
  for (InstanceId src : fig.web_us) {
    PermitEntry e;
    e.source = IpPrefix::Host(eip.at(src.value()));
    remove.push_back(e);
  }
  for (InstanceId sp : fig.spark) {
    TN_RETURN_IF_ERROR(
        cloud.UpdatePermitList(eip.at(sp.value()), add, remove).status());
  }
  // Release the old endpoints.
  for (InstanceId id : fig.web_us) {
    TN_RETURN_IF_ERROR(cloud.ReleaseEip(eip.at(id.value())));
    eip.erase(id.value());
  }
  return Status::Ok();
}

void Run() {
  Banner("E7", "Cross-cloud migration: move the us-west web tier to cloud B");

  // --- Baseline world -------------------------------------------------------
  Fig1World base_fig = BuildFig1World();
  ConfigLedger base_ledger;
  BaselineNetwork baseline(*base_fig.world, base_ledger);
  auto handles = BuildFig1Baseline(baseline, base_fig);
  LedgerSnapshot base_before = LedgerSnapshot::Of(base_ledger);
  std::vector<InstanceId> base_new_web;
  Status base_status =
      MigrateBaseline(baseline, base_fig, *handles, base_new_web);
  LedgerSnapshot base_delta =
      base_before.Delta(LedgerSnapshot::Of(base_ledger));

  // --- Declarative world ----------------------------------------------------
  Fig1World decl_fig = BuildFig1World();
  ConfigLedger decl_ledger;
  DeclarativeCloud declarative(*decl_fig.world, decl_ledger);
  std::map<uint64_t, IpAddress> eip;
  for (InstanceId id : decl_fig.AllInstances()) {
    eip[id.value()] = *declarative.RequestEip(id);
  }
  // Spark permits the web tiers (the state the migration must update).
  for (InstanceId sp : decl_fig.spark) {
    std::vector<PermitEntry> permits;
    for (const auto* group : {&decl_fig.spark, &decl_fig.web_eu,
                              &decl_fig.web_us, &decl_fig.alerting}) {
      for (InstanceId src : *group) {
        if (src != sp) {
          PermitEntry e;
          e.source = IpPrefix::Host(eip.at(src.value()));
          permits.push_back(e);
        }
      }
    }
    (void)declarative.SetPermitList(eip.at(sp.value()), permits);
  }
  LedgerSnapshot decl_before = LedgerSnapshot::Of(decl_ledger);
  std::vector<InstanceId> decl_new_web;
  Status decl_status =
      MigrateDeclarative(declarative, decl_fig, eip, decl_new_web);
  LedgerSnapshot decl_delta =
      decl_before.Delta(LedgerSnapshot::Of(decl_ledger));

  std::printf("baseline migration: %s\ndeclarative migration: %s\n",
              base_status.ToString().c_str(),
              decl_status.ToString().c_str());

  std::printf("\nTenant actions required by the move:\n");
  TablePrinter table({24, 12, 12});
  table.Row({"action category", "baseline", "declarative"});
  table.Rule();
  table.Row({"components created", FmtInt(base_delta.components),
             FmtInt(decl_delta.components)});
  table.Row({"parameters set", FmtInt(base_delta.parameters),
             FmtInt(decl_delta.parameters)});
  table.Row({"decisions made", FmtInt(base_delta.decisions),
             FmtInt(decl_delta.decisions)});
  table.Row({"cross-references", FmtInt(base_delta.cross_refs),
             FmtInt(decl_delta.cross_refs)});
  table.Row({"API calls", FmtInt(base_delta.api_calls),
             FmtInt(decl_delta.api_calls)});
  table.Row({"TOTAL", FmtInt(base_delta.total), FmtInt(decl_delta.total)});

  // Verify the migrated tier still reaches spark in both worlds.
  auto base_check = baseline.Evaluate(base_new_web[0], base_fig.spark[0],
                                      Fig1Baseline::kSparkPort,
                                      Protocol::kTcp);
  auto decl_check = declarative.Evaluate(
      decl_new_web[0], eip.at(decl_fig.spark[0].value()),
      Fig1Baseline::kSparkPort, Protocol::kTcp);
  auto verdict = [](const auto& check) -> std::string {
    if (!check.ok()) {
      return "ERROR(" + check.status().ToString() + ")";
    }
    if (check->delivered) {
      return "DELIVERED";
    }
    return "DROPPED(" + check->drop_stage + ")";
  };
  std::printf("\npost-migration web->spark: baseline %s, declarative %s\n",
              verdict(base_check).c_str(), verdict(decl_check).c_str());
  std::printf(
      "\nReading: the baseline move re-provisions a provider-specific\n"
      "network slice (new VPC, TGW, peering, routes, duplicated SG/ACL)\n"
      "and re-runs BGP; the declarative move is the same five verbs on a\n"
      "different cloud — the interface is constant, as §5 claims.\n");
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Run();
  return 0;
}
