// E8b resilience experiment — identical seeded fault storms replayed
// against the baseline fabric and the declarative world.
//
// For each storm seed the SAME FaultSchedule (link faults on backbone /
// internet links, instance crashes, gateway restarts, control-plane
// degrades) drives both worlds while a retrying request workload runs over
// them. Reported per (world, seed) as a JSON line:
//   * time-to-reconverge (mean / max ms across all faults),
//   * blackholed bytes + flows and aborted flows (the fault blast radius),
//   * workload outcome (completed / retries / gave-up / denied, latency
//     p50 / p99) — how much of the storm the application actually felt,
//   * stalled_after — permanently blackholed flows once everything
//     recovered; the headline invariant is that this is zero.
//
// A second sweep measures the permit-staleness window: how long a revoked
// peer keeps slipping through some edge filter when the revocation races a
// degraded replication plane, as a function of the per-message drop
// probability. Run with arg "smoke" for the CI fast path.

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/faults/fault_injector.h"
#include "src/sim/flow_sim.h"
#include "src/sim/shard_executor.h"
#include "src/vnet/builder.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

// Set in main(); all JSON lines flow through it into BENCH_resilience.json.
BenchJsonWriter* g_json = nullptr;

struct StormConfig {
  uint64_t storm_seed = 7;
  size_t event_count = 100;
  SimDuration window = SimDuration::Seconds(20);
  double rps = 80.0;
  SimDuration workload_span = SimDuration::Seconds(25);
};

// Flat permit-everyone app: the resilience experiment exercises recovery,
// not the security matrix.
std::map<uint64_t, IpAddress> DeployDeclarativeApp(DeclarativeCloud& cloud,
                                                   const Fig1World& fig) {
  std::map<uint64_t, IpAddress> eip;
  std::vector<InstanceId> all = fig.AllInstances();
  for (InstanceId id : all) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  for (InstanceId dst : all) {
    std::vector<PermitEntry> permits;
    for (InstanceId src : all) {
      if (src != dst) {
        PermitEntry e;
        e.source = IpPrefix::Host(eip[src.value()]);
        permits.push_back(e);
      }
    }
    (void)cloud.SetPermitList(eip[dst.value()], permits);
  }
  return eip;
}

StormParams Fig1Storm(const Fig1World& fig, const StormConfig& cfg) {
  StormParams p;
  p.event_count = cfg.event_count;
  p.window = cfg.window;
  p.min_duration = SimDuration::Millis(100);
  p.max_duration = SimDuration::Seconds(2);
  const Topology& topo = fig.world->topology();
  for (size_t i = 0; i < topo.link_count(); ++i) {
    LinkId id(i + 1);
    LinkClass cls = topo.link(id).cls;
    if (cls == LinkClass::kBackbone || cls == LinkClass::kPublicInternet) {
      p.links.push_back(id);
    }
  }
  for (InstanceId id : fig.spark) {
    p.instances.push_back(id);
  }
  for (InstanceId id : fig.database) {
    p.instances.push_back(id);
  }
  p.gateways = {fig.world->region(fig.a_us_east).edge_node,
                fig.world->region(fig.b_us_east).edge_node};
  return p;
}

// threads == 0 runs the classic single-queue FlowSim; threads >= 1 drives the
// same storm through a ShardExecutor with that many workers. The executor's
// determinism contract means the storm outcome (blackhole/abort counters,
// workload stats) is identical across thread counts — only wall_ms moves.
void RunStorm(bool declarative, const StormConfig& cfg, int threads = 0) {
  Fig1World fig = BuildFig1World();
  CloudWorld& world = *fig.world;
  EventQueue queue;
  std::unique_ptr<FlowSim> plain_sim;
  std::unique_ptr<ShardExecutor> exec;
  if (threads >= 1) {
    ShardExecutor::Options opts;
    opts.num_threads = threads;
    exec = std::make_unique<ShardExecutor>(queue, world.topology(), opts);
  } else {
    plain_sim = std::make_unique<FlowSim>(queue, world.topology());
  }
  FlowControlSurface& sim =
      exec ? static_cast<FlowControlSurface&>(*exec)
           : static_cast<FlowControlSurface&>(*plain_sim);
  MetricRegistry metrics;

  ConfigLedger ledger;
  std::unique_ptr<BaselineNetwork> baseline;
  std::unique_ptr<DeclarativeCloud> decl;
  std::map<uint64_t, IpAddress> eip;
  ConnectorFn connector;
  FaultHooks hooks;
  if (declarative) {
    decl = std::make_unique<DeclarativeCloud>(world, ledger);
    eip = DeployDeclarativeApp(*decl, fig);
    DeclarativeCloud* cloud = decl.get();
    auto* eips = &eip;
    connector = [cloud, eips](InstanceId src, InstanceId dst) {
      ResolvedRoute route;
      auto it = eips->find(dst.value());
      if (it == eips->end()) {
        route.deny_stage = DenyStage("no-eip");
        return route;
      }
      auto d = cloud->Evaluate(src, it->second, 443, Protocol::kTcp);
      if (!d.ok() || !d->delivered) {
        route.deny_stage = DenyStage(
            d.ok() ? (d->drop_stage.empty() ? "denied" : d->drop_stage)
                   : "instance-down");
        return route;
      }
      route.allowed = true;
      route.src_node = d->src_node;
      route.dst_node = d->dst_node;
      route.policy = d->egress_policy;
      return route;
    };
    hooks.on_inject = [cloud](const FaultSpec& spec) {
      if (spec.kind == FaultKind::kInstanceCrash) {
        cloud->NotifyInstanceDown(spec.instance);
      }
    };
    hooks.on_recover = [cloud](const FaultSpec& spec) {
      if (spec.kind == FaultKind::kInstanceCrash) {
        cloud->NotifyInstanceUp(spec.instance);
      }
    };
  } else {
    baseline = std::make_unique<BaselineNetwork>(world, ledger);
    (void)BuildFig1Baseline(*baseline, fig);
    BaselineNetwork* net = baseline.get();
    // The baseline tenant's control plane reacts to transport faults by
    // re-running route propagation (what a real deployment's BGP holddown
    // expiry triggers). With the incremental engine this is a delta apply;
    // the injector's control_repair_ms histogram records what each
    // reaction cost.
    hooks.on_inject = [net](const FaultSpec& spec) {
      if (spec.kind == FaultKind::kLinkDown ||
          spec.kind == FaultKind::kGatewayRestart) {
        (void)net->PropagateRoutes();
      }
    };
    hooks.on_recover = [net](const FaultSpec& spec) {
      if (spec.kind == FaultKind::kLinkDown ||
          spec.kind == FaultKind::kGatewayRestart) {
        (void)net->PropagateRoutes();
      }
    };
    connector = [net](InstanceId src, InstanceId dst) {
      ResolvedRoute route;
      auto d = net->Evaluate(src, dst, Fig1Baseline::kDbPort, Protocol::kTcp);
      if (!d.ok() || !d->delivered) {
        route.deny_stage = DenyStage(
            d.ok() ? (d->drop_stage.empty() ? "denied" : d->drop_stage)
                   : "instance-down");
        return route;
      }
      route.allowed = true;
      route.src_node = d->src_node;
      route.dst_node = d->dst_node;
      route.policy = d->egress_policy;
      return route;
    };
  }

  WorkloadParams wparams;
  wparams.seed = 17;
  wparams.max_retries = 6;
  wparams.mean_response_bytes = 128 * 1024;
  RequestWorkload workload(queue, sim, world, wparams);
  size_t pattern = workload.AddPattern("spark->db", fig.spark, fig.database,
                                       cfg.rps, connector);
  workload.Start(cfg.workload_span);

  FaultInjector injector(queue, world.topology(), sim, &world, metrics,
                         std::move(hooks));
  injector.Schedule(FaultSchedule::Storm(cfg.storm_seed, Fig1Storm(fig, cfg)));
  auto t0 = std::chrono::steady_clock::now();
  if (exec) {
    exec->RunAll();
  } else {
    queue.RunAll();
  }
  auto t1 = std::chrono::steady_clock::now();
  double wall_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;

  double reconv_sum = 0;
  double reconv_max = 0;
  uint64_t reconv_count = 0;
  double repair_sum = 0;
  double repair_max = 0;
  uint64_t repair_count = 0;
  for (FaultKind kind :
       {FaultKind::kLinkDown, FaultKind::kInstanceCrash,
        FaultKind::kGatewayRestart, FaultKind::kControlPlaneDegrade}) {
    const Histogram& h = injector.reconverge_ms(kind);
    if (h.count() > 0) {
      reconv_sum += h.sum();
      reconv_count += h.count();
      reconv_max = std::max(reconv_max, h.max());
    }
    const Histogram& r = injector.control_repair_ms(kind);
    if (r.count() > 0) {
      repair_sum += r.sum();
      repair_count += r.count();
      repair_max = std::max(repair_max, r.max());
    }
  }

  const PatternStats& stats = workload.stats(pattern);
  g_json->Recordf(
      "{\"bench\":\"resilience\",\"world\":\"%s\",\"storm_seed\":%llu,"
      "\"threads\":%d,\"hw_threads\":%u,\"wall_ms\":%.1f,"
      "\"fault_events\":%zu,"
      "\"injected\":%llu,\"reconverged\":%llu,\"unconverged\":%llu,"
      "\"reconverge_ms_mean\":%.2f,\"reconverge_ms_max\":%.2f,"
      "\"control_repair_events\":%llu,"
      "\"control_repair_ms_mean\":%.4f,\"control_repair_ms_max\":%.4f,"
      "\"bytes_blackholed\":%.0f,\"flows_blackholed\":%llu,"
      "\"flows_aborted\":%llu,"
      "\"attempted\":%llu,\"completed\":%llu,\"denied\":%llu,"
      "\"retries\":%llu,\"gave_up\":%llu,"
      "\"latency_ms_p50\":%.2f,\"latency_ms_p99\":%.2f,"
      "\"stalled_after\":%zu}",
      declarative ? "declarative" : "baseline",
      static_cast<unsigned long long>(cfg.storm_seed), threads,
      std::thread::hardware_concurrency(), wall_ms, cfg.event_count,
      static_cast<unsigned long long>(injector.faults_injected()),
      static_cast<unsigned long long>(injector.faults_reconverged()),
      static_cast<unsigned long long>(injector.faults_unconverged()),
      reconv_count > 0 ? reconv_sum / static_cast<double>(reconv_count) : 0.0,
      reconv_max, static_cast<unsigned long long>(repair_count),
      repair_count > 0 ? repair_sum / static_cast<double>(repair_count) : 0.0,
      repair_max, sim.bytes_blackholed(),
      static_cast<unsigned long long>(sim.flows_blackholed()),
      static_cast<unsigned long long>(sim.flows_aborted()),
      static_cast<unsigned long long>(stats.attempted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.denied),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.gave_up),
      stats.latency_ms.Quantile(0.5), stats.latency_ms.Quantile(0.99),
      sim.stalled_flow_count());
}

// How long a revoked peer still gets through some edge while replication is
// degraded: revoke `rounds` times under a control-plane degrade fault and
// record the window between the revocation call and the moment no edge
// admits the peer any more.
void RunStaleness(double drop_prob, int rounds) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  EventQueue queue;
  DeclarativeParams dparams;
  dparams.filter.degraded_drop_prob = drop_prob;
  DeclarativeCloud cloud(*tw.world, ledger, &queue, dparams);
  FlowSim sim(queue, tw.world->topology());
  MetricRegistry metrics;

  InstanceId client =
      *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0);
  IpAddress client_eip = *cloud.RequestEip(client);
  InstanceId server =
      *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  IpAddress server_eip = *cloud.RequestEip(server);
  PermitEntry permit;
  permit.source = IpPrefix::Host(client_eip);

  EdgeFilterBank& bank = cloud.provider_filters(tw.provider);
  FaultHooks hooks;
  hooks.set_control_degraded = [&](bool degraded) {
    bank.SetReplicationDegraded(degraded);
  };
  FaultInjector injector(queue, tw.world->topology(), sim, tw.world.get(),
                         metrics, std::move(hooks));
  FaultSpec fault;
  fault.kind = FaultKind::kControlPlaneDegrade;
  fault.duration = SimDuration::Seconds(600);
  injector.InjectNow(fault);

  FiveTuple flow;
  flow.src = client_eip;
  flow.dst = server_eip;
  flow.dst_port = 443;
  flow.proto = Protocol::kTcp;
  auto any_edge_admits = [&] {
    for (size_t e = 0; e < bank.edge_count(); ++e) {
      if (bank.Admits(e, flow)) {
        return true;
      }
    }
    return false;
  };

  // RunUntil (not RunAll) between rounds: draining the queue would also
  // fire the degrade fault's far-future recovery and the whole sweep would
  // measure a healthy control plane. The 5s bound comfortably covers the
  // worst capped retransmit chain.
  struct ProbeState {
    bool recorded = false;
    SimTime revoked_at;
  };
  for (int r = 0; r < rounds; ++r) {
    (void)cloud.SetPermitList(server_eip, {permit});
    queue.RunUntil(queue.now() + SimDuration::Seconds(5));
    auto state = std::make_shared<ProbeState>();
    state->revoked_at = queue.now();
    (void)cloud.SetPermitList(server_eip, {});
    auto probe = std::make_shared<std::function<void()>>();
    *probe = [state, probe, &queue, &injector, &any_edge_admits] {
      if (state->recorded) {
        return;
      }
      if (!any_edge_admits()) {
        state->recorded = true;
        injector.RecordPermitStaleness(queue.now() - state->revoked_at);
        return;
      }
      queue.ScheduleAfter(SimDuration::Millis(1), *probe);
    };
    (*probe)();
    queue.RunUntil(queue.now() + SimDuration::Seconds(5));
    // The probe function captures its own shared_ptr so scheduled copies
    // can reschedule; null the pointee to break that reference cycle.
    *probe = nullptr;
  }
  queue.RunAll();  // drain the degrade recovery so the injector converges

  const Histogram& h = injector.permit_staleness_ms();
  g_json->Recordf(
      "{\"bench\":\"resilience_staleness\",\"drop_prob\":%.2f,"
      "\"revocations\":%d,\"messages_dropped\":%llu,"
      "\"staleness_ms_mean\":%.2f,\"staleness_ms_max\":%.2f}",
      drop_prob, rounds,
      static_cast<unsigned long long>(bank.messages_dropped()), h.mean(),
      h.max());
}

}  // namespace
}  // namespace tenantnet

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  tenantnet::BenchJsonWriter json("resilience", argc, argv);
  tenantnet::g_json = &json;
  tenantnet::StormConfig cfg;
  if (smoke) {
    cfg.event_count = 40;
    cfg.window = tenantnet::SimDuration::Seconds(8);
    cfg.rps = 40.0;
    cfg.workload_span = tenantnet::SimDuration::Seconds(10);
  }
  std::vector<uint64_t> seeds =
      smoke ? std::vector<uint64_t>{7} : std::vector<uint64_t>{7, 21, 99};
  for (uint64_t seed : seeds) {
    cfg.storm_seed = seed;
    tenantnet::RunStorm(/*declarative=*/false, cfg);
    tenantnet::RunStorm(/*declarative=*/true, cfg);
  }
  // Executor-mode thread sweep: the same declarative storm through
  // ShardExecutor. Counters must come out identical across rows (the
  // determinism contract); wall_ms is the only column allowed to move.
  cfg.storm_seed = seeds[0];
  for (int threads : {1, 2, 4, 8}) {
    tenantnet::RunStorm(/*declarative=*/true, cfg, threads);
  }
  std::vector<double> drop_probs =
      smoke ? std::vector<double>{0.35} : std::vector<double>{0.0, 0.35, 0.9};
  for (double p : drop_probs) {
    tenantnet::RunStaleness(p, smoke ? 3 : 10);
  }
  return 0;
}
