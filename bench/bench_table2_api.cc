// E3 — Table 2: control-plane microbenchmarks of the proposed API.
//
// Measures each verb's cost at realistic control-plane scale (the state
// holds `Endpoints` live EIPs before timing starts), plus the data-plane
// admission check. google-benchmark binary: absolute numbers are
// machine-dependent; the shape to look for is flat-or-logarithmic scaling
// in the endpoint count.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/cloud/presets.h"
#include "src/core/api.h"

namespace tenantnet {
namespace {

// Shared fixture state: a world with `n` endpoints already provisioned.
struct ApiWorld {
  explicit ApiWorld(int64_t n) : tw(BuildTestWorld()), cloud(*tw.world, ledger) {
    for (int64_t i = 0; i < n; ++i) {
      InstanceId vm = *tw.world->LaunchInstance(
          tw.tenant, tw.provider, i % 2 == 0 ? tw.east : tw.west,
          static_cast<int>(i % 2));
      instances.push_back(vm);
      eips.push_back(*cloud.RequestEip(vm));
    }
  }

  TestWorld tw;
  ConfigLedger ledger;
  DeclarativeCloud cloud;
  std::vector<InstanceId> instances;
  std::vector<IpAddress> eips;
};

void BM_RequestReleaseEip(benchmark::State& state) {
  ApiWorld world(state.range(0));
  InstanceId fresh = *world.tw.world->LaunchInstance(
      world.tw.tenant, world.tw.provider, world.tw.east, 0);
  for (auto _ : state) {
    IpAddress eip = *world.cloud.RequestEip(fresh);
    benchmark::DoNotOptimize(eip);
    (void)world.cloud.ReleaseEip(eip);
  }
  state.SetLabel(std::to_string(state.range(0)) + " live endpoints");
}
BENCHMARK(BM_RequestReleaseEip)->Arg(100)->Arg(10000)->Arg(100000);

void BM_BindUnbind(benchmark::State& state) {
  ApiWorld world(state.range(0));
  IpAddress sip = *world.cloud.RequestSip(world.tw.tenant, world.tw.provider);
  // Pre-bind half the endpoints so the SIP has realistic fan-out.
  for (size_t i = 0; i < world.eips.size() / 2; ++i) {
    (void)world.cloud.Bind(world.eips[i], sip);
  }
  IpAddress subject = world.eips.back();
  for (auto _ : state) {
    (void)world.cloud.Bind(subject, sip);
    (void)world.cloud.Unbind(subject, sip);
  }
  state.SetLabel(std::to_string(state.range(0) / 2) + " bound backends");
}
BENCHMARK(BM_BindUnbind)->Arg(100)->Arg(10000);

void BM_SetPermitList(benchmark::State& state) {
  ApiWorld world(1000);
  int64_t entries = state.range(0);
  std::vector<PermitEntry> permits;
  for (int64_t i = 0; i < entries; ++i) {
    PermitEntry e;
    e.source = IpPrefix::Host(world.eips[static_cast<size_t>(i) %
                                         world.eips.size()]);
    permits.push_back(e);
  }
  IpAddress target = world.eips[0];
  for (auto _ : state) {
    auto when = world.cloud.SetPermitList(target, permits);
    benchmark::DoNotOptimize(when);
  }
  state.SetLabel(std::to_string(entries) + " entries, " +
                 std::to_string(
                     world.cloud.provider_filters(world.tw.provider)
                         .edge_count()) +
                 " edges");
}
BENCHMARK(BM_SetPermitList)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_SetQos(benchmark::State& state) {
  ApiWorld world(100);
  double quota = 1e9;
  for (auto _ : state) {
    (void)world.cloud.SetQos(world.tw.tenant, world.tw.east, quota);
    quota += 1;  // defeat any idempotence shortcut
  }
}
BENCHMARK(BM_SetQos);

void BM_DataPlaneAdmission(benchmark::State& state) {
  ApiWorld world(state.range(0));
  // Every endpoint permits endpoint 0.
  for (size_t i = 1; i < world.eips.size(); ++i) {
    PermitEntry e;
    e.source = IpPrefix::Host(world.eips[0]);
    (void)world.cloud.SetPermitList(world.eips[i], {e});
  }
  size_t i = 1;
  for (auto _ : state) {
    auto result = world.cloud.Evaluate(world.instances[0], world.eips[i],
                                       443, Protocol::kTcp);
    benchmark::DoNotOptimize(result);
    i = (i + 1) % world.eips.size();
    if (i == 0) {
      i = 1;
    }
  }
  state.SetLabel(std::to_string(state.range(0)) + " endpoints with lists");
}
BENCHMARK(BM_DataPlaneAdmission)->Arg(100)->Arg(10000);

void BM_SipResolve(benchmark::State& state) {
  ApiWorld world(state.range(0));
  IpAddress sip = *world.cloud.RequestSip(world.tw.tenant, world.tw.provider);
  for (const IpAddress& eip : world.eips) {
    (void)world.cloud.Bind(eip, sip);
  }
  for (auto _ : state) {
    auto backend = world.cloud.sip_lb().Resolve(sip);
    benchmark::DoNotOptimize(backend);
  }
  state.SetLabel(std::to_string(state.range(0)) + " backends");
}
BENCHMARK(BM_SipResolve)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace tenantnet

BENCHMARK_MAIN();
