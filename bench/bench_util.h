// Shared helpers for the experiment binaries: fixed-width table printing so
// every bench emits the paper-style rows EXPERIMENTS.md records.

#ifndef TENANTNET_BENCH_BENCH_UTIL_H_
#define TENANTNET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace tenantnet {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(std::initializer_list<std::string> cells) const {
    size_t i = 0;
    std::string line;
    for (const std::string& cell : cells) {
      int width = i < widths_.size() ? widths_[i] : 16;
      std::string padded = cell;
      if (static_cast<int>(padded.size()) < width) {
        padded.resize(static_cast<size_t>(width), ' ');
      }
      line += padded;
      line += "  ";
      ++i;
    }
    std::printf("%s\n", line.c_str());
  }

  void Rule() const {
    int total = 0;
    for (int w : widths_) {
      total += w + 2;
    }
    std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
  }

 private:
  std::vector<int> widths_;
};

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

inline std::string FmtF(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline void Banner(const char* experiment, const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s  %s\n", experiment, title);
  std::printf("==============================================================\n");
}

}  // namespace tenantnet

#endif  // TENANTNET_BENCH_BENCH_UTIL_H_
