// Shared helpers for the experiment binaries: fixed-width table printing so
// every bench emits the paper-style rows EXPERIMENTS.md records, plus the
// standard machine-readable artifact every JSON-emitting bench writes.

#ifndef TENANTNET_BENCH_BENCH_UTIL_H_
#define TENANTNET_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

namespace tenantnet {

// High-water resident set of this process, in bytes (Linux ru_maxrss is
// KiB). Monotone over the process lifetime, so sweeps that want per-stage
// deltas must record it incrementally. 0 if the kernel refuses.
inline size_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(std::initializer_list<std::string> cells) const {
    size_t i = 0;
    std::string line;
    for (const std::string& cell : cells) {
      int width = i < widths_.size() ? widths_[i] : 16;
      std::string padded = cell;
      if (static_cast<int>(padded.size()) < width) {
        padded.resize(static_cast<size_t>(width), ' ');
      }
      line += padded;
      line += "  ";
      ++i;
    }
    std::printf("%s\n", line.c_str());
  }

  void Rule() const {
    int total = 0;
    for (int w : widths_) {
      total += w + 2;
    }
    std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
  }

 private:
  std::vector<int> widths_;
};

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

inline std::string FmtF(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// Standard bench JSON artifact. Each Record()ed line is one JSON object:
// it is printed to stdout (the JSONL stream EXPERIMENTS.md greps) and
// buffered; the destructor writes all lines as a JSON array to
// BENCH_<name>.json in the working directory (run_experiments.sh runs from
// the repo root) or wherever `--json_out=<path>` points. CI uploads these
// artifacts and diffs them against checked-in baselines.
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string name, int argc = 0, char** argv = nullptr)
      : path_("BENCH_" + name + ".json") {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
        path_ = argv[i] + 11;
      }
    }
  }

  ~BenchJsonWriter() {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < lines_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", lines_[i].c_str(),
                   i + 1 < lines_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
  }

  // `json_object` must be one complete JSON object, no trailing newline.
  void Record(std::string json_object) {
    std::printf("%s\n", json_object.c_str());
    lines_.push_back(std::move(json_object));
  }

  // printf-style convenience for the existing inline-JSON benches.
  void Recordf(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char buf[4096];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    Record(buf);
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<std::string> lines_;
};

inline void Banner(const char* experiment, const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s  %s\n", experiment, title);
  std::printf("==============================================================\n");
}

}  // namespace tenantnet

#endif  // TENANTNET_BENCH_BENCH_UTIL_H_
