// E8a — §4 Availability: provider-managed SIP load balancing under backend
// failure, versus the baseline tenant-configured NLB.
//
// A client stream resolves the service at a steady rate while `kKilled`
// of the backends die at t=10s. In the baseline world the tenant's NLB
// only notices through its health checks (interval x unhealthy-threshold
// of blackout, during which the dead backends keep receiving a share of
// requests and fail them). In the declarative world the provider sees the
// instance die and repairs the SIP binding immediately — availability is
// an obligation below the API, not a tenant-tuned knob.
//
// Output: failed requests and success rate over the run, plus the measured
// blackout window, for several health-check configurations of the
// baseline vs the single (knob-free) declarative row.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/sim/event_queue.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

constexpr int kBackends = 4;
constexpr int kKilled = 2;
constexpr double kRps = 200;
constexpr double kRunSeconds = 30;
constexpr double kKillAt = 10;

struct AvailabilityResult {
  uint64_t total = 0;
  uint64_t failed = 0;
  double blackout_seconds = 0;  // last failure time - kill time
};

// Baseline: NLB with periodic health probes; a request routed to a dead
// backend fails (connection timeout).
AvailabilityResult RunBaseline(SimDuration probe_interval,
                               int unhealthy_threshold) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);
  auto vpc = *net.CreateVpc(tw.tenant, tw.provider, tw.east, "v",
                            *IpPrefix::Parse("10.0.0.0/16"));
  auto subnet = *net.CreateSubnet(vpc, "s", 20, 0, false);
  auto tg = *net.CreateTargetGroup("tg", Protocol::kTcp, 443);
  TargetGroup* group = net.FindTargetGroup(tg);
  group->mutable_health_check().interval = probe_interval;
  group->mutable_health_check().unhealthy_threshold = unhealthy_threshold;

  std::vector<InstanceId> backends;
  for (int i = 0; i < kBackends; ++i) {
    InstanceId id =
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, i % 2);
    backends.push_back(id);
    (void)net.RegisterTarget(tg, id);
  }
  auto lb = *net.CreateLoadBalancer(LbType::kNetwork, "nlb", vpc, {subnet});
  LbListener listener;
  listener.proto = Protocol::kTcp;
  listener.port = 443;
  listener.default_target = tg;
  (void)net.AddLbListener(lb, listener);

  EventQueue queue;
  std::vector<bool> dead(kBackends, false);

  // Health prober: every interval, probe each target; probes against dead
  // instances fail and eventually flip the target unhealthy.
  std::function<void()> probe = [&] {
    for (int i = 0; i < kBackends; ++i) {
      group->RecordProbe(backends[i], !dead[i]);
    }
    queue.ScheduleAfter(probe_interval, probe);
  };
  queue.ScheduleAfter(probe_interval, probe);

  // Kill event.
  queue.ScheduleAt(SimTime::FromSeconds(kKillAt), [&] {
    for (int i = 0; i < kKilled; ++i) {
      dead[i] = true;
    }
  });

  AvailabilityResult result;
  double last_failure = kKillAt;
  FiveTuple flow;
  flow.src = IpAddress::V4(1, 1, 1, 1);
  flow.dst = IpAddress::V4(2, 2, 2, 2);
  flow.dst_port = 443;
  flow.proto = Protocol::kTcp;
  // Deterministic request clock.
  for (double t = 0; t < kRunSeconds; t += 1.0 / kRps) {
    queue.ScheduleAt(SimTime::FromSeconds(t), [&, t] {
      ++result.total;
      auto target = net.ResolveThroughLoadBalancer(lb, flow, nullptr);
      bool ok = target.ok();
      if (ok) {
        for (int i = 0; i < kBackends; ++i) {
          if (backends[i] == *target && dead[i]) {
            ok = false;  // routed to a dead backend: request fails
          }
        }
      }
      if (!ok) {
        ++result.failed;
        last_failure = t;
      }
    });
  }
  // The prober reschedules itself indefinitely; run to the horizon only.
  queue.RunUntil(SimTime::FromSeconds(kRunSeconds + 1));
  result.blackout_seconds = last_failure - kKillAt;
  return result;
}

// Declarative: provider notices the death immediately (its hypervisor
// knows) and the SIP stops resolving to it.
AvailabilityResult RunDeclarative(SimDuration provider_detection) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);
  std::vector<InstanceId> backends;
  std::vector<IpAddress> eips;
  IpAddress sip = *cloud.RequestSip(tw.tenant, tw.provider);
  InstanceId client =
      *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0);
  IpAddress client_eip = *cloud.RequestEip(client);
  for (int i = 0; i < kBackends; ++i) {
    InstanceId id =
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, i % 2);
    backends.push_back(id);
    IpAddress eip = *cloud.RequestEip(id);
    eips.push_back(eip);
    (void)cloud.Bind(eip, sip);
    PermitEntry e;
    e.source = IpPrefix::Host(client_eip);
    (void)cloud.SetPermitList(eip, {e});
  }

  EventQueue queue;
  std::vector<bool> dead(kBackends, false);
  queue.ScheduleAt(SimTime::FromSeconds(kKillAt), [&] {
    for (int i = 0; i < kKilled; ++i) {
      dead[i] = true;
    }
  });
  // The provider's detection lag (hypervisor signal, not tenant probes).
  queue.ScheduleAt(SimTime::FromSeconds(kKillAt) + provider_detection, [&] {
    for (int i = 0; i < kKilled; ++i) {
      cloud.NotifyInstanceDown(backends[i]);
    }
  });

  AvailabilityResult result;
  double last_failure = kKillAt;
  for (double t = 0; t < kRunSeconds; t += 1.0 / kRps) {
    queue.ScheduleAt(SimTime::FromSeconds(t), [&, t] {
      ++result.total;
      auto outcome = cloud.Evaluate(client, sip, 443, Protocol::kTcp);
      bool ok = outcome.ok() && outcome->delivered;
      if (ok) {
        for (int i = 0; i < kBackends; ++i) {
          if (eips[i] == outcome->effective_dst && dead[i]) {
            ok = false;
          }
        }
      }
      if (!ok) {
        ++result.failed;
        last_failure = t;
      }
    });
  }
  queue.RunAll();
  result.blackout_seconds = last_failure - kKillAt;
  return result;
}

void Run() {
  Banner("E8a", "Availability: SIP binding vs tenant-configured NLB");
  std::printf(
      "\n%d of %d backends die at t=%.0fs; %.0f req/s for %.0fs.\n",
      kKilled, kBackends, kKillAt, kRps, kRunSeconds);

  TablePrinter table({34, 10, 10, 12, 14});
  table.Row({"configuration", "requests", "failed", "success %",
             "blackout s"});
  table.Rule();
  struct BaseCfg {
    const char* name;
    SimDuration interval;
    int threshold;
  };
  for (const BaseCfg& cfg :
       {BaseCfg{"baseline NLB (30s probe, 3 fails)", SimDuration::Seconds(30),
                3},
        BaseCfg{"baseline NLB (10s probe, 2 fails)", SimDuration::Seconds(10),
                2},
        BaseCfg{"baseline NLB (5s probe, 2 fails)", SimDuration::Seconds(5),
                2}}) {
    AvailabilityResult r = RunBaseline(cfg.interval, cfg.threshold);
    table.Row({cfg.name, FmtInt(r.total), FmtInt(r.failed),
               FmtF(100.0 * (r.total - r.failed) / r.total, 2),
               FmtF(r.blackout_seconds, 1)});
  }
  AvailabilityResult decl = RunDeclarative(SimDuration::Millis(500));
  table.Row({"declarative SIP (no tenant knobs)", FmtInt(decl.total),
             FmtInt(decl.failed),
             FmtF(100.0 * (decl.total - decl.failed) / decl.total, 2),
             FmtF(decl.blackout_seconds, 1)});

  std::printf(
      "\nReading: the baseline's availability is a function of health-check\n"
      "knobs the tenant must discover and tune per LB; the SIP's failover\n"
      "is the provider's problem and bounded by its internal detection lag.\n");
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Run();
  return 0;
}
