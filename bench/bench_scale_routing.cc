// E4a — §6(i): does flat public EIP addressing scale in the provider's
// routing tables?
//
// Sweeps the endpoint count and reports, for each scale:
//   * flat host routes the provider carries (one per EIP),
//   * trie nodes (memory proxy),
//   * the minimal table after provider-side aggregation (the paper's
//     argument: because tenants cannot pin prefixes, the provider may
//     renumber/aggregate freely — sequential pools collapse massively),
//   * the same after trace-driven churn (fragmentation from releases),
//   * the VPC-world comparison: one route per VPC-prefix instead,
//   * LPM lookup latency at that scale.
//
// Paper claim under test: flat EIPs are tractable *because* aggregation
// freedom stays with the provider; churn erodes but does not destroy it.
//
// A churn-convergence sweep compares from-scratch BGP convergence against
// the incremental engine (retained Adj-RIB-Ins + dirty-prefix queue) for
// single-route churn, and an aggregation-timing record establishes that the
// provider can re-derive its advertised aggregate from 10^6 flat host
// routes in interactive time.
//
// A second sweep measures the baseline world's verdict fast path: cached
// Fabric::Evaluate vs the uncached walk, cold/warm/churn. The baseline's
// verdict cache can only invalidate coarsely (one config epoch covers the
// whole fabric — VPC verdicts depend on route tables, SGs, ACLs and BGP
// state that don't factorize per endpoint), so config churn collapses its
// hit rate; contrast with the per-endpoint epochs of the declarative
// world's permit lists in bench_scale_permits.
//
// Args: `smoke` shrinks the sweeps for CI; `--json_out=<path>` moves the
// JSON artifact (default BENCH_scale_routing.json).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cloud/presets.h"
#include "src/common/rng.h"
#include "src/net/ipam.h"
#include "src/routing/bgp.h"
#include "src/routing/route_table.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

struct ScaleResult {
  uint64_t endpoints;
  uint64_t flat_entries;
  uint64_t trie_nodes;
  uint64_t aggregated;
  uint64_t churned_lifo;        // aggregated table after churn, LIFO reuse
  uint64_t churned_dense;       // ... with lowest-first (dense) reuse
  uint64_t vpc_world_entries;
  double lookup_ns;
};

// Steady-state churn: interleaved releases and allocations around a stable
// population (NOT release-then-realloc pairs, which any reuse policy
// trivially undoes). Returns the aggregated table size afterwards.
uint64_t AggregatedAfterChurn(uint64_t endpoints,
                              HostAllocator::ReusePolicy policy) {
  HostAllocator pool(*IpPrefix::Parse("5.0.0.0/9"), policy);
  RouteTable rib;
  std::vector<IpAddress> live;
  live.reserve(endpoints);
  for (uint64_t i = 0; i < endpoints; ++i) {
    IpAddress eip = *pool.Allocate();
    rib.Install(IpPrefix::Host(eip),
                RouteEntry{NodeId(1 + i % 16), RouteOrigin::kLocal, 0, 0});
    live.push_back(eip);
  }
  Rng rng(17);
  uint64_t churn_ops = endpoints;  // one full population turnover
  for (uint64_t op = 0; op < churn_ops; ++op) {
    // Release a random victim...
    size_t victim = rng.NextU64(live.size());
    (void)rib.Withdraw(IpPrefix::Host(live[victim]));
    (void)pool.Release(live[victim]);
    live[victim] = live.back();
    live.pop_back();
    // ...and independently admit 1 newcomer (population oscillates).
    uint64_t arrivals = rng.NextBool(0.5) ? 2 : 0;
    for (uint64_t a = 0; a < arrivals && live.size() < endpoints; ++a) {
      IpAddress eip = *pool.Allocate();
      rib.Install(IpPrefix::Host(eip),
                  RouteEntry{NodeId(1 + op % 16), RouteOrigin::kLocal, 0, 0});
      live.push_back(eip);
    }
  }
  return AggregatePrefixes(rib.Prefixes()).size();
}

ScaleResult RunScale(uint64_t endpoints) {
  ScaleResult result;
  result.endpoints = endpoints;

  HostAllocator pool(*IpPrefix::Parse("5.0.0.0/9"));
  RouteTable rib;
  std::vector<IpAddress> live;
  live.reserve(endpoints);
  for (uint64_t i = 0; i < endpoints; ++i) {
    IpAddress eip = *pool.Allocate();
    rib.Install(IpPrefix::Host(eip),
                RouteEntry{NodeId(1 + i % 16), RouteOrigin::kLocal, 0, 0});
    live.push_back(eip);
  }
  result.flat_entries = rib.entry_count();
  result.trie_nodes = rib.node_count();
  result.aggregated = AggregatePrefixes(rib.Prefixes()).size();

  result.churned_lifo =
      AggregatedAfterChurn(endpoints, HostAllocator::ReusePolicy::kLifo);
  result.churned_dense = AggregatedAfterChurn(
      endpoints, HostAllocator::ReusePolicy::kLowestFirst);

  // VPC world: tenants pin prefixes; one route per VPC. Assume the survey
  // average of ~50 instances per VPC.
  result.vpc_world_entries = (endpoints + 49) / 50;

  // LPM lookup cost at this table size.
  uint64_t probes = 200000;
  Rng probe_rng(23);
  auto start = std::chrono::steady_clock::now();
  uint64_t hits = 0;
  for (uint64_t i = 0; i < probes; ++i) {
    IpAddress target = live[probe_rng.NextU64(live.size())];
    if (rib.Lookup(target) != nullptr) {
      ++hits;
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(hits);
  result.lookup_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(probes);
  return result;
}

void Run(bool smoke) {
  Banner("E4a", "Scalability: flat EIP routing state vs scale (§6 i)");

  TablePrinter table({10, 12, 12, 12, 13, 13, 12, 12});
  table.Row({"endpoints", "flat routes", "trie nodes", "aggregated",
             "churn(LIFO)", "churn(dense)", "VPC-world", "lookup ns"});
  table.Rule();
  std::vector<uint64_t> sizes =
      smoke ? std::vector<uint64_t>{1000, 10000}
            : std::vector<uint64_t>{1000, 10000, 100000, 500000};
  for (uint64_t n : sizes) {
    ScaleResult r = RunScale(n);
    table.Row({FmtInt(r.endpoints), FmtInt(r.flat_entries),
               FmtInt(r.trie_nodes), FmtInt(r.aggregated),
               FmtInt(r.churned_lifo), FmtInt(r.churned_dense),
               FmtInt(r.vpc_world_entries), FmtF(r.lookup_ns, 1)});
  }
  std::printf(
      "\nReading: the provider carries one host route per EIP internally;\n"
      "at bootstrap the table aggregates to a handful of prefixes. Churn\n"
      "is where the provider's aggregation *freedom* matters: with naive\n"
      "LIFO reuse a population turnover fragments the table badly, while\n"
      "lowest-first (dense) reuse — a choice only the provider can make,\n"
      "and only because tenants cannot pin addresses — keeps it compact.\n"
      "Worst case remains O(live endpoints), i.e. it never blows up; the\n"
      "VPC world's table is smaller but every prefix in it is pinned by a\n"
      "tenant, so the provider has no such lever (and tenants carry the\n"
      "planning cost, E1/E2). Lookup stays O(address bits) regardless.\n");
}

// --- Churn convergence: full vs incremental BGP -----------------------------

// Hub-and-spoke mesh: one hub speaker, `spokes` edge speakers each
// originating an equal share of `total_prefixes`. The shape matches the
// provider control plane at scale — many edge speakers, few transit hubs —
// and is the worst case for from-scratch convergence (every prefix crosses
// the hub every time).
IpPrefix ChurnPrefix(uint64_t i) {
  return *IpPrefix::Create(
      IpAddress::V4(0x0B000000u + (static_cast<uint32_t>(i) << 8)), 24);
}

struct ChurnResult {
  uint64_t prefixes;
  uint64_t speakers;
  double full_ms;
  double incr_op_ms;
  double updates_per_sec;
  double routes_touched_per_op;
  double speedup;
};

ChurnResult RunChurn(uint64_t total_prefixes, uint64_t spokes,
                     uint64_t churn_ops) {
  BgpMesh mesh;
  SpeakerId hub = mesh.AddSpeaker(65000, "hub");
  std::vector<SpeakerId> spoke_ids;
  for (uint64_t s = 0; s < spokes; ++s) {
    spoke_ids.push_back(mesh.AddSpeaker(static_cast<uint32_t>(65001 + s),
                                        "spoke" + std::to_string(s)));
    (void)mesh.AddSession(hub, spoke_ids.back());
  }
  uint64_t per_spoke = total_prefixes / spokes;
  for (uint64_t s = 0; s < spokes; ++s) {
    for (uint64_t j = 0; j < per_spoke; ++j) {
      (void)mesh.Originate(spoke_ids[s], ChurnPrefix(s * per_spoke + j));
    }
  }
  mesh.Converge();
  mesh.TakeDeltas();

  // Cost of one from-scratch convergence on the steady state (what every
  // route change used to pay). Min of 3 runs: the most favorable number
  // for the full rebuild, so the reported speedup is conservative.
  double full_ms = 0;
  for (int run = 0; run < 3; ++run) {
    auto start = std::chrono::steady_clock::now();
    mesh.ConvergeFull();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    mesh.TakeDeltas();
    full_ms = run == 0 ? ms : std::min(full_ms, ms);
  }

  // Incremental churn: withdraw a random route, converge, re-originate it,
  // converge. Each converge+delta-drain is one op.
  Rng rng(41);
  uint64_t touched = 0;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t op = 0; op < churn_ops; ++op) {
    uint64_t s = rng.NextU64(spokes);
    IpPrefix p = ChurnPrefix(s * per_spoke + rng.NextU64(per_spoke));
    (void)mesh.WithdrawOrigin(spoke_ids[s], p);
    touched += mesh.Converge().prefixes_processed;
    mesh.TakeDeltas();
    (void)mesh.Originate(spoke_ids[s], p);
    touched += mesh.Converge().prefixes_processed;
    mesh.TakeDeltas();
  }
  double churn_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  uint64_t ops = churn_ops * 2;

  ChurnResult r;
  r.prefixes = per_spoke * spokes;
  r.speakers = spokes + 1;
  r.full_ms = full_ms;
  r.incr_op_ms = churn_ms / static_cast<double>(ops);
  r.updates_per_sec = static_cast<double>(ops) / (churn_ms / 1e3);
  r.routes_touched_per_op =
      static_cast<double>(touched) / static_cast<double>(ops);
  r.speedup = r.full_ms / r.incr_op_ms;
  return r;
}

void ChurnSweep(BenchJsonWriter& json, bool smoke) {
  std::printf(
      "\nChurn convergence: from-scratch vs incremental (delta BGP engine)\n");
  TablePrinter table({10, 9, 11, 12, 13, 13, 10});
  table.Row({"prefixes", "speakers", "full ms", "incr op ms", "updates/s",
             "touched/op", "speedup"});
  table.Rule();
  struct Size {
    uint64_t prefixes, spokes, ops;
  };
  std::vector<Size> sizes = smoke
                                ? std::vector<Size>{{5000, 8, 100}}
                                : std::vector<Size>{{5000, 8, 200},
                                                    {20000, 16, 200},
                                                    {100000, 16, 200}};
  for (const Size& size : sizes) {
    ChurnResult r = RunChurn(size.prefixes, size.spokes, size.ops);
    table.Row({FmtInt(r.prefixes), FmtInt(r.speakers), FmtF(r.full_ms, 2),
               FmtF(r.incr_op_ms, 4), FmtF(r.updates_per_sec, 0),
               FmtF(r.routes_touched_per_op, 1), FmtF(r.speedup, 0)});
    json.Recordf(
        "{\"bench\":\"routing_churn\",\"prefixes\":%llu,\"speakers\":%llu,"
        "\"full_ms\":%.3f,\"incr_op_ms\":%.5f,\"updates_per_sec\":%.0f,"
        "\"routes_touched_per_op\":%.1f,\"speedup_incremental\":%.1f}",
        static_cast<unsigned long long>(r.prefixes),
        static_cast<unsigned long long>(r.speakers), r.full_ms, r.incr_op_ms,
        r.updates_per_sec, r.routes_touched_per_op, r.speedup);
  }
  std::printf(
      "\nReading: a single-route change used to cost a from-scratch mesh\n"
      "convergence — O(total prefixes x sessions). The event-driven engine\n"
      "re-selects only the dirty prefix from retained Adj-RIB-Ins and\n"
      "advertises only the changed best route, so the per-op cost tracks\n"
      "touched/op (a handful of routes) instead of the table size, and the\n"
      "gap widens linearly with scale.\n");
}

// Provider-side aggregation timing at full E4a scale: the provider must be
// able to re-derive its advertised aggregate from 1M flat host routes
// faster than BGP dampening timescales for the paper's argument to hold.
void AggregateTiming(BenchJsonWriter& json, bool smoke) {
  uint64_t n = smoke ? 200000 : 1000000;
  HostAllocator pool(*IpPrefix::Parse("5.0.0.0/9"));
  std::vector<IpPrefix> hosts;
  hosts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    hosts.push_back(IpPrefix::Host(*pool.Allocate()));
  }
  auto start = std::chrono::steady_clock::now();
  auto out = AggregatePrefixes(hosts);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  std::printf("\nAggregation timing: %llu host routes -> %llu prefixes in "
              "%.1f ms\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(out.size()), ms);
  json.Recordf(
      "{\"bench\":\"routing_aggregate_timing\",\"prefixes\":%llu,"
      "\"aggregate_ms\":%.2f,\"output_prefixes\":%llu}",
      static_cast<unsigned long long>(n), ms,
      static_cast<unsigned long long>(out.size()));
}

// --- Baseline verdict fast path ---------------------------------------------

// Wall-clock evaluations/sec of `verdict(a, b, port)` over `passes` passes
// of the query set; the delivered count is the equivalence checksum.
template <typename Fn>
std::pair<double, uint64_t> MeasureEvals(
    const std::vector<std::array<uint64_t, 3>>& queries, int passes,
    Fn&& verdict) {
  uint64_t delivered = 0;
  auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    for (const auto& q : queries) {
      delivered += verdict(q[0], q[1], static_cast<uint16_t>(q[2])) ? 1 : 0;
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  double seconds =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      1e9;
  double vps = static_cast<double>(queries.size()) *
               static_cast<double>(passes) / seconds;
  return {vps, delivered / static_cast<uint64_t>(passes)};
}

void BaselineVerdictSweep(BenchJsonWriter& json, bool smoke) {
  std::printf(
      "\nBaseline verdict fast path: cached Evaluate vs the uncached walk\n");
  TablePrinter table({10, 12, 12, 12, 12, 10, 10});
  table.Row({"instances", "uncached e/s", "cold", "warm", "churn",
             "warm hit%", "churn hit%"});
  table.Rule();

  const size_t kInstances = smoke ? 200 : 1000;
  const size_t kQueries = smoke ? 8192 : 32768;
  const int kWarmPasses = smoke ? 4 : 6;

  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);

  auto vpc = *net.CreateVpc(tw.tenant, tw.provider, tw.east, "v1",
                            *IpPrefix::Parse("10.0.0.0/16"));
  auto subnet = *net.CreateSubnet(vpc, "s1", 20, 0, false);
  auto sg = *net.CreateSecurityGroup(vpc, "sg");
  SgRule ingress;
  ingress.direction = TrafficDirection::kIngress;
  ingress.proto = Protocol::kTcp;
  ingress.ports = PortRange::Single(443);
  ingress.peer = *IpPrefix::Parse("10.0.0.0/16");
  (void)net.AddSgRule(sg, ingress);
  auto acl = *net.CreateNetworkAcl(vpc, "acl");
  for (TrafficDirection dir :
       {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
    AclEntry entry;
    entry.rule_number = 100;
    entry.allow = true;
    entry.direction = dir;
    entry.match = FlowMatch::Any();
    (void)net.AddAclEntry(acl, entry);
  }
  (void)net.AssociateAcl(subnet, acl);

  std::vector<InstanceId> instances;
  instances.reserve(kInstances);
  for (size_t i = 0; i < kInstances; ++i) {
    auto inst = *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
    (void)net.AttachInstance(inst, subnet, {sg}, false);
    instances.push_back(inst);
  }

  // Queries: random pairs; port 443 delivers, 80 dies at sg-ingress (both
  // verdicts are cacheable — denials are verdicts too).
  Rng rng(7);
  std::vector<std::array<uint64_t, 3>> queries;
  queries.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    uint64_t a = rng.NextU64(kInstances);
    uint64_t b = rng.NextU64(kInstances);
    queries.push_back({a, b, rng.NextBool(0.75) ? 443u : 80u});
  }

  auto uncached_eval = [&](uint64_t a, uint64_t b, uint16_t port) {
    auto r = net.EvaluateUncached(instances[a], instances[b], port,
                                  Protocol::kTcp);
    return r.ok() && r->delivered;
  };
  auto cached_eval = [&](uint64_t a, uint64_t b, uint16_t port) {
    auto r = net.Evaluate(instances[a], instances[b], port, Protocol::kTcp);
    return r.ok() && r->delivered;
  };

  auto [uncached_vps, uncached_delivered] =
      MeasureEvals(queries, 1, uncached_eval);

  net.ClearVerdictCaches();
  net.ResetVerdictCacheStats();
  auto [cold_vps, cold_delivered] = MeasureEvals(queries, 1, cached_eval);

  net.ResetVerdictCacheStats();
  auto [warm_vps, warm_delivered] =
      MeasureEvals(queries, kWarmPasses, cached_eval);
  double warm_hit = net.evaluate_cache_stats().hit_rate();

  if (uncached_delivered != cold_delivered ||
      uncached_delivered != warm_delivered) {
    std::printf("VERDICT MISMATCH: uncached=%llu cold=%llu warm=%llu\n",
                static_cast<unsigned long long>(uncached_delivered),
                static_cast<unsigned long long>(cold_delivered),
                static_cast<unsigned long long>(warm_delivered));
    return;
  }

  // Churn: every 1024 evaluations, one unrelated route-table mutation. The
  // baseline can only invalidate coarsely — one mutation anywhere discards
  // every cached verdict — so the hit rate collapses and throughput falls
  // back toward the uncached walk. This coarseness is the measurement.
  auto rt = *net.CreateRouteTable(vpc, "churn-rt");
  net.ResetVerdictCacheStats();
  uint64_t churn_counter = 0;
  bool route_present = false;
  auto [churn_vps, churn_delivered] = MeasureEvals(
      queries, kWarmPasses, [&](uint64_t a, uint64_t b, uint16_t port) {
        if ((++churn_counter & 1023) == 0) {
          if (route_present) {
            (void)net.RemoveRoute(rt, *IpPrefix::Parse("198.18.0.0/24"));
          } else {
            (void)net.AddRoute(rt, *IpPrefix::Parse("198.18.0.0/24"),
                               VpcRouteTarget{});
          }
          route_present = !route_present;
        }
        return cached_eval(a, b, port);
      });
  (void)churn_delivered;  // unrelated route: verdicts unchanged
  double churn_hit = net.evaluate_cache_stats().hit_rate();

  table.Row({FmtInt(kInstances), FmtF(uncached_vps, 0), FmtF(cold_vps, 0),
             FmtF(warm_vps, 0), FmtF(churn_vps, 0),
             FmtF(warm_hit * 100.0, 1), FmtF(churn_hit * 100.0, 1)});
  json.Recordf(
      "{\"bench\":\"scale_routing_verdict\",\"instances\":%llu,"
      "\"uncached_vps\":%.0f,\"cold_vps\":%.0f,\"warm_vps\":%.0f,"
      "\"churn_vps\":%.0f,\"warm_hit_rate\":%.4f,\"churn_hit_rate\":%.4f,"
      "\"speedup_warm_vs_uncached\":%.2f}",
      static_cast<unsigned long long>(kInstances), uncached_vps, cold_vps,
      warm_vps, churn_vps, warm_hit, churn_hit, warm_vps / uncached_vps);
  std::printf(
      "\nWarm verdicts skip the VPC walk entirely; but any config mutation\n"
      "invalidates the whole cache (baseline verdicts depend on coupled\n"
      "global state — routes, SGs, ACLs, BGP — that does not factorize per\n"
      "endpoint), so churn drags throughput back toward the uncached walk.\n"
      "The declarative world's per-endpoint epochs keep their hit rate\n"
      "under the same churn (bench_scale_permits).\n");
}

}  // namespace
}  // namespace tenantnet

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  tenantnet::BenchJsonWriter json("scale_routing", argc, argv);
  tenantnet::Run(smoke);
  tenantnet::ChurnSweep(json, smoke);
  tenantnet::AggregateTiming(json, smoke);
  tenantnet::BaselineVerdictSweep(json, smoke);
  return 0;
}
