// E4a — §6(i): does flat public EIP addressing scale in the provider's
// routing tables?
//
// Sweeps the endpoint count and reports, for each scale:
//   * flat host routes the provider carries (one per EIP),
//   * trie nodes (memory proxy),
//   * the minimal table after provider-side aggregation (the paper's
//     argument: because tenants cannot pin prefixes, the provider may
//     renumber/aggregate freely — sequential pools collapse massively),
//   * the same after trace-driven churn (fragmentation from releases),
//   * the VPC-world comparison: one route per VPC-prefix instead,
//   * LPM lookup latency at that scale.
//
// Paper claim under test: flat EIPs are tractable *because* aggregation
// freedom stays with the provider; churn erodes but does not destroy it.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/net/ipam.h"
#include "src/routing/route_table.h"

namespace tenantnet {
namespace {

struct ScaleResult {
  uint64_t endpoints;
  uint64_t flat_entries;
  uint64_t trie_nodes;
  uint64_t aggregated;
  uint64_t churned_lifo;        // aggregated table after churn, LIFO reuse
  uint64_t churned_dense;       // ... with lowest-first (dense) reuse
  uint64_t vpc_world_entries;
  double lookup_ns;
};

// Steady-state churn: interleaved releases and allocations around a stable
// population (NOT release-then-realloc pairs, which any reuse policy
// trivially undoes). Returns the aggregated table size afterwards.
uint64_t AggregatedAfterChurn(uint64_t endpoints,
                              HostAllocator::ReusePolicy policy) {
  HostAllocator pool(*IpPrefix::Parse("5.0.0.0/9"), policy);
  RouteTable rib;
  std::vector<IpAddress> live;
  live.reserve(endpoints);
  for (uint64_t i = 0; i < endpoints; ++i) {
    IpAddress eip = *pool.Allocate();
    rib.Install(IpPrefix::Host(eip),
                RouteEntry{NodeId(1 + i % 16), RouteOrigin::kLocal, 0, ""});
    live.push_back(eip);
  }
  Rng rng(17);
  uint64_t churn_ops = endpoints;  // one full population turnover
  for (uint64_t op = 0; op < churn_ops; ++op) {
    // Release a random victim...
    size_t victim = rng.NextU64(live.size());
    (void)rib.Withdraw(IpPrefix::Host(live[victim]));
    (void)pool.Release(live[victim]);
    live[victim] = live.back();
    live.pop_back();
    // ...and independently admit 1 newcomer (population oscillates).
    uint64_t arrivals = rng.NextBool(0.5) ? 2 : 0;
    for (uint64_t a = 0; a < arrivals && live.size() < endpoints; ++a) {
      IpAddress eip = *pool.Allocate();
      rib.Install(IpPrefix::Host(eip),
                  RouteEntry{NodeId(1 + op % 16), RouteOrigin::kLocal, 0, ""});
      live.push_back(eip);
    }
  }
  return AggregatePrefixes(rib.Prefixes()).size();
}

ScaleResult RunScale(uint64_t endpoints) {
  ScaleResult result;
  result.endpoints = endpoints;

  HostAllocator pool(*IpPrefix::Parse("5.0.0.0/9"));
  RouteTable rib;
  std::vector<IpAddress> live;
  live.reserve(endpoints);
  for (uint64_t i = 0; i < endpoints; ++i) {
    IpAddress eip = *pool.Allocate();
    rib.Install(IpPrefix::Host(eip),
                RouteEntry{NodeId(1 + i % 16), RouteOrigin::kLocal, 0, ""});
    live.push_back(eip);
  }
  result.flat_entries = rib.entry_count();
  result.trie_nodes = rib.node_count();
  result.aggregated = AggregatePrefixes(rib.Prefixes()).size();

  result.churned_lifo =
      AggregatedAfterChurn(endpoints, HostAllocator::ReusePolicy::kLifo);
  result.churned_dense = AggregatedAfterChurn(
      endpoints, HostAllocator::ReusePolicy::kLowestFirst);

  // VPC world: tenants pin prefixes; one route per VPC. Assume the survey
  // average of ~50 instances per VPC.
  result.vpc_world_entries = (endpoints + 49) / 50;

  // LPM lookup cost at this table size.
  uint64_t probes = 200000;
  Rng probe_rng(23);
  auto start = std::chrono::steady_clock::now();
  uint64_t hits = 0;
  for (uint64_t i = 0; i < probes; ++i) {
    IpAddress target = live[probe_rng.NextU64(live.size())];
    if (rib.Lookup(target) != nullptr) {
      ++hits;
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(hits);
  result.lookup_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(probes);
  return result;
}

void Run() {
  Banner("E4a", "Scalability: flat EIP routing state vs scale (§6 i)");

  TablePrinter table({10, 12, 12, 12, 13, 13, 12, 12});
  table.Row({"endpoints", "flat routes", "trie nodes", "aggregated",
             "churn(LIFO)", "churn(dense)", "VPC-world", "lookup ns"});
  table.Rule();
  for (uint64_t n : {1000u, 10000u, 100000u, 500000u}) {
    ScaleResult r = RunScale(n);
    table.Row({FmtInt(r.endpoints), FmtInt(r.flat_entries),
               FmtInt(r.trie_nodes), FmtInt(r.aggregated),
               FmtInt(r.churned_lifo), FmtInt(r.churned_dense),
               FmtInt(r.vpc_world_entries), FmtF(r.lookup_ns, 1)});
  }
  std::printf(
      "\nReading: the provider carries one host route per EIP internally;\n"
      "at bootstrap the table aggregates to a handful of prefixes. Churn\n"
      "is where the provider's aggregation *freedom* matters: with naive\n"
      "LIFO reuse a population turnover fragments the table badly, while\n"
      "lowest-first (dense) reuse — a choice only the provider can make,\n"
      "and only because tenants cannot pin addresses — keeps it compact.\n"
      "Worst case remains O(live endpoints), i.e. it never blows up; the\n"
      "VPC world's table is smaller but every prefix in it is pinned by a\n"
      "tenant, so the provider has no such lever (and tenants carry the\n"
      "planning cost, E1/E2). Lookup stays O(address bits) regardless.\n");
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Run();
  return 0;
}
