// E4c — §6(i): can egress bandwidth quotas be scalably enforced?
//
// Sweeps enforcement-point count and tenant count and reports:
//   * accuracy — bits admitted vs the quota-seconds promised, under
//     offered load of 4x the quota,
//   * convergence — epochs until shares track a demand shift,
//   * coordination cost — control messages per second of simulated time.
//
// The distributed-rate-limiting literature the paper cites (DRL, EyeQ,
// BwE) says this should work; the numbers below show our epoch-based
// re-division holds accuracy within the bucket-burst slack.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/qos.h"

namespace tenantnet {
namespace {

struct QuotaResult {
  double accuracy;          // admitted / promised (1.0 = exact)
  uint64_t shift_epochs;    // epochs to re-track a demand shift
  double messages_per_sec;
};

QuotaResult RunQuota(size_t points, size_t tenants) {
  QuotaParams params;
  params.epoch = SimDuration::Millis(100);
  params.ewma_alpha = 0.4;
  EgressQuotaManager qos(params);
  RegionId region(1);
  for (size_t p = 0; p < points; ++p) {
    qos.RegisterPoint(region, "pt" + std::to_string(p));
  }
  const double quota = 1e9;
  SimTime now = SimTime::Epoch();
  for (size_t t = 1; t <= tenants; ++t) {
    (void)qos.SetQuota(TenantId(t), region, quota, now);
  }

  // Phase 1: all tenants offer 4x quota spread evenly; measure accuracy
  // over 2 simulated seconds.
  const double per_tick_bits = 4 * quota * 0.001 / static_cast<double>(points);
  for (int tick = 0; tick < 2000; ++tick) {
    now += SimDuration::Millis(1);
    for (size_t t = 1; t <= tenants; ++t) {
      for (size_t p = 0; p < points; ++p) {
        qos.TryConsume(TenantId(t), region, p, per_tick_bits, now);
      }
    }
    if (tick % 100 == 99) {
      qos.RunEpoch(now);
    }
  }
  double admitted = 0;
  for (size_t t = 1; t <= tenants; ++t) {
    admitted += qos.AdmittedBits(TenantId(t), region);
  }
  double promised = quota * 2.0 * static_cast<double>(tenants);
  QuotaResult result;
  result.accuracy = admitted / promised;

  // Phase 2: shift tenant 1's demand entirely to point 0; count epochs
  // until point 0 holds >90% of the quota.
  uint64_t epochs = 0;
  for (; epochs < 100; ++epochs) {
    for (int tick = 0; tick < 100; ++tick) {
      now += SimDuration::Millis(1);
      qos.TryConsume(TenantId(1), region, 0, 4 * quota * 0.001, now);
    }
    qos.RunEpoch(now);
    if (*qos.ShareOf(TenantId(1), region, 0) > 0.9 * quota) {
      break;
    }
  }
  result.shift_epochs = epochs + 1;

  double sim_seconds = now.ToSeconds();
  result.messages_per_sec =
      static_cast<double>(qos.coordination_messages()) / sim_seconds;
  return result;
}

void Run() {
  Banner("E4c", "Scalability: distributed egress-quota enforcement (§6 i)");

  TablePrinter table({8, 9, 12, 14, 14});
  table.Row({"points", "tenants", "accuracy", "shift epochs", "msgs/sec"});
  table.Rule();
  for (size_t points : {2u, 8u, 32u}) {
    for (size_t tenants : {1u, 16u, 64u}) {
      QuotaResult r = RunQuota(points, tenants);
      table.Row({FmtInt(points), FmtInt(tenants), FmtF(r.accuracy, 3),
                 FmtInt(r.shift_epochs), FmtF(r.messages_per_sec, 0)});
    }
  }
  std::printf(
      "\nReading: accuracy stays ~1.0 (within bucket-burst slack) at every\n"
      "scale; a full demand shift re-tracks within a handful of 100ms\n"
      "epochs; coordination traffic is 2 messages/point/epoch/tenant —\n"
      "linear, small, and independent of data-plane rate. Quotas are\n"
      "scalably enforceable, supporting the §4 QoS design.\n");
}

}  // namespace
}  // namespace tenantnet

int main() {
  tenantnet::Run();
  return 0;
}
