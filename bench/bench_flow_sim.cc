// FlowSim churn microbenchmark — the cost model behind every fluid-plane
// experiment (E4c, E5, E8a/E8b, soak).
//
// Churns N concurrent flows under two path regimes and reports JSON:
//   * disjoint     — N/10 independent 2-link chains: congestion components
//                    stay ~10 flows, so scoped reallocation touches a tiny
//                    slice of the live set per event.
//   * overlapping  — 32 pod links feeding one core link: a single giant
//                    component, the worst case where scoped == global.
//   * batch        — quota-style burst: re-cap 10% of flows, comparing one
//                    reallocation per change vs one per BatchUpdate scope.
//
// Metrics per run: events/sec (starts+cancels+cap changes+completions over
// wall time), reallocation_count, mean flows-touched-per-realloc, and the
// reallocation wall-time histogram mean. Run with arg "small" for the CI
// smoke (N=1e3 only).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/sim/flow_sim.h"
#include "src/sim/shard_executor.h"

namespace tenantnet {
namespace {

// Set in main(); all JSON lines flow through it into BENCH_flow_sim.json.
BenchJsonWriter* g_json = nullptr;

struct ChurnWorld {
  EventQueue queue;
  Topology topo;
  std::vector<std::vector<LinkId>> paths;  // candidate paths for new flows
};

// G disjoint a -1G-> b -0.5G-> c chains; flows in group g share only group
// g's links, so components never span groups.
void BuildDisjoint(ChurnWorld& w, size_t groups) {
  for (size_t g = 0; g < groups; ++g) {
    NodeId a = w.topo.AddNode({"a", NodeKind::kHostAggregate, "x"});
    NodeId b = w.topo.AddNode({"b", NodeKind::kBackboneRouter, "x"});
    NodeId c = w.topo.AddNode({"c", NodeKind::kHostAggregate, "x"});
    LinkId ab = w.topo.AddLink({a, b, 1e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
    LinkId bc = w.topo.AddLink({b, c, 0.5e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
    w.paths.push_back({ab, bc});
  }
}

// 32 pod uplinks into one shared core link: every flow shares the core, so
// all live flows form one congestion component.
void BuildOverlapping(ChurnWorld& w, size_t pods) {
  NodeId core_a = w.topo.AddNode({"ca", NodeKind::kBackboneRouter, "x"});
  NodeId core_b = w.topo.AddNode({"cb", NodeKind::kBackboneRouter, "x"});
  LinkId core = w.topo.AddLink({core_a, core_b, 40e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0, LinkClass::kBackbone});
  for (size_t p = 0; p < pods; ++p) {
    NodeId pod = w.topo.AddNode({"p", NodeKind::kHostAggregate, "x"});
    LinkId up = w.topo.AddLink({pod, core_a, 1e9, SimDuration::Millis(1),
                                SimDuration::Zero(), 0,
                                LinkClass::kDatacenter});
    w.paths.push_back({up, core});
  }
}

// Pathological depth for the bottleneck decomposition: 64 lanes with
// *staggered* capacities all feeding one saturated trunk. Low lanes freeze
// at ascending levels below the trunk's fair level, high-lane flows bind at
// the trunk, and the staggered per-flow caps (see RunChurn) interleave cap
// freezes between the link levels — so every fill walks a deep chain of
// distinct bottleneck levels and trunk-side churn must replay many
// lane-bound externals. This is the worst case for the incremental
// re-leveler; it is measured here rather than assumed.
void BuildBottleneckChain(ChurnWorld& w, size_t lanes) {
  NodeId trunk_a = w.topo.AddNode({"ta", NodeKind::kBackboneRouter, "x"});
  NodeId trunk_b = w.topo.AddNode({"tb", NodeKind::kBackboneRouter, "x"});
  LinkId trunk = w.topo.AddLink({trunk_a, trunk_b, 20e9,
                                 SimDuration::Millis(1), SimDuration::Zero(),
                                 0, LinkClass::kBackbone});
  for (size_t l = 0; l < lanes; ++l) {
    NodeId lane = w.topo.AddNode({"l", NodeKind::kHostAggregate, "x"});
    LinkId up = w.topo.AddLink({lane, trunk_a,
                                100e6 + 25e6 * static_cast<double>(l),
                                SimDuration::Millis(1), SimDuration::Zero(),
                                0, LinkClass::kDatacenter});
    w.paths.push_back({up, trunk});
  }
}

// TN_FLOWSIM_SCRATCH=1 runs the churn scenarios with the incremental
// relevel disabled — every reallocation goes through the from-scratch
// component fill. Same harness, same event stream: the honest before/after
// comparison for the bottleneck-structured allocator (ancestor binaries ran
// too few churn events for their wall-clock numbers to mean anything).
bool ScratchMode() {
  const char* v = std::getenv("TN_FLOWSIM_SCRATCH");
  return v != nullptr && v[0] == '1';
}

void EmitJson(const char* scenario, size_t flows, uint64_t events,
              double wall_seconds, const FlowSim& sim) {
  g_json->Recordf(
      "{\"bench\":\"flow_sim_churn\",\"scenario\":\"%s\",\"mode\":\"%s\","
      "\"flows\":%zu,"
      "\"events\":%llu,\"events_per_sec\":%.0f,"
      "\"reallocation_count\":%llu,"
      "\"mean_flows_touched_per_realloc\":%.1f,"
      "\"component_p99\":%.1f,"
      "\"fill_levels_mean\":%.2f,"
      "\"groups_releveled_mean\":%.2f,"
      "\"fill_restarts\":%llu,\"full_fills\":%llu,"
      "\"flows_rescheduled\":%llu,"
      "\"realloc_mean_us\":%.2f,\"wall_ms\":%.1f}",
      scenario, ScratchMode() ? "scratch" : "incremental", flows,
      static_cast<unsigned long long>(events),
      static_cast<double>(events) / wall_seconds,
      static_cast<unsigned long long>(sim.reallocation_count()),
      sim.mean_flows_touched_per_realloc(),
      sim.component_size_histogram().Quantile(0.99),
      sim.fill_levels_histogram().mean(),
      sim.groups_releveled_histogram().mean(),
      static_cast<unsigned long long>(sim.fill_restarts()),
      static_cast<unsigned long long>(sim.full_fills()),
      static_cast<unsigned long long>(sim.flows_rescheduled()),
      sim.realloc_micros_histogram().mean(), wall_seconds * 1e3);
}

void RunChurn(const char* scenario, size_t n, size_t churn_events) {
  // Local-measurement escape hatches: TN_CHURN_EVENTS stretches the run on
  // noisy boxes (longer runs drown scheduler jitter), TN_SCENARIO=name
  // skips everything else (e.g. for a profiler pass over one scenario).
  if (const char* only = std::getenv("TN_SCENARIO");
      only != nullptr && std::strcmp(only, scenario) != 0) {
    return;
  }
  if (const char* ce = std::getenv("TN_CHURN_EVENTS"); ce != nullptr) {
    churn_events = static_cast<size_t>(std::strtoull(ce, nullptr, 10));
  }
  ChurnWorld w;
  bool chain = std::strcmp(scenario, "bottleneck_chain") == 0;
  if (std::strcmp(scenario, "disjoint") == 0) {
    BuildDisjoint(w, std::max<size_t>(1, n / 10));
  } else if (chain) {
    BuildBottleneckChain(w, 64);
  } else {
    BuildOverlapping(w, 32);
  }
  FlowSim sim(w.queue, w.topo);
  sim.SetIncrementalRelevel(!ScratchMode());
  Rng rng(42);
  std::vector<FlowId> live;
  live.reserve(n);
  uint64_t completions = 0;
  // Weights cycle 1..3 and 20% of flows carry a cap from a small value set
  // (few distinct freeze levels keeps water-filling rounds realistic for
  // quota-shaped workloads); the chain scenario instead staggers every
  // flow's cap across 64 distinct values so cap freezes interleave with
  // the staggered lane levels. A quarter are finite transfers so
  // completion (re)scheduling — the flows_rescheduled counter — is
  // exercised too.
  auto start_one = [&](size_t i) {
    const std::vector<LinkId>& path = w.paths[i % w.paths.size()];
    double weight = 1.0 + static_cast<double>(i % 3);
    double cap = chain ? 4e6 * static_cast<double>(i % 64 + 1)
                 : (i % 5 == 0) ? 50e6
                                : std::numeric_limits<double>::infinity();
    if (i % 4 == 3) {
      live.push_back(sim.StartFlow(
          path, 50e3, [&completions](FlowId, SimTime) { ++completions; },
          weight, cap));
    } else {
      live.push_back(sim.StartPersistentFlow(path, weight, cap));
    }
  };
  {
    // Populate inside one batch: setup is one reallocation, not N. In the
    // overlapping world sequential starts would each re-fill the whole
    // giant component (O(N^2) setup) and swamp the churn measurement.
    FlowSim::BatchScope batch = sim.Batch();
    for (size_t i = 0; i < n; ++i) {
      start_one(i);
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  uint64_t events = 0;
  for (size_t e = 0; e < churn_events; ++e) {
    switch (rng.NextU64(3)) {
      case 0: {
        size_t victim = rng.NextU64(live.size());
        (void)sim.CancelFlow(live[victim]);
        live[victim] = live.back();
        live.pop_back();
        start_one(rng.NextU64(1 << 20));
        events += 2;
        break;
      }
      case 1:
        (void)sim.SetRateCap(
            live[rng.NextU64(live.size())],
            chain ? 4e6 * static_cast<double>(rng.NextU64(64) + 1)
            : rng.NextBool(0.5) ? 50e6
                                : std::numeric_limits<double>::infinity());
        ++events;
        break;
      default: {
        size_t victim = rng.NextU64(live.size());
        (void)sim.CancelFlow(live[victim]);
        live[victim] = live.back();
        live.pop_back();
        start_one(rng.NextU64(1 << 20));
        events += 2;
        break;
      }
    }
    if (e % 64 == 0) {
      w.queue.RunUntil(w.queue.now() + SimDuration::Micros(100));
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  // Completed finite flows leave dangling ids in `live`; the cancel / cap
  // churn on them is a harmless NotFound no-op, matching real callers that
  // race completion.
  EmitJson(scenario, n, events + completions,
           std::chrono::duration<double>(t1 - t0).count(), sim);
}

// Quota-epoch shape: re-cap 10% of the live set. Without batching that is
// one reallocation per SetRateCap; a BatchUpdate scope coalesces the burst
// into exactly one pass.
void RunBatch(size_t n) {
  ChurnWorld w;
  BuildDisjoint(w, std::max<size_t>(1, n / 10));
  FlowSim sim(w.queue, w.topo);
  std::vector<FlowId> live;
  for (size_t i = 0; i < n; ++i) {
    live.push_back(sim.StartPersistentFlow(w.paths[i % w.paths.size()]));
  }
  size_t burst = std::max<size_t>(1, n / 10);
  uint64_t before = sim.reallocation_count();
  auto t0 = std::chrono::steady_clock::now();
  {
    FlowSim::BatchScope batch = sim.Batch();
    for (size_t i = 0; i < burst; ++i) {
      (void)sim.SetRateCap(live[i * 7 % live.size()], 25e6);
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  double wall = std::chrono::duration<double>(t1 - t0).count();
  g_json->Recordf(
      "{\"bench\":\"flow_sim_batch\",\"scenario\":\"batch\",\"flows\":%zu,"
      "\"cap_changes\":%zu,\"reallocations_for_burst\":%llu,"
      "\"mean_flows_touched_per_realloc\":%.1f,\"wall_ms\":%.2f}",
      n, burst,
      static_cast<unsigned long long>(sim.reallocation_count() - before),
      sim.mean_flows_touched_per_realloc(), wall * 1e3);
}

// --- Shard executor thread sweep ---------------------------------------------
//
// The disjoint world again, but driven through ShardExecutor: islands map to
// independent shards, completion-driven churn (every finite transfer restarts
// itself) keeps all of them busy, and the identical run is repeated across a
// thread-count sweep. Each record carries the measured speedup over the
// 1-thread run plus `matches_1thread` (completions and delivered bytes are
// byte-identical by the executor's determinism contract — checked here too,
// not just in the unit tests). check_bench_regression.py gates the 4-thread
// speedup against bench/baselines/shard_smoke_baseline.json, skipping the
// speedup check when the runner has fewer hardware threads than the record.

struct ShardRunResult {
  double wall_s = 0;
  uint64_t completions = 0;
  double bytes = 0;
  uint64_t epochs = 0;
  size_t shards = 0;
};

ShardRunResult RunShardOnce(int threads, size_t islands,
                            size_t flows_per_island, double sim_seconds) {
  ChurnWorld w;
  BuildDisjoint(w, islands);
  ShardExecutor::Options opts;
  opts.num_threads = threads;
  ShardExecutor exec(w.queue, w.topo, opts);

  ShardRunResult r;
  r.shards = exec.shard_count();
  // Every completion immediately restarts the same transfer, so each island
  // sustains `flows_per_island` concurrent flows and one reallocation per
  // completion for the whole run — shard-local compute with zero cross-shard
  // coupling, the best case the speedup gate is calibrated against.
  std::function<void(size_t)> start_one = [&](size_t path_idx) {
    exec.StartFlow(w.paths[path_idx], /*bytes=*/100e3,
                   [&r, &start_one, path_idx](FlowId, SimTime) {
                     ++r.completions;
                     start_one(path_idx);
                   },
                   /*weight=*/1.0 + static_cast<double>(path_idx % 3));
  };
  {
    FlowControlSurface::BatchScope batch = exec.Batch();
    for (size_t g = 0; g < islands; ++g) {
      for (size_t f = 0; f < flows_per_island; ++f) {
        start_one(g);
      }
    }
  }
  auto t0 = std::chrono::steady_clock::now();
  exec.RunUntil(SimTime::FromSeconds(sim_seconds));
  auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.bytes = exec.total_bytes_delivered();
  r.epochs = exec.epochs_run();
  return r;
}

void RunShardSweep(size_t islands, size_t flows_per_island,
                   double sim_seconds) {
  const unsigned hw = std::thread::hardware_concurrency();
  ShardRunResult base;
  for (int threads : {1, 2, 4, 8}) {
    ShardRunResult r =
        RunShardOnce(threads, islands, flows_per_island, sim_seconds);
    if (threads == 1) {
      base = r;
    }
    bool matches = r.completions == base.completions && r.bytes == base.bytes;
    double speedup = r.wall_s > 0 ? base.wall_s / r.wall_s : 0.0;
    g_json->Recordf(
        "{\"bench\":\"flow_sim_shard\",\"scenario\":\"disjoint\","
        "\"flows\":%zu,\"threads\":%d,\"shards\":%zu,\"hw_threads\":%u,"
        "\"epochs\":%llu,\"completions\":%llu,"
        "\"completions_per_sec\":%.0f,\"wall_ms\":%.1f,"
        "\"speedup_vs_1thread\":%.2f,\"matches_1thread\":%s}",
        islands * flows_per_island, threads, r.shards, hw,
        static_cast<unsigned long long>(r.epochs),
        static_cast<unsigned long long>(r.completions),
        static_cast<double>(r.completions) / r.wall_s, r.wall_s * 1e3, speedup,
        matches ? "true" : "false");
  }
}

// --- Cross-shard (Fig. 1 giant component) thread sweep -----------------------
//
// One WAN-stitched component, the shape the link-cut partitioner exists
// for: R regions of H hosts behind a hub, hubs chained into a WAN ring.
// Intra-region flows (host -> hub -> host) keep each region one congestion
// component — heavy per-shard water-fill work — and every 10th flow crosses
// to the next region over the WAN trunk, so the trunks and the target
// region's host links become epoch-synchronized shared links with capacity
// leases. Records carry the partition quality (border links, cut fraction)
// and live crossing-flow count next to the speedup/determinism columns;
// check_bench_regression.py gates the 4-thread speedup against
// bench/baselines/crossshard_smoke_baseline.json.

struct CrossWorld {
  EventQueue queue;
  Topology topo;
  std::vector<std::vector<LinkId>> up, down;  // per region, per host
  std::vector<LinkId> wan;                    // forward trunk r -> r+1
};

void BuildWanStitched(CrossWorld& w, size_t regions, size_t hosts) {
  std::vector<NodeId> hubs;
  for (size_t r = 0; r < regions; ++r) {
    NodeId hub = w.topo.AddNode({"hub", NodeKind::kBackboneRouter, "x"});
    hubs.push_back(hub);
    w.up.emplace_back();
    w.down.emplace_back();
    for (size_t h = 0; h < hosts; ++h) {
      NodeId host = w.topo.AddNode({"h", NodeKind::kHostAggregate, "x"});
      LinkInfo link;
      link.src = hub;
      link.dst = host;
      link.capacity_bps = 1e9;
      link.delay = SimDuration::Micros(50);
      auto pair = w.topo.AddDuplexLink(link);
      w.down[r].push_back(pair.first);
      w.up[r].push_back(pair.second);
    }
  }
  for (size_t r = 0; r < regions; ++r) {
    LinkInfo link;
    link.src = hubs[r];
    link.dst = hubs[(r + 1) % regions];
    link.capacity_bps = 10e9;
    link.delay = SimDuration::Millis(10);
    w.wan.push_back(w.topo.AddDuplexLink(link).first);
  }
}

struct CrossRunResult {
  double wall_s = 0;
  uint64_t completions = 0;
  double bytes = 0;
  uint64_t epochs = 0;
  uint64_t lease_reconciliations = 0;
  size_t shards = 0;
  size_t crossing = 0;
  uint32_t border_links = 0;
  double cut_fraction = 0;
};

CrossRunResult RunCrossOnce(int threads, size_t regions, size_t hosts,
                            size_t flows_per_region, double sim_seconds) {
  CrossWorld w;
  BuildWanStitched(w, regions, hosts);
  ShardExecutor::Options opts;
  opts.num_threads = threads;
  // One shard per region — fixed across the thread sweep, so the partition
  // (and the result) is identical for every row.
  opts.num_shards = static_cast<int>(regions);
  ShardExecutor exec(w.queue, w.topo, opts);

  CrossRunResult r;
  r.shards = exec.shard_count();
  r.border_links = exec.partition().border_link_count;
  r.cut_fraction = exec.partition().CutFraction();
  // Completion-restart churn: every finite transfer immediately restarts
  // itself, so each region sustains `flows_per_region` concurrent flows and
  // one component-scoped reallocation per completion. Crossing flows
  // additionally dirty their shared links on every restart, so the lease
  // reconciliation path runs at full churn rate.
  std::function<void(size_t, size_t)> start_one = [&](size_t region,
                                                      size_t idx) {
    std::vector<LinkId> path;
    if (idx % 10 == 0) {
      path = {w.up[region][idx % hosts], w.wan[region],
              w.down[(region + 1) % regions][(idx * 7 + 3) % hosts]};
    } else {
      path = {w.up[region][idx % hosts],
              w.down[region][(idx * 7 + 3) % hosts]};
    }
    exec.StartFlow(std::move(path), /*bytes=*/100e3,
                   [&r, &start_one, region, idx](FlowId, SimTime) {
                     ++r.completions;
                     start_one(region, idx);
                   },
                   /*weight=*/1.0 + static_cast<double>(idx % 3));
  };
  {
    FlowControlSurface::BatchScope batch = exec.Batch();
    for (size_t region = 0; region < regions; ++region) {
      for (size_t f = 0; f < flows_per_region; ++f) {
        start_one(region, f);
      }
    }
  }
  r.crossing = exec.crossing_flow_count();
  auto t0 = std::chrono::steady_clock::now();
  exec.RunUntil(SimTime::FromSeconds(sim_seconds));
  auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.bytes = exec.total_bytes_delivered();
  r.epochs = exec.epochs_run();
  r.lease_reconciliations = exec.lease_reconciliations();
  return r;
}

void RunCrossSweep(size_t regions, size_t hosts, size_t flows_per_region,
                   double sim_seconds) {
  const unsigned hw = std::thread::hardware_concurrency();
  CrossRunResult base;
  for (int threads : {1, 2, 4, 8}) {
    CrossRunResult r =
        RunCrossOnce(threads, regions, hosts, flows_per_region, sim_seconds);
    if (threads == 1) {
      base = r;
    }
    bool matches = r.completions == base.completions && r.bytes == base.bytes;
    double speedup = r.wall_s > 0 ? base.wall_s / r.wall_s : 0.0;
    g_json->Recordf(
        "{\"bench\":\"flow_sim_shard\",\"scenario\":\"crossshard\","
        "\"flows\":%zu,\"threads\":%d,\"shards\":%zu,\"hw_threads\":%u,"
        "\"border_links\":%u,\"cut_fraction\":%.4f,"
        "\"crossing_flows\":%zu,\"lease_reconciliations\":%llu,"
        "\"epochs\":%llu,\"completions\":%llu,"
        "\"completions_per_sec\":%.0f,\"wall_ms\":%.1f,"
        "\"speedup_vs_1thread\":%.2f,\"matches_1thread\":%s}",
        regions * flows_per_region, threads, r.shards, hw, r.border_links,
        r.cut_fraction, r.crossing,
        static_cast<unsigned long long>(r.lease_reconciliations),
        static_cast<unsigned long long>(r.epochs),
        static_cast<unsigned long long>(r.completions),
        static_cast<double>(r.completions) / r.wall_s, r.wall_s * 1e3, speedup,
        matches ? "true" : "false");
  }
}

}  // namespace
}  // namespace tenantnet

int main(int argc, char** argv) {
  bool small = argc > 1 && std::strcmp(argv[1], "small") == 0;
  tenantnet::BenchJsonWriter json("flow_sim", argc, argv);
  tenantnet::g_json = &json;
  std::vector<size_t> sizes = small ? std::vector<size_t>{1000}
                                    : std::vector<size_t>{1000, 10000, 100000};
  for (size_t n : sizes) {
    // Churn long enough that steady-state throughput dominates the few-ms
    // run (the CI gate compares events/sec; sub-10ms runs are scheduler
    // noise). Incremental re-leveling makes even the shared-link scenarios
    // O(affected-groups) per event, so 20k events stays interactive.
    size_t churn = small ? 20000 : std::min<size_t>(n, 20000);
    tenantnet::RunChurn("disjoint", n, churn);
    tenantnet::RunChurn("overlapping", n, churn);
    tenantnet::RunChurn("bottleneck_chain", n, small ? 10000 : churn);
    tenantnet::RunBatch(n);
  }
  if (std::getenv("TN_SCENARIO") != nullptr) {
    return 0;  // churn-scenario filter active: skip the thread sweeps
  }
  // Thread sweep through ShardExecutor over the disjoint world. The smoke
  // size (32 islands x 32 flows) is what the CI speedup gate is baselined on.
  if (small) {
    tenantnet::RunShardSweep(/*islands=*/32, /*flows_per_island=*/32,
                             /*sim_seconds=*/3.0);
  } else {
    tenantnet::RunShardSweep(/*islands=*/64, /*flows_per_island=*/64,
                             /*sim_seconds=*/5.0);
  }
  // Cross-shard sweep over one WAN-stitched giant component (Fig. 1 shape):
  // the link-cut partitioner's target case. The smoke size (8 regions x 40
  // flows, 10% crossing) is what the crossshard CI gate is baselined on.
  if (small) {
    tenantnet::RunCrossSweep(/*regions=*/8, /*hosts=*/8,
                             /*flows_per_region=*/40, /*sim_seconds=*/2.0);
  } else {
    tenantnet::RunCrossSweep(/*regions=*/16, /*hosts=*/16,
                             /*flows_per_region=*/64, /*sim_seconds=*/4.0);
  }
  return 0;
}
